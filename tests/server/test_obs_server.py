"""obs-report ``--source server``: HTTP request legs join job traces.

The server mints one trace context per request; with tracing on, the
``server.request.received`` instant and the ``server.request`` span
carry that ``trace_id``, which is the same id the service-side job
events use — so one trace tells the whole story from socket to solver.
"""

import pytest

from repro.server.testing import Client, ServerThread
from repro.telemetry import context as context_mod
from repro.telemetry import obs_report as obs_mod
from repro.telemetry import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_layers():
    yield
    context_mod.disable_context()
    trace_mod.disable_tracing()


def body(seed):
    return {
        "problem": {"kind": "qubo", "num_variables": 3,
                    "linear": {"0": -1.0, "1": -1.0, "2": -1.0},
                    "quadratic": [[0, 1, 2.0], [1, 2, 2.0]]},
        "solver": "sa",
        "config": {"num_sweeps": 100, "num_reads": 2, "seed": seed},
    }


def test_http_leg_joins_job_trace(tmp_path, capsys):
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    with ServerThread(workers=0) as thread:
        with Client(*thread.address) as client:
            status, _, accepted = client.submit(body(seed=21))
            assert status == 201
            trace_id = accepted["trace_id"]
            assert trace_id
            client.wait_result(accepted["job_id"])
    trace_path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(trace_path))

    # --source server filters the listing to HTTP-entered traces.
    assert obs_mod.main([str(trace_path), "--source", "server",
                         "--list"]) == 0
    listing = capsys.readouterr().out
    assert trace_id in listing

    # The timeline leads with the request leg and the handler wait.
    assert obs_mod.main([str(trace_path), trace_id,
                         "--source", "server"]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}" in out
    assert "http: POST /v1/jobs -> 201" in out
    assert "handler wait:" in out


def test_source_server_rejects_http_free_trace(tmp_path, capsys):
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    # A service-only run: trace-annotated events, but no HTTP leg.
    from repro.compile import SolverConfig
    from repro.db import JoinOrderQUBO, random_join_graph
    from repro.service import SolveService

    problem = JoinOrderQUBO(random_join_graph(3, "chain",
                                              seed=0)).compile()
    with SolveService(max_workers=1, mode="thread") as service:
        service.solve(problem, "sa",
                      SolverConfig(num_sweeps=50, num_reads=1, seed=1,
                                   convergence=False))
    trace_path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(trace_path))
    assert obs_mod.main([str(trace_path), "--source", "server",
                         "--list"]) == 2
    assert "no traces with HTTP request events" in \
        capsys.readouterr().err


def test_build_timeline_computes_handler_wait():
    events = [
        {"name": "server.request.received", "ph": "I", "ts": 100.0,
         "args": {"trace_id": "t1", "route": "/v1/jobs",
                  "method": "POST", "path": "/v1/jobs"}},
        {"name": "service.job.submitted", "ph": "I", "ts": 400.0,
         "args": {"trace_id": "t1", "job_id": 1, "solver": "sa"}},
        {"name": "server.request", "ph": "X", "ts": 100.0,
         "dur": 900.0,
         "args": {"trace_id": "t1", "route": "/v1/jobs",
                  "method": "POST", "status": 201}},
    ]
    traces = obs_mod.join_artifacts(events, [])
    summary = obs_mod.build_timeline("t1", traces["t1"])
    http = summary["http"]
    assert http["status"] == 201
    assert http["seconds"] == pytest.approx(900.0 / 1e6)
    assert http["handler_wait_seconds"] == pytest.approx(300.0 / 1e6)
    assert obs_mod.filter_http_traces(traces) == traces
