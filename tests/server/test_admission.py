"""Unit tests for token buckets and the admission controller."""

import threading
import time

import pytest

from repro.server.admission import (
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)

    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        for _ in range(3):
            taken, _ = bucket.try_take(now=0.0)
            assert taken
        taken, retry = bucket.try_take(now=0.0)
        assert not taken
        assert retry == pytest.approx(1.0)

    def test_refill_is_proportional_to_elapsed_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.try_take(now=0.0)[0]
        assert bucket.try_take(now=0.0)[0]
        taken, retry = bucket.try_take(now=0.0)
        assert not taken
        assert retry == pytest.approx(0.5)
        # Half the deficit refilled after 0.25s at 2 tokens/s.
        taken, retry = bucket.try_take(now=0.25)
        assert not taken
        assert retry == pytest.approx(0.25)
        taken, _ = bucket.try_take(now=0.5)
        assert taken

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        bucket.try_take(now=1000.0)  # long idle refills to burst only
        assert bucket.tokens == pytest.approx(1.0)

    def test_retry_after_shrinks_with_rate(self):
        fast = TokenBucket(rate=50.0, burst=1.0, now=0.0)
        fast.try_take(now=0.0)
        _, retry = fast.try_take(now=0.0)
        assert retry == pytest.approx(1.0 / 50.0)


class TestAdmissionController:
    def test_quota_exhaustion_and_recovery(self):
        controller = AdmissionController(quota_rate=1000.0,
                                         quota_burst=2.0,
                                         max_inflight=100)
        assert controller.admit("t1").allowed
        assert controller.admit("t1").allowed
        decision = controller.admit("t1")
        assert not decision.allowed
        assert decision.reason == "quota"
        assert decision.status == 429
        assert 0 < decision.retry_after <= 1.0 / 1000.0 + 1e-6
        # At 1000 tokens/s the deficit refills essentially instantly.
        time.sleep(0.01)
        assert controller.admit("t1").allowed

    def test_tenants_are_isolated(self):
        controller = AdmissionController(quota_rate=0.001,
                                         quota_burst=1.0,
                                         max_inflight=8)
        assert controller.admit("a").allowed
        assert not controller.admit("a").allowed
        assert controller.admit("b").allowed

    def test_inflight_cap_and_release(self):
        controller = AdmissionController(quota_rate=1e6,
                                         quota_burst=1e6,
                                         max_inflight=2)
        assert controller.admit("t").allowed
        assert controller.admit("t").allowed
        decision = controller.admit("t")
        assert not decision.allowed
        assert decision.reason == "inflight"
        assert decision.retry_after > 0
        controller.release("t")
        assert controller.admit("t").allowed
        assert controller.inflight("t") == 2

    def test_queue_depth_gate(self):
        depth = {"live": 0, "capacity": 4}
        controller = AdmissionController(quota_rate=1e6,
                                         quota_burst=1e6,
                                         max_inflight=100,
                                         queue_depth=lambda: depth)
        assert controller.admit("t").allowed
        depth["live"] = 4
        decision = controller.admit("t")
        assert not decision.allowed
        assert decision.reason == "queue"

    def test_snapshot_counts_decisions(self):
        controller = AdmissionController(quota_rate=1e6,
                                         quota_burst=1e6,
                                         max_inflight=1)
        controller.admit("t")
        controller.admit("t")
        controller.reject_queue_full("t")
        view = controller.snapshot()
        assert view["admitted"] == 1
        assert view["rejected"] == {"inflight": 1, "queue": 1}
        assert view["inflight"] == {"t": 1}

    def test_thread_safety_of_admit_release(self):
        controller = AdmissionController(quota_rate=1e9,
                                         quota_burst=1e9,
                                         max_inflight=10_000)
        errors = []

        def worker():
            try:
                for _ in range(500):
                    assert controller.admit("t").allowed
                    controller.release("t")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert controller.inflight() == 0
