"""End-to-end HTTP server tests over an in-process ServerThread.

Thread-mode (``workers=0``) keeps these fast; one process-mode test
(`test_process_mode_parity`) checks the warm-pool path produces the
same bits. Submission bodies deliberately vary their coefficients —
identical bodies are idempotent (same job) and identical *solves*
coalesce inside the service, which would defeat the backpressure
tests.
"""

import math
import time

import pytest

from repro.compile.dispatch import SolverConfig, solve
from repro.server import build_problem, result_document
from repro.server.testing import Client, ServerThread
from repro.telemetry import context as _context
from repro.telemetry import metrics as _metrics


def problem_body(*, bias=-1.0, coupling=2.0, seed=7, num_variables=4,
                 sweeps=200, reads=3, convergence=True, **extra):
    """A small, distinct QUBO submission body."""
    body = {
        "problem": {
            "kind": "qubo",
            "num_variables": num_variables,
            "linear": {str(i): bias for i in range(num_variables)},
            "quadratic": [[i, i + 1, coupling]
                          for i in range(num_variables - 1)],
        },
        "solver": "sa",
        "config": {"num_sweeps": sweeps, "num_reads": reads,
                   "seed": seed, "convergence": convergence},
    }
    body.update(extra)
    return body


def direct_document(body):
    """Solve the same body in-process; config resolved the way the
    service stores it (``convergence`` ``None`` -> effective bool)."""
    problem = build_problem(body["problem"])
    config = SolverConfig(**body["config"]).resolve_convergence()
    return result_document(solve(problem, body["solver"], config))


def strip_provenance(document):
    return {key: value for key, value in document.items()
            if key != "provenance"}


@pytest.fixture(scope="module")
def server():
    # Trace contexts on, as the serve CLI runs by default — the
    # status document's trace_id is part of the API contract.
    _context.enable_context()
    try:
        with ServerThread(workers=0, quota_rate=1000.0,
                          quota_burst=1000.0, max_inflight=64,
                          queue_capacity=64) as thread:
            yield thread
    finally:
        _context.disable_context()


@pytest.fixture(scope="module")
def client(server):
    with Client(*server.address) as c:
        yield c


class TestBasics:
    def test_healthz(self, client):
        status, _, document = client.get("/healthz")
        assert status == 200
        assert document["schema"] == "repro-server/v1"
        assert document["status"] == "ok"
        assert document["queue"]["capacity"] == 64

    def test_unknown_route_404(self, client):
        status, _, document = client.get("/nope")
        assert status == 404
        assert document["status"] == 404

    def test_wrong_method_405(self, client):
        status, _, _ = client.request("DELETE", "/v1/jobs")
        assert status == 405

    def test_unknown_job_404(self, client):
        status, _, _ = client.get("/v1/jobs/deadbeef")
        assert status == 404

    def test_bad_json_400(self, client):
        status, _, document = client.request("POST", "/v1/jobs",
                                             "not json")
        assert status == 400
        assert "error" in document

    def test_bad_problem_400(self, client):
        status, _, _ = client.submit({"problem": {"kind": "maxcut"},
                                      "solver": "sa"})
        assert status == 400
        status, _, _ = client.submit(
            {"problem": {"kind": "qubo", "num_variables": 2},
             "solver": "sa", "config": {"bogus_knob": 1}})
        assert status == 400

    def test_metrics_endpoint_validates(self, client):
        # Metrics are process-global and normally off under pytest:
        # the endpoint degrades to 503, and with a registry enabled it
        # serves exposition text that passes the validator.
        assert client.get("/metrics")[0] == 503
        _metrics.enable_metrics()
        try:
            client.get("/healthz")  # populate request counters
            status, _, text = client.get("/metrics")
            assert status == 200
            assert _metrics.validate_prometheus_text(text) == []
            assert "server_requests_total" in text
        finally:
            _metrics.disable_metrics()


class TestJobsApi:
    def test_submit_result_parity(self, client):
        body = problem_body(seed=101)
        status, _, accepted = client.submit(body)
        assert status == 201
        assert accepted["idempotent"] is False
        assert accepted["kind"] == "problem"
        job_id = accepted["job_id"]
        status, document = client.wait_result(job_id)
        assert status == 200
        assert document["status"] == "done"
        # Bit-for-bit parity with a direct in-process solve.
        assert (strip_provenance(document["result"])
                == strip_provenance(direct_document(body)))

    def test_resubmit_is_idempotent(self, client):
        body = problem_body(seed=102)
        _, _, first = client.submit(body)
        status, _, second = client.submit(body)
        assert status == 200
        assert second["idempotent"] is True
        assert second["job_id"] == first["job_id"]

    def test_tag_forces_new_job_but_hits_cache(self, client):
        body = problem_body(seed=103)
        _, _, first = client.submit(body)
        client.wait_result(first["job_id"])
        status, _, second = client.submit(dict(body, tag="retry-1"))
        assert status == 201
        assert second["job_id"] != first["job_id"]
        assert second["tag"] == "retry-1"
        events = list(client.stream(second["job_id"]))
        names = [data.get("name") for event, data, _ in events
                 if event == "lifecycle"]
        assert "cache_hit" in names

    def test_status_document(self, client):
        body = problem_body(seed=104)
        _, _, accepted = client.submit(body)
        job_id = accepted["job_id"]
        client.wait_result(job_id)
        status, _, document = client.get(f"/v1/jobs/{job_id}")
        assert status == 200
        assert document["status"] == "done"
        assert document["trace_id"]
        assert document["links"]["stream"].endswith("/stream")

    def test_listing_contains_job(self, client):
        _, _, accepted = client.submit(problem_body(seed=105))
        status, _, document = client.get("/v1/jobs")
        assert status == 200
        assert accepted["job_id"] in [job["job_id"]
                                      for job in document["jobs"]]

    def test_result_202_before_done(self, client):
        body = problem_body(seed=106, sweeps=2000, reads=10)
        _, _, accepted = client.submit(body)
        status, _, document = client.get(
            f"/v1/jobs/{accepted['job_id']}/result")
        assert status in (200, 202)  # 202 unless the solve raced us
        if status == 202:
            assert document["status"] in ("queued", "running")
        client.wait_result(accepted["job_id"])

    def test_ising_submission(self, client):
        body = {
            "problem": {
                "kind": "ising",
                "num_spins": 3,
                "h": {"0": 0.5, "2": -0.5},
                "j": [[0, 1, 1.0], [1, 2, -1.0]],
            },
            "solver": "sa",
            "config": {"num_sweeps": 200, "num_reads": 2, "seed": 11},
        }
        _, _, accepted = client.submit(body)
        status, document = client.wait_result(accepted["job_id"])
        assert status == 200
        assert document["result"]["feasible"] is True


class TestStreaming:
    def test_sse_replay_order_and_schema(self, client):
        body = problem_body(seed=110)
        _, _, accepted = client.submit(body)
        client.wait_result(accepted["job_id"])
        events = list(client.stream(accepted["job_id"]))
        names = [event for event, _, _ in events]
        assert names[0] == "hello"
        assert names[-1] == "done"
        hello = events[0][1]
        assert hello["schema"] == "repro-stream/v1"
        assert hello["job_id"] == accepted["job_id"]
        lifecycle = [data["name"] for event, data, _ in events
                     if event == "lifecycle"]
        assert lifecycle[0] == "submitted"
        assert lifecycle[-1] == "finished"
        convergence = [data for event, data, _ in events
                       if event == "convergence"]
        assert convergence, "convergence=True should stream rows"
        result = [data for event, data, _ in events if event == "result"]
        assert len(result) == 1
        # Ordering: all convergence rows precede the result frame.
        assert names.index("result") > max(
            i for i, n in enumerate(names) if n == "convergence")

    def test_sse_tails_a_running_job(self, client):
        body = problem_body(seed=111, sweeps=2000, reads=10)
        _, _, accepted = client.submit(body)
        # Connect immediately: the journal has at most the submitted
        # event, so everything else arrives through the live tail.
        events = list(client.stream(accepted["job_id"]))
        names = [event for event, _, _ in events]
        assert names[-1] == "done"
        assert "convergence" in names
        assert "result" in names


class TestWorkloadRoute:
    def test_workload_submission_returns_plan(self, client):
        body = {
            "workload": {"topologies": ["chain"], "sizes": [4],
                         "instances_per_cell": 1, "seed": 3,
                         "index": 0},
            "solver": "sa",
            "config": {"num_sweeps": 300, "num_reads": 3, "seed": 5},
        }
        status, _, accepted = client.submit(body)
        assert status == 201
        assert accepted["kind"] == "workload"
        status, document = client.wait_result(accepted["job_id"])
        assert status == 200
        plan = document["result"]
        assert plan["schema"] == "repro-pipeline/v1"
        assert plan["status"] == "ok"
        assert plan["formulation"] == "joinorder"

    def test_workload_bounds_rejected(self, client):
        base = {"solver": "sa", "config": {"seed": 1}}
        for spec in ({"sizes": [40]},
                     {"instances_per_cell": 1000},
                     {"formulation": "nope"},
                     {"index": 99}):
            status, _, _ = client.submit(
                dict(base, workload=dict({"sizes": [4]}, **spec)))
            assert status == 400


class TestAdmissionOverHttp:
    def test_quota_429_and_recovery(self):
        with ServerThread(workers=0, quota_rate=5.0, quota_burst=2.0,
                          max_inflight=64) as thread:
            with Client(*thread.address, tenant="quota-t") as c:
                accepted = [c.submit(problem_body(seed=200 + i))
                            for i in range(2)]
                assert all(status == 201
                           for status, _, _ in accepted)
                status, headers, document = c.submit(
                    problem_body(seed=250))
                assert status == 429
                assert document["reason"] == "quota"
                retry = document["retry_after_seconds"]
                assert 0 < retry <= 1.0 / 5.0 + 1e-6
                assert headers["retry-after"] == str(
                    max(1, math.ceil(retry)))
                # After the refill interval the tenant recovers.
                time.sleep(retry + 0.1)
                status, _, _ = c.submit(problem_body(seed=251))
                assert status == 201
                for status_code, _, document in accepted:
                    c.wait_result(document["job_id"])

    def test_queue_backpressure_never_hangs(self):
        with ServerThread(workers=0, queue_capacity=2,
                          quota_rate=1000.0, quota_burst=1000.0,
                          max_inflight=64) as thread:
            with Client(*thread.address) as c:
                outcomes = []
                for i in range(10):
                    outcomes.append(c.submit(
                        problem_body(seed=300 + i, coupling=1.5 + i,
                                     sweeps=800, reads=5)))
                accepted = [d for s, _, d in outcomes if s == 201]
                rejected = [(s, h, d) for s, h, d in outcomes
                            if s == 429]
                assert rejected, "queue_capacity=2 must shed load"
                for status_code, headers, document in rejected:
                    assert document["reason"] == "queue"
                    assert int(headers["retry-after"]) >= 1
                # The loop stays responsive while saturated.
                started = time.perf_counter()
                status, _, _ = c.get("/healthz")
                assert status == 200
                assert time.perf_counter() - started < 1.0
                # Every accepted job still completes.
                for document in accepted:
                    status, result = c.wait_result(document["job_id"])
                    assert status == 200

    def test_inflight_cap(self):
        with ServerThread(workers=0, quota_rate=1000.0,
                          quota_burst=1000.0, max_inflight=1,
                          queue_capacity=64) as thread:
            with Client(*thread.address) as c:
                _, _, first = c.submit(
                    problem_body(seed=400, sweeps=2000, reads=10))
                status, _, document = c.submit(problem_body(seed=401))
                assert status == 429
                assert document["reason"] == "inflight"
                # Releasing the slot (job done) re-opens admission.
                c.wait_result(first["job_id"])
                status, _, _ = c.submit(problem_body(seed=402))
                assert status == 201


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self):
        thread = ServerThread(workers=0, quota_rate=1000.0,
                              quota_burst=1000.0, max_inflight=8,
                              queue_capacity=16)
        thread.start()
        try:
            with Client(*thread.address) as c:
                _, _, accepted = c.submit(
                    problem_body(seed=500, sweeps=2000, reads=10))
                thread.server.request_drain()
                # New submissions are shed while the slow job drains.
                deadline = time.monotonic() + 5.0
                saw_503 = False
                attempt = 0
                while time.monotonic() < deadline and not saw_503:
                    attempt += 1
                    try:
                        status, headers, document = c.submit(
                            problem_body(seed=500 + attempt))
                    except (ConnectionError, RuntimeError, OSError):
                        break  # listener already closed: drained
                    if status == 503:
                        saw_503 = True
                        assert document["reason"] == "draining"
                        assert headers["retry-after"] == "30"
                    elif status == 201:
                        time.sleep(0.01)  # drain flag not set yet
                    else:
                        raise AssertionError(f"unexpected {status}")
                assert saw_503
        finally:
            thread.stop()
        job = thread.server.jobs.get(accepted["job_id"])
        assert job is not None
        assert job.status == "done"


class TestProcessMode:
    def test_process_mode_parity(self):
        body = problem_body(seed=600, sweeps=500, reads=4)
        expected = strip_provenance(direct_document(body))
        with ServerThread(workers=2) as thread:
            with Client(*thread.address, timeout=120.0) as c:
                status, _, accepted = c.submit(body)
                assert status == 201
                status, document = c.wait_result(accepted["job_id"],
                                                 timeout=120.0)
                assert status == 200
                assert (strip_provenance(document["result"])
                        == expected)
