"""Tests for join graphs, join trees, cost model and workloads."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    JoinGraph,
    JoinTree,
    left_deep_cost,
    left_deep_tree,
    log_cost_proxy,
    q_error,
    random_join_graph,
    selectivity_from_stats,
    topology_edges,
    tree_cost,
)
from repro.db.catalog import Catalog, Table


@pytest.fixture
def small_graph():
    return JoinGraph(
        [100.0, 1000.0, 10.0],
        {(0, 1): 0.01, (1, 2): 0.001},
    )


# ----------------------------------------------------------------------
# JoinGraph
# ----------------------------------------------------------------------
def test_graph_validates_inputs():
    with pytest.raises(ValueError):
        JoinGraph([100.0], {})
    with pytest.raises(ValueError):
        JoinGraph([10.0, 0.5], {})
    with pytest.raises(ValueError):
        JoinGraph([10.0, 10.0], {(0, 0): 0.5})
    with pytest.raises(ValueError):
        JoinGraph([10.0, 10.0], {(0, 1): 0.0})
    with pytest.raises(ValueError):
        JoinGraph([10.0, 10.0], {(0, 1): 1.5})


def test_graph_selectivity_defaults_to_cross_product(small_graph):
    assert small_graph.selectivity(0, 2) == 1.0
    assert small_graph.selectivity(1, 0) == 0.01


def test_graph_neighbors(small_graph):
    assert small_graph.neighbors(1) == [0, 2]
    assert small_graph.neighbors(0) == [1]


def test_subset_cardinality(small_graph):
    assert small_graph.subset_cardinality([0]) == pytest.approx(100.0)
    assert small_graph.subset_cardinality([0, 1]) == pytest.approx(1000.0)
    # all three: 100 * 1000 * 10 * 0.01 * 0.001 = 10
    assert small_graph.subset_cardinality([0, 1, 2]) == pytest.approx(10.0)


def test_subset_cardinality_cross_product(small_graph):
    assert small_graph.subset_cardinality([0, 2]) == pytest.approx(1000.0)


def test_connected_subset(small_graph):
    assert small_graph.is_connected_subset([0, 1])
    assert not small_graph.is_connected_subset([0, 2])
    assert small_graph.is_connected_subset([0, 1, 2])


# ----------------------------------------------------------------------
# JoinTree
# ----------------------------------------------------------------------
def test_tree_leaf_and_join():
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    assert tree.relations == frozenset({0, 1})
    assert not tree.is_leaf
    assert len(tree.inner_nodes()) == 1


def test_tree_rejects_overlapping_join():
    with pytest.raises(ValueError):
        JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(0))


def test_left_deep_tree_shape():
    tree = left_deep_tree([2, 0, 1])
    assert tree.is_left_deep()
    assert tree.leaf_order() == [2, 0, 1]


def test_bushy_tree_not_left_deep():
    left = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    right = JoinTree.join(JoinTree.leaf(2), JoinTree.leaf(3))
    assert not JoinTree.join(left, right).is_left_deep()


def test_left_deep_tree_validations():
    with pytest.raises(ValueError):
        left_deep_tree([0])
    with pytest.raises(ValueError):
        left_deep_tree([0, 0])


def test_tree_display(small_graph):
    tree = left_deep_tree([0, 1, 2])
    assert tree.display() == "((R0 ⋈ R1) ⋈ R2)"
    assert "A" in tree.display(["A", "B", "C"])


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_tree_cost_sums_intermediates(small_graph):
    tree = left_deep_tree([0, 1, 2])
    # |{0,1}| = 1000, |{0,1,2}| = 10
    assert tree_cost(small_graph, tree) == pytest.approx(1010.0)


def test_tree_cost_requires_all_relations(small_graph):
    partial = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    with pytest.raises(ValueError):
        tree_cost(small_graph, partial)


def test_left_deep_cost_orders_differ(small_graph):
    good = left_deep_cost(small_graph, [2, 1, 0])
    bad = left_deep_cost(small_graph, [0, 2, 1])  # cross product first
    assert good < bad


def test_left_deep_cost_validates_permutation(small_graph):
    with pytest.raises(ValueError):
        left_deep_cost(small_graph, [0, 1])
    with pytest.raises(ValueError):
        left_deep_cost(small_graph, [0, 1, 1])


def test_log_cost_proxy_is_log_of_product(small_graph):
    order = [0, 1, 2]
    proxy = log_cost_proxy(small_graph, order)
    assert proxy == pytest.approx(math.log(1000.0) + math.log(10.0))


def test_q_error_symmetric():
    assert q_error(10, 100) == pytest.approx(10.0)
    assert q_error(100, 10) == pytest.approx(10.0)
    assert q_error(50, 50) == pytest.approx(1.0)


def test_q_error_floors_at_one_row():
    assert q_error(0.0, 5.0) == pytest.approx(5.0)


def test_selectivity_from_stats_uses_max_ndv():
    catalog = Catalog()
    catalog.add_table(Table("a", {"k": np.arange(100) % 10}))
    catalog.add_table(Table("b", {"k": np.arange(50) % 50}))
    sel = selectivity_from_stats(catalog, ("a", "k"), ("b", "k"))
    assert sel == pytest.approx(1.0 / 50.0)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology, expected_edges", [
    ("chain", 4), ("star", 4), ("cycle", 5), ("clique", 10),
])
def test_topology_edge_counts(topology, expected_edges):
    assert len(topology_edges(5, topology)) == expected_edges


def test_random_join_graph_respects_bounds():
    g = random_join_graph(6, "chain", min_cardinality=10,
                          max_cardinality=1000, seed=0)
    assert all(10 <= c <= 1000 for c in g.cardinalities)
    assert all(0 < s <= 0.5 for s in g.selectivities.values())


def test_random_join_graph_rejects_bad_topology():
    with pytest.raises(ValueError):
        random_join_graph(4, "mesh")


def test_random_join_graph_deterministic():
    a = random_join_graph(5, "star", seed=7)
    b = random_join_graph(5, "star", seed=7)
    assert a.cardinalities == b.cardinalities
    assert a.selectivities == b.selectivities


@settings(max_examples=20, deadline=None)
@given(
    topology=st.sampled_from(["chain", "star", "cycle", "clique"]),
    n=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_property_topologies_are_connected(topology, n, seed):
    g = random_join_graph(n, topology, seed=seed)
    assert g.is_connected_subset(range(n))
