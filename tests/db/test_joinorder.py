"""Tests for the join-order optimizers, including the QUBO route."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import SimulatedAnnealingSolver, solve_qubo_exact
from repro.db import (
    JoinGraph,
    JoinOrderQUBO,
    dp_optimal,
    exhaustive_left_deep,
    greedy_goo,
    left_deep_cost,
    log_cost_proxy,
    random_join_graph,
    solve_join_order_annealing,
    tree_cost,
)


@pytest.fixture
def chain_graph():
    return random_join_graph(5, "chain", seed=10)


@pytest.fixture
def star_graph():
    return random_join_graph(5, "star", seed=11)


# ----------------------------------------------------------------------
# DP
# ----------------------------------------------------------------------
def test_dp_left_deep_matches_exhaustive(chain_graph):
    # Exhaustive enumeration allows cross products, so compare against
    # the unrestricted DP variant.
    _, dp_cost = dp_optimal(chain_graph, bushy=False,
                            avoid_cross_products=False)
    _, exhaustive_cost = exhaustive_left_deep(chain_graph)
    assert dp_cost == pytest.approx(exhaustive_cost)


def test_dp_cross_product_avoidance_never_helps(chain_graph):
    _, restricted = dp_optimal(chain_graph, bushy=False)
    _, free = dp_optimal(chain_graph, bushy=False,
                         avoid_cross_products=False)
    assert restricted >= free - 1e-9


def test_dp_bushy_at_least_as_good_as_left_deep(star_graph):
    _, bushy = dp_optimal(star_graph, bushy=True)
    _, left_deep = dp_optimal(star_graph, bushy=False)
    assert bushy <= left_deep + 1e-9


def test_dp_tree_covers_all_relations(chain_graph):
    tree, cost = dp_optimal(chain_graph)
    assert tree.relations == frozenset(range(5))
    assert cost == pytest.approx(tree_cost(chain_graph, tree))


def test_dp_two_relations():
    g = JoinGraph([10.0, 20.0], {(0, 1): 0.5})
    tree, cost = dp_optimal(g)
    assert cost == pytest.approx(100.0)


def test_dp_handles_disconnected_graph():
    # No edge between {0,1} and {2,3}: DP must fall back to a cross
    # product without crashing.
    g = JoinGraph([10.0, 10.0, 10.0, 10.0],
                  {(0, 1): 0.1, (2, 3): 0.1})
    tree, cost = dp_optimal(g)
    assert tree.relations == frozenset(range(4))


# ----------------------------------------------------------------------
# Greedy
# ----------------------------------------------------------------------
def test_greedy_returns_valid_tree(chain_graph):
    tree, cost = greedy_goo(chain_graph)
    assert tree.relations == frozenset(range(5))
    assert cost == pytest.approx(tree_cost(chain_graph, tree))


def test_greedy_never_beats_dp(star_graph):
    _, dp_cost = dp_optimal(star_graph, bushy=True,
                            avoid_cross_products=False)
    _, greedy_cost = greedy_goo(star_graph)
    assert greedy_cost >= dp_cost - 1e-6


def test_greedy_is_suboptimal_on_adversarial_instance():
    """A random cycle instance where GOO's smallest-first choice is a
    trap (found by search; the gap is ~2.9x)."""
    g = random_join_graph(5, "cycle", seed=2)
    _, dp_cost = dp_optimal(g, bushy=True, avoid_cross_products=False)
    _, greedy_cost = greedy_goo(g)
    assert greedy_cost > 1.5 * dp_cost


# ----------------------------------------------------------------------
# QUBO formulation
# ----------------------------------------------------------------------
def test_qubo_energy_equals_log_proxy_on_valid_encodings(chain_graph):
    formulation = JoinOrderQUBO(chain_graph)
    qubo = formulation.build()
    for order in itertools.permutations(range(5)):
        bits = formulation.encode_order(order)
        assert qubo.energy(bits) == pytest.approx(
            log_cost_proxy(chain_graph, list(order)), abs=1e-6
        )


def test_qubo_ground_state_is_valid_permutation():
    g = random_join_graph(4, "star", seed=12)
    formulation = JoinOrderQUBO(g)
    best = solve_qubo_exact(formulation.build())
    decoded = formulation.decode(best.assignment)
    assert decoded.valid
    assert sorted(decoded.order) == [0, 1, 2, 3]


def test_qubo_ground_state_minimizes_log_proxy():
    g = random_join_graph(4, "chain", seed=13)
    formulation = JoinOrderQUBO(g)
    best = solve_qubo_exact(formulation.build())
    decoded = formulation.decode(best.assignment)
    proxies = [
        log_cost_proxy(g, list(order))
        for order in itertools.permutations(range(4))
    ]
    assert decoded.log_proxy == pytest.approx(min(proxies), abs=1e-6)


def test_qubo_decode_repairs_invalid_bits(chain_graph):
    formulation = JoinOrderQUBO(chain_graph)
    formulation.build()
    decoded = formulation.decode(np.zeros(25, dtype=int))
    assert not decoded.valid
    assert sorted(decoded.order) == list(range(5))


def test_qubo_decode_rejects_wrong_length(chain_graph):
    formulation = JoinOrderQUBO(chain_graph)
    with pytest.raises(ValueError):
        formulation.decode([0, 1])


def test_qubo_encode_order_roundtrip(chain_graph):
    formulation = JoinOrderQUBO(chain_graph)
    formulation.build()
    bits = formulation.encode_order([4, 2, 0, 1, 3])
    decoded = formulation.decode(bits)
    assert decoded.order == [4, 2, 0, 1, 3]
    assert decoded.valid


def test_qubo_penalty_weight_positive(chain_graph):
    assert JoinOrderQUBO(chain_graph).penalty_weight() > 0


def test_qubo_rejects_bad_penalty_scale(chain_graph):
    with pytest.raises(ValueError):
        JoinOrderQUBO(chain_graph, penalty_scale=0.0)


def test_annealing_pipeline_near_optimal(star_graph):
    decoded = solve_join_order_annealing(
        star_graph,
        solver=SimulatedAnnealingSolver(num_sweeps=300, num_reads=15,
                                        seed=1),
    )
    _, best = exhaustive_left_deep(star_graph)
    assert decoded.cost <= 3.0 * best  # within small factor of optimum
    assert sorted(decoded.order) == list(range(5))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_dp_is_lower_bound(seed):
    g = random_join_graph(4, "cycle", seed=seed)
    _, dp_cost = dp_optimal(g, bushy=True, avoid_cross_products=False)
    for order in itertools.permutations(range(4)):
        assert left_deep_cost(g, list(order)) >= dp_cost - 1e-6


def test_grover_join_order_matches_exhaustive():
    from repro.db import solve_join_order_grover

    g = random_join_graph(4, "star", seed=21)
    order, cost = solve_join_order_grover(g, seed=0)
    _, best = exhaustive_left_deep(g)
    assert cost == pytest.approx(best)
    assert sorted(order) == [0, 1, 2, 3]


def test_grover_join_order_size_limit():
    from repro.db import solve_join_order_grover

    g = random_join_graph(7, "chain", seed=0)
    with pytest.raises(ValueError):
        solve_join_order_grover(g)
