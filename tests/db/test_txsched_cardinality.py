"""Tests for transaction scheduling and cardinality estimation."""

import numpy as np
import pytest

from repro.annealing import SimulatedAnnealingSolver, solve_qubo_exact
from repro.db import (
    Transaction,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    evaluate_q_errors,
    featurize,
    generate_workload,
    histogram_estimates,
    make_cardinality_dataset,
    minimum_slots_annealing,
    schedule_fcfs,
    schedule_greedy_first_fit,
    solve_scheduling_annealing,
)
from repro.db.cardinality import RangeQuery


# ----------------------------------------------------------------------
# Transactions and conflicts
# ----------------------------------------------------------------------
def test_conflict_rules():
    t1 = Transaction(frozenset({"a"}), frozenset({"b"}))
    t2 = Transaction(frozenset({"b"}), frozenset())
    t3 = Transaction(frozenset({"c"}), frozenset({"c"}))
    assert t1.conflicts_with(t2)      # write-read on b
    assert t2.conflicts_with(t1)      # symmetric
    assert not t1.conflicts_with(t3)  # disjoint
    assert t3.conflicts_with(t3)      # self write-write


def test_problem_builds_conflict_graph():
    problem = TransactionSchedulingProblem([
        Transaction(frozenset(), frozenset({"x"})),
        Transaction(frozenset({"x"}), frozenset()),
        Transaction(frozenset({"y"}), frozenset()),
    ])
    assert problem.conflicts == {(0, 1)}
    assert problem.conflict_degree(0) == 1
    assert problem.conflict_degree(2) == 0


def test_violations_and_makespan():
    problem = TransactionSchedulingProblem([
        Transaction(frozenset(), frozenset({"x"})),
        Transaction(frozenset({"x"}), frozenset()),
    ])
    assert problem.num_conflict_violations([0, 0]) == 1
    assert problem.num_conflict_violations([0, 1]) == 0
    assert problem.makespan([0, 1]) == 2
    assert problem.is_valid([0, 1])


def test_random_problem_deterministic():
    a = TransactionSchedulingProblem.random(8, seed=1)
    b = TransactionSchedulingProblem.random(8, seed=1)
    assert a.conflicts == b.conflicts


# ----------------------------------------------------------------------
# Classical schedulers
# ----------------------------------------------------------------------
def test_greedy_first_fit_is_conflict_free():
    problem = TransactionSchedulingProblem.random(12, num_objects=10,
                                                  seed=2)
    schedule = schedule_greedy_first_fit(problem)
    assert problem.is_valid(schedule)


def test_fcfs_is_conflict_free():
    problem = TransactionSchedulingProblem.random(12, num_objects=10,
                                                  seed=3)
    assert problem.is_valid(schedule_fcfs(problem))


def test_greedy_no_worse_than_fcfs_typically():
    worse = 0
    for seed in range(5):
        problem = TransactionSchedulingProblem.random(
            14, num_objects=8, seed=seed
        )
        greedy = problem.makespan(schedule_greedy_first_fit(problem))
        fcfs = problem.makespan(schedule_fcfs(problem))
        if greedy > fcfs:
            worse += 1
    assert worse <= 1


# ----------------------------------------------------------------------
# QUBO scheduling
# ----------------------------------------------------------------------
def test_qubo_ground_state_is_conflict_free():
    problem = TransactionSchedulingProblem.random(5, num_objects=6,
                                                  seed=4)
    slots = problem.makespan(schedule_greedy_first_fit(problem))
    compiler = TransactionSchedulingQUBO(problem, slots)
    best = solve_qubo_exact(compiler.build())
    schedule = compiler.decode(best.assignment)
    assert problem.is_valid(schedule)


def test_qubo_decode_wrong_length():
    problem = TransactionSchedulingProblem.random(4, seed=5)
    compiler = TransactionSchedulingQUBO(problem, 2)
    with pytest.raises(ValueError):
        compiler.decode([0, 1])


def test_annealed_schedule_valid():
    problem = TransactionSchedulingProblem.random(10, num_objects=12,
                                                  seed=6)
    slots = problem.makespan(schedule_greedy_first_fit(problem))
    schedule = solve_scheduling_annealing(
        problem, slots,
        solver=SimulatedAnnealingSolver(num_sweeps=300, num_reads=15,
                                        seed=0),
    )
    assert problem.is_valid(schedule)


def test_minimum_slots_at_most_greedy():
    problem = TransactionSchedulingProblem.random(10, num_objects=10,
                                                  seed=7)
    annealed = minimum_slots_annealing(problem)
    greedy = schedule_greedy_first_fit(problem)
    assert problem.is_valid(annealed)
    assert problem.makespan(annealed) <= problem.makespan(greedy)


def test_qubo_validations():
    problem = TransactionSchedulingProblem.random(3, seed=8)
    with pytest.raises(ValueError):
        TransactionSchedulingQUBO(problem, 0)
    with pytest.raises(ValueError):
        TransactionSchedulingQUBO(problem, 2, penalty_scale=0.0)


# ----------------------------------------------------------------------
# Cardinality estimation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset():
    return make_cardinality_dataset(num_rows=600, num_queries=60,
                                    correlation=0.9, seed=0)


def test_dataset_shapes(dataset):
    assert dataset.features.shape == (60, 4)
    assert dataset.log_cardinalities.shape == (60,)
    assert len(dataset.queries) == 60


def test_features_in_unit_interval(dataset):
    assert ((dataset.features >= 0) & (dataset.features <= 1)).all()


def test_labels_are_log1p_of_counts(dataset):
    assert (dataset.cardinalities >= 0).all()
    assert dataset.cardinalities.max() <= 600


def test_range_query_validates_bounds():
    with pytest.raises(ValueError):
        RangeQuery({"a": (5.0, 1.0)})


def test_generate_workload_covers_columns(dataset):
    queries = generate_workload(dataset.table, 5, seed=1)
    assert all(set(q.predicates) == set(dataset.column_order)
               for q in queries)


def test_featurize_full_range_is_unit_box(dataset):
    table = dataset.table
    full = RangeQuery({
        c: (float(table.column(c).min()), float(table.column(c).max()))
        for c in dataset.column_order
    })
    feats = featurize(table, [full], dataset.column_order)
    assert np.allclose(feats, [0.0, 1.0] * len(dataset.column_order))


def test_histogram_estimator_struggles_on_correlated_data(dataset):
    """On strongly correlated columns the independence assumption
    inflates q-errors well beyond the perfect-estimator value of 1."""
    estimates = histogram_estimates(dataset)
    summary = evaluate_q_errors(estimates, dataset.cardinalities)
    assert summary["median"] >= 1.0
    assert summary["max"] > 2.0


def test_evaluate_q_errors_perfect_estimator(dataset):
    summary = evaluate_q_errors(dataset.cardinalities,
                                dataset.cardinalities)
    assert summary["median"] == pytest.approx(1.0)
    assert summary["max"] == pytest.approx(1.0)


def test_evaluate_q_errors_shape_mismatch():
    with pytest.raises(ValueError):
        evaluate_q_errors(np.ones(3), np.ones(4))
