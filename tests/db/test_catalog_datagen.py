"""Tests for the catalog, statistics and data generators."""

import numpy as np
import pytest

from repro.db import (
    Catalog,
    Table,
    correlated_columns,
    make_correlated_table,
    make_star_schema,
    true_range_cardinality,
    zipf_column,
)


def test_table_requires_equal_column_lengths():
    with pytest.raises(ValueError):
        Table("t", {"a": np.arange(3), "b": np.arange(4)})


def test_table_requires_name_and_columns():
    with pytest.raises(ValueError):
        Table("", {"a": np.arange(2)})
    with pytest.raises(ValueError):
        Table("t", {})


def test_table_column_access():
    t = Table("t", {"a": np.arange(5)})
    assert t.num_rows == 5
    assert t.column("a")[3] == 3
    with pytest.raises(KeyError):
        t.column("missing")


def test_catalog_registers_and_serves_stats():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.arange(100)}))
    stats = catalog.stats("t", "a")
    assert stats.num_distinct == 100
    assert stats.min_value == 0
    assert stats.max_value == 99
    assert catalog.row_count("t") == 100


def test_catalog_rejects_duplicate_table():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.arange(2)}))
    with pytest.raises(ValueError):
        catalog.add_table(Table("t", {"a": np.arange(2)}))


def test_catalog_unknown_lookups():
    catalog = Catalog()
    with pytest.raises(KeyError):
        catalog.table("nope")
    with pytest.raises(KeyError):
        catalog.stats("nope", "a")


def test_histogram_selectivity_full_range():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.arange(1000, dtype=float)}))
    stats = catalog.stats("t", "a")
    assert stats.selectivity_range(0, 999) == pytest.approx(1.0)


def test_histogram_selectivity_half_range():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.arange(1000, dtype=float)}))
    stats = catalog.stats("t", "a")
    assert stats.selectivity_range(0, 499.5) == pytest.approx(0.5, abs=0.05)


def test_histogram_selectivity_empty_range():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.arange(10, dtype=float)}))
    stats = catalog.stats("t", "a")
    assert stats.selectivity_range(5, 4) == 0.0


def test_histogram_constant_column():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.full(10, 7.0)}))
    stats = catalog.stats("t", "a")
    assert stats.selectivity_range(6, 8) == pytest.approx(1.0)
    assert stats.selectivity_equals() == pytest.approx(1.0)


def test_selectivity_equals_uses_ndv():
    catalog = Catalog()
    catalog.add_table(Table("t", {"a": np.array([1.0, 2.0, 3.0, 4.0])}))
    assert catalog.stats("t", "a").selectivity_equals() == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def test_zipf_column_shape_and_range():
    col = zipf_column(1000, 50, seed=0)
    assert col.shape == (1000,)
    assert col.min() >= 0 and col.max() < 50


def test_zipf_column_is_skewed():
    col = zipf_column(5000, 20, skew=1.5, seed=1)
    counts = np.bincount(col, minlength=20)
    assert counts[0] > counts[10]


def test_zipf_validates_args():
    with pytest.raises(ValueError):
        zipf_column(0, 5)
    with pytest.raises(ValueError):
        zipf_column(10, 5, skew=0.0)


def test_correlated_columns_hit_target_correlation():
    a, b = correlated_columns(5000, correlation=0.8, seed=2)
    observed = np.corrcoef(a, b)[0, 1]
    assert observed == pytest.approx(0.8, abs=0.05)


def test_correlated_columns_validate_range():
    with pytest.raises(ValueError):
        correlated_columns(10, correlation=1.5)


def test_make_correlated_table_columns():
    t = make_correlated_table("t", 100, num_column_pairs=2, seed=3)
    assert sorted(t.columns) == ["c0", "c1", "c2", "c3"]
    assert t.num_rows == 100


def test_make_star_schema_structure():
    catalog = make_star_schema(fact_rows=500,
                               dimension_rows=(50, 20), seed=4)
    assert catalog.table_names == ["dim0", "dim1", "fact"]
    fact = catalog.table("fact")
    assert set(fact.columns) == {"fk0", "fk1", "measure"}
    assert fact.column("fk0").max() < 50


def test_true_range_cardinality_counts_exactly():
    t = Table("t", {"a": np.array([1.0, 2.0, 3.0, 4.0]),
                    "b": np.array([10.0, 20.0, 30.0, 40.0])})
    count = true_range_cardinality(t, {"a": (2, 3), "b": (0, 35)})
    assert count == 2


def test_true_range_cardinality_empty_predicate_set():
    t = Table("t", {"a": np.arange(5)})
    assert true_range_cardinality(t, {}) == 5


def test_tpch_like_schema_structure():
    from repro.db import make_tpch_like_schema

    catalog = make_tpch_like_schema(scale=0.001, seed=0)
    assert set(catalog.table_names) == {
        "region", "nation", "customer", "orders", "lineitem", "part",
        "supplier",
    }
    assert catalog.row_count("region") == 5
    assert catalog.row_count("nation") == 25
    assert catalog.row_count("lineitem") > catalog.row_count("orders")


def test_tpch_like_foreign_keys_intact():
    from repro.db import make_tpch_like_schema

    catalog = make_tpch_like_schema(scale=0.001, seed=1)
    orders = catalog.table("orders")
    assert orders.column("o_custkey").max() < catalog.row_count("customer")
    lineitem = catalog.table("lineitem")
    assert lineitem.column("l_orderkey").max() < catalog.row_count("orders")


def test_tpch_like_rejects_bad_scale():
    from repro.db import make_tpch_like_schema

    with pytest.raises(ValueError):
        make_tpch_like_schema(scale=0.0)


def test_tpch_chain_join_executes():
    from repro.db import (
        HashJoinExecutor,
        dp_optimal,
        make_tpch_like_schema,
        tpch_chain_join_query,
    )

    catalog = make_tpch_like_schema(scale=0.001, seed=2)
    query = tpch_chain_join_query(catalog)
    tree, _ = dp_optimal(query.to_join_graph())
    result = HashJoinExecutor(query).execute(tree)
    # Chain of FK joins keeps every lineitem row.
    assert result.row_count == catalog.row_count("lineitem")
