"""Tests for the hash-join executor and cost-model validation."""

import numpy as np
import pytest

from repro.db import (
    Catalog,
    EquiJoinPredicate,
    HashJoinExecutor,
    JoinTree,
    PhysicalQuery,
    Table,
    dp_optimal,
    left_deep_tree,
    make_star_schema,
    validate_cost_model,
)


@pytest.fixture
def tiny_catalog():
    catalog = Catalog()
    catalog.add_table(Table("orders", {
        "id": np.array([1, 2, 3, 4]),
        "customer": np.array([10, 10, 20, 30]),
    }))
    catalog.add_table(Table("customers", {
        "id": np.array([10, 20, 30]),
        "region": np.array([1, 1, 2]),
    }))
    catalog.add_table(Table("regions", {
        "id": np.array([1, 2]),
    }))
    return catalog


@pytest.fixture
def tiny_query(tiny_catalog):
    return PhysicalQuery(
        catalog=tiny_catalog,
        tables=["orders", "customers", "regions"],
        predicates=[
            EquiJoinPredicate("orders", "customer", "customers", "id"),
            EquiJoinPredicate("customers", "region", "regions", "id"),
        ],
    )


def test_physical_query_validations(tiny_catalog):
    with pytest.raises(ValueError):
        PhysicalQuery(tiny_catalog, ["orders", "orders"])
    with pytest.raises(KeyError):
        PhysicalQuery(tiny_catalog, ["missing"])
    with pytest.raises(ValueError):
        PhysicalQuery(
            tiny_catalog, ["orders"],
            predicates=[EquiJoinPredicate("orders", "customer",
                                          "customers", "id")],
        )
    with pytest.raises(KeyError):
        PhysicalQuery(
            tiny_catalog, ["orders", "customers"],
            predicates=[EquiJoinPredicate("orders", "nope",
                                          "customers", "id")],
        )


def test_to_join_graph_uses_stats(tiny_query):
    graph = tiny_query.to_join_graph()
    assert graph.cardinalities == [4.0, 3.0, 2.0]
    # orders-customers: 1 / max(ndv) = 1/3 (3 distinct on each side).
    assert graph.selectivity(0, 1) == pytest.approx(1.0 / 3.0)


def test_two_way_join_row_count(tiny_query):
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    # Two-relation plan: restrict the query to those tables.
    query = PhysicalQuery(
        tiny_query.catalog, ["orders", "customers"],
        predicates=[EquiJoinPredicate("orders", "customer",
                                      "customers", "id")],
    )
    result = HashJoinExecutor(query).execute(tree)
    assert result.row_count == 4  # every order has a customer


def test_three_way_join_counts(tiny_query):
    tree = left_deep_tree([0, 1, 2])
    result = HashJoinExecutor(tiny_query).execute(tree)
    assert result.row_count == 4
    assert result.intermediate_sizes[frozenset({0, 1})] == 4


def test_join_order_does_not_change_result(tiny_query):
    executor = HashJoinExecutor(tiny_query)
    for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]):
        assert executor.execute(left_deep_tree(order)).row_count == 4


def test_bushy_plan_executes(tiny_query):
    bushy = JoinTree.join(
        JoinTree.leaf(0),
        JoinTree.join(JoinTree.leaf(1), JoinTree.leaf(2)),
    )
    assert HashJoinExecutor(tiny_query).execute(bushy).row_count == 4


def test_cross_product_when_no_predicate(tiny_catalog):
    query = PhysicalQuery(tiny_catalog, ["orders", "regions"])
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    result = HashJoinExecutor(query).execute(tree)
    assert result.row_count == 8  # 4 x 2


def test_cross_product_limit(tiny_catalog):
    query = PhysicalQuery(tiny_catalog, ["orders", "regions"])
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    with pytest.raises(RuntimeError):
        HashJoinExecutor(query).execute(tree, max_intermediate_rows=5)


def test_dangling_rows_are_dropped(tiny_catalog):
    # An order whose customer does not exist must not survive the join.
    catalog = Catalog()
    catalog.add_table(Table("a", {"k": np.array([1, 2, 99])}))
    catalog.add_table(Table("b", {"k": np.array([1, 2, 3])}))
    query = PhysicalQuery(
        catalog, ["a", "b"],
        predicates=[EquiJoinPredicate("a", "k", "b", "k")],
    )
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    assert HashJoinExecutor(query).execute(tree).row_count == 2


def test_duplicate_keys_multiply(tiny_catalog):
    catalog = Catalog()
    catalog.add_table(Table("a", {"k": np.array([7, 7])}))
    catalog.add_table(Table("b", {"k": np.array([7, 7, 7])}))
    query = PhysicalQuery(
        catalog, ["a", "b"],
        predicates=[EquiJoinPredicate("a", "k", "b", "k")],
    )
    tree = JoinTree.join(JoinTree.leaf(0), JoinTree.leaf(1))
    assert HashJoinExecutor(query).execute(tree).row_count == 6


def test_star_schema_end_to_end():
    catalog = make_star_schema(fact_rows=500, dimension_rows=(40, 20),
                               seed=1)
    query = PhysicalQuery(
        catalog, ["fact", "dim0", "dim1"],
        predicates=[
            EquiJoinPredicate("fact", "fk0", "dim0", "id"),
            EquiJoinPredicate("fact", "fk1", "dim1", "id"),
        ],
    )
    graph = query.to_join_graph()
    tree, _ = dp_optimal(graph)
    result = HashJoinExecutor(query).execute(tree)
    # FK joins preserve every fact row.
    assert result.row_count == 500


def test_validate_cost_model_fk_joins_are_exact():
    catalog = make_star_schema(fact_rows=800, dimension_rows=(30, 10),
                               seed=2)
    query = PhysicalQuery(
        catalog, ["fact", "dim0", "dim1"],
        predicates=[
            EquiJoinPredicate("fact", "fk0", "dim0", "id"),
            EquiJoinPredicate("fact", "fk1", "dim1", "id"),
        ],
    )
    tree, _ = dp_optimal(query.to_join_graph())
    records = validate_cost_model(query, tree)
    assert records  # at least one join node
    for record in records:
        # The System-R estimator is exact for key/foreign-key joins
        # over the full key domain.
        assert record["q_error"] < 1.6


def test_estimated_cost_matches_actual_for_exact_estimates(tiny_query):
    from repro.db import tree_cost

    graph = tiny_query.to_join_graph()
    tree = left_deep_tree([0, 1, 2])
    estimated = tree_cost(graph, tree)
    actual = HashJoinExecutor(tiny_query).execute(tree).actual_cost
    # Small catalog: estimates are close but not exact; same order.
    assert actual == pytest.approx(estimated, rel=0.5)


def _nested_loop_count(query, tree_order):
    """Reference: count joined rows with plain Python nested loops."""
    tables = [query.catalog.table(t) for t in query.tables]
    counts = 0
    import itertools

    for rows in itertools.product(*(range(t.num_rows) for t in tables)):
        keep = True
        for predicate in query.predicates:
            li = query.relation_index(predicate.left_table)
            ri = query.relation_index(predicate.right_table)
            left_value = query.catalog.table(
                predicate.left_table
            ).column(predicate.left_column)[rows[li]]
            right_value = query.catalog.table(
                predicate.right_table
            ).column(predicate.right_column)[rows[ri]]
            if left_value != right_value:
                keep = False
                break
        counts += keep
    return counts


def test_executor_matches_nested_loop_reference():
    """Property-style cross-check against a brute-force join on small
    random data, over several join orders."""
    rng = np.random.default_rng(9)
    catalog = Catalog()
    catalog.add_table(Table("a", {"k": rng.integers(0, 4, size=7)}))
    catalog.add_table(Table("b", {"k": rng.integers(0, 4, size=6),
                                  "m": rng.integers(0, 3, size=6)}))
    catalog.add_table(Table("c", {"m": rng.integers(0, 3, size=5)}))
    query = PhysicalQuery(
        catalog, ["a", "b", "c"],
        predicates=[
            EquiJoinPredicate("a", "k", "b", "k"),
            EquiJoinPredicate("b", "m", "c", "m"),
        ],
    )
    expected = _nested_loop_count(query, None)
    executor = HashJoinExecutor(query)
    for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2]):
        assert executor.execute(left_deep_tree(order)).row_count == expected
