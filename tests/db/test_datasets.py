"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    make_blobs,
    make_circles,
    make_linearly_separable,
    make_moons,
    make_parity,
    make_regression_wave,
    make_xor,
    minmax_scale,
    train_test_split,
)


@pytest.mark.parametrize("maker", [
    make_moons, make_circles, make_xor,
])
def test_binary_generators_shapes(maker):
    X, y = maker(50, seed=0)
    assert X.shape == (50, 2)
    assert y.shape == (50,)
    assert set(np.unique(y)) == {0, 1}


def test_generators_deterministic_with_seed():
    a = make_moons(30, seed=5)[0]
    b = make_moons(30, seed=5)[0]
    assert np.allclose(a, b)


def test_moons_classes_roughly_balanced():
    _, y = make_moons(100, seed=1)
    assert abs(y.mean() - 0.5) < 0.1


def test_circles_inner_radius_smaller():
    X, y = make_circles(200, noise=0.0, factor=0.5, seed=2)
    radii = np.linalg.norm(X, axis=1)
    assert radii[y == 1].mean() < radii[y == 0].mean()


def test_circles_validates_factor():
    with pytest.raises(ValueError):
        make_circles(10, factor=1.5)


def test_blobs_multiclass():
    X, y = make_blobs(60, centers=3, seed=3)
    assert set(np.unique(y)) == {0, 1, 2}


def test_blobs_validates_centers():
    with pytest.raises(ValueError):
        make_blobs(10, centers=1)


def test_xor_labels_follow_quadrants():
    X, y = make_xor(200, noise=0.0, seed=4)
    expected = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    assert (y == expected).all()


def test_parity_full_truth_table():
    X, y = make_parity(3, seed=5)
    assert X.shape == (8, 3)
    assert (y == X.sum(axis=1).astype(int) % 2).all()


def test_parity_sampled():
    X, y = make_parity(4, n_samples=10, seed=6)
    assert X.shape == (10, 4)


def test_parity_validates_bits():
    with pytest.raises(ValueError):
        make_parity(1)


def test_linearly_separable_margin_respected():
    X, y = make_linearly_separable(100, margin=0.3, seed=7)
    assert X.shape == (100, 2)
    # A linear SVM-style check: classes are separable by some line.
    from repro.baselines import LogisticRegression
    clf = LogisticRegression(max_iter=500).fit(X, y)
    assert clf.score(X, y) == 1.0


def test_regression_wave_target():
    X, y = make_regression_wave(50, noise=0.0, seed=8)
    assert np.allclose(y, np.sin(np.pi * X[:, 0]))


def test_train_test_split_sizes():
    X = np.arange(20).reshape(10, 2)
    y = np.arange(10)
    Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, seed=0)
    assert Xtr.shape[0] == 7 and Xte.shape[0] == 3
    assert set(ytr) | set(yte) == set(range(10))


def test_train_test_split_validates_fraction():
    X = np.ones((4, 1))
    y = np.zeros(4)
    with pytest.raises(ValueError):
        train_test_split(X, y, 0.0)
    with pytest.raises(ValueError):
        train_test_split(X, y, 1.0)


def test_minmax_scale_range():
    X = np.array([[1.0, -5.0], [3.0, 5.0]])
    scaled = minmax_scale(X)
    assert scaled.min() == 0.0 and scaled.max() == 1.0


def test_minmax_scale_constant_column():
    X = np.array([[2.0], [2.0]])
    assert np.allclose(minmax_scale(X), 0.0)


def test_minmax_scale_custom_bounds():
    X = np.array([[0.0], [1.0]])
    scaled = minmax_scale(X, low=-1.0, high=1.0)
    assert scaled[0, 0] == -1.0 and scaled[1, 0] == 1.0


@pytest.mark.parametrize("maker", [make_moons, make_circles, make_xor])
def test_generators_validate_args(maker):
    with pytest.raises(ValueError):
        maker(1)
    with pytest.raises(ValueError):
        maker(10, noise=-0.1)
