"""Tests for multiple-query optimization and index selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import SimulatedAnnealingSolver, solve_qubo_exact
from repro.db import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    MQOProblem,
    MQOQUBO,
    solve_index_selection_annealing,
    solve_index_selection_exact,
    solve_index_selection_greedy,
    solve_mqo_annealing,
    solve_mqo_exhaustive,
    solve_mqo_greedy,
)


# ----------------------------------------------------------------------
# MQO
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_mqo():
    return MQOProblem(
        plan_costs=[[10.0, 8.0], [5.0, 9.0]],
        savings={((0, 0), (1, 1)): 6.0},
    )


def test_mqo_total_cost_applies_savings(tiny_mqo):
    # Plans (0, 1): costs 10 + 9 = 19, saving 6 -> 13.
    assert tiny_mqo.total_cost([0, 1]) == pytest.approx(13.0)
    assert tiny_mqo.total_cost([1, 0]) == pytest.approx(13.0)


def test_mqo_exhaustive_picks_sharing_when_worth_it(tiny_mqo):
    selection, cost = solve_mqo_exhaustive(tiny_mqo)
    assert cost == pytest.approx(13.0)
    assert selection in ([0, 1], [1, 0])


def test_mqo_greedy_can_miss_sharing(tiny_mqo):
    # Greedy starts from cheapest plans (1, 0) = 13 and climbs; both
    # optima cost 13 here so it matches, but never exceeds exhaustive.
    _, greedy_cost = solve_mqo_greedy(tiny_mqo)
    _, exact_cost = solve_mqo_exhaustive(tiny_mqo)
    assert greedy_cost >= exact_cost - 1e-9


def test_mqo_validations():
    with pytest.raises(ValueError):
        MQOProblem(plan_costs=[])
    with pytest.raises(ValueError):
        MQOProblem(plan_costs=[[]])
    with pytest.raises(ValueError):
        MQOProblem(plan_costs=[[-1.0]])
    with pytest.raises(ValueError):
        MQOProblem(plan_costs=[[1.0], [1.0]],
                   savings={((0, 0), (0, 0)): 1.0})
    with pytest.raises(ValueError):
        MQOProblem(plan_costs=[[1.0], [1.0]],
                   savings={((0, 0), (1, 0)): -1.0})


def test_mqo_total_cost_validates_selection(tiny_mqo):
    with pytest.raises(ValueError):
        tiny_mqo.total_cost([0])
    with pytest.raises(ValueError):
        tiny_mqo.total_cost([0, 5])


def test_mqo_random_instance_shape():
    problem = MQOProblem.random(4, 3, seed=0)
    assert problem.num_queries == 4
    assert problem.num_plans == 12


def test_mqo_qubo_ground_state_is_optimal():
    problem = MQOProblem.random(4, 3, seed=1)
    compiler = MQOQUBO(problem)
    best = solve_qubo_exact(compiler.build())
    decoded = compiler.decode(best.assignment)
    _, exact_cost = solve_mqo_exhaustive(problem)
    assert problem.total_cost(decoded) == pytest.approx(exact_cost)


def test_mqo_qubo_energy_matches_cost_on_valid_selection(tiny_mqo):
    compiler = MQOQUBO(tiny_mqo)
    qubo = compiler.build()
    bits = np.zeros(4, dtype=int)
    bits[compiler.variable(0, 0)] = 1
    bits[compiler.variable(1, 1)] = 1
    assert qubo.energy(bits) == pytest.approx(tiny_mqo.total_cost([0, 1]))


def test_mqo_decode_repairs_empty_rows(tiny_mqo):
    compiler = MQOQUBO(tiny_mqo)
    compiler.build()
    selection = compiler.decode(np.zeros(4, dtype=int))
    assert selection == [1, 0]  # cheapest plans


def test_mqo_annealing_close_to_exact():
    problem = MQOProblem.random(5, 3, seed=2)
    _, exact_cost = solve_mqo_exhaustive(problem)
    _, annealed_cost = solve_mqo_annealing(
        problem,
        solver=SimulatedAnnealingSolver(num_sweeps=400, num_reads=25,
                                        seed=0),
    )
    assert annealed_cost <= 1.15 * exact_cost


# ----------------------------------------------------------------------
# Index selection
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_index_problem():
    return IndexSelectionProblem(
        sizes=[5, 4, 6],
        benefits=[10.0, 8.0, 9.0],
        overlaps={(0, 1): 5.0},
        budget=10,
    )


def test_index_benefit_subtracts_overlap(tiny_index_problem):
    assert tiny_index_problem.total_benefit([0, 1]) == pytest.approx(13.0)
    assert tiny_index_problem.total_benefit([0, 2]) == pytest.approx(19.0)


def test_index_feasibility(tiny_index_problem):
    assert tiny_index_problem.is_feasible([0, 1])
    assert not tiny_index_problem.is_feasible([0, 1, 2])


def test_index_exact_solution(tiny_index_problem):
    selection, benefit = solve_index_selection_exact(tiny_index_problem)
    # {0, 2} costs 11 > 10 -> infeasible; best is {1, 2} = 17.
    assert sorted(selection) == [1, 2]
    assert benefit == pytest.approx(17.0)


def test_index_greedy_feasible(tiny_index_problem):
    selection, benefit = solve_index_selection_greedy(tiny_index_problem)
    assert tiny_index_problem.is_feasible(selection)
    assert benefit <= 17.0 + 1e-9


def test_index_validations():
    with pytest.raises(ValueError):
        IndexSelectionProblem(sizes=[1], benefits=[1.0, 2.0], budget=1)
    with pytest.raises(ValueError):
        IndexSelectionProblem(sizes=[0], benefits=[1.0], budget=1)
    with pytest.raises(ValueError):
        IndexSelectionProblem(sizes=[1], benefits=[-1.0], budget=1)
    with pytest.raises(ValueError):
        IndexSelectionProblem(sizes=[1], benefits=[1.0], budget=0)
    with pytest.raises(ValueError):
        IndexSelectionProblem(sizes=[1, 1], benefits=[1.0, 1.0],
                              overlaps={(0, 0): 1.0}, budget=1)


def test_index_qubo_slack_covers_budget():
    problem = IndexSelectionProblem.random(8, seed=3)
    compiler = IndexSelectionQUBO(problem)
    weights = compiler.slack_coefficients()
    reachable = {0}
    for w in weights:
        reachable |= {r + w for r in reachable}
    assert set(range(problem.budget + 1)) <= reachable


def test_index_qubo_ground_state_feasible_and_optimal():
    problem = IndexSelectionProblem.random(10, seed=4)
    compiler = IndexSelectionQUBO(problem)
    best = solve_qubo_exact(compiler.build())
    decoded = compiler.decode(best.assignment)
    assert problem.is_feasible(decoded)
    _, exact_benefit = solve_index_selection_exact(problem)
    assert problem.total_benefit(decoded) == pytest.approx(exact_benefit)


def test_index_decode_repairs_infeasible(tiny_index_problem):
    compiler = IndexSelectionQUBO(tiny_index_problem)
    compiler.build()
    bits = np.ones(compiler.num_variables, dtype=int)
    decoded = compiler.decode(bits)
    assert tiny_index_problem.is_feasible(decoded)


def test_index_annealing_close_to_exact():
    problem = IndexSelectionProblem.random(12, seed=5)
    _, exact_benefit = solve_index_selection_exact(problem)
    _, annealed = solve_index_selection_annealing(problem)
    assert annealed >= 0.85 * exact_benefit


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_greedy_is_feasible_and_bounded(seed):
    problem = IndexSelectionProblem.random(9, seed=seed)
    selection, benefit = solve_index_selection_greedy(problem)
    assert problem.is_feasible(selection)
    _, exact_benefit = solve_index_selection_exact(problem)
    assert benefit <= exact_benefit + 1e-9
