"""Tests for the Q-learning join optimizer."""

import pytest

from repro.db import (
    QLearningJoinOptimizer,
    exhaustive_left_deep,
    random_join_graph,
    solve_join_order_rl,
)


@pytest.fixture(scope="module")
def star_graph():
    return random_join_graph(5, "star", seed=8)


def test_rl_converges_near_optimal(star_graph):
    order, cost = solve_join_order_rl(star_graph, episodes=1500, seed=0)
    _, best = exhaustive_left_deep(star_graph)
    assert cost <= 1.2 * best
    assert sorted(order) == list(range(5))


def test_rl_improves_over_training(star_graph):
    optimizer = QLearningJoinOptimizer(star_graph, episodes=800, seed=1)
    optimizer.train()
    curve = optimizer.learning_curve(window=50)
    # Late-training rolling cost is better than early exploration.
    assert curve[-1] < curve[49]


def test_rl_policy_rollout_is_deterministic_given_q(star_graph):
    optimizer = QLearningJoinOptimizer(star_graph, episodes=500, seed=2)
    optimizer.train()
    assert optimizer.best_order() == optimizer.best_order()


def test_rl_history_recorded(star_graph):
    optimizer = QLearningJoinOptimizer(star_graph, episodes=50, seed=3)
    optimizer.train()
    assert len(optimizer.history) == 50
    assert optimizer.history[0].epsilon > optimizer.history[-1].epsilon


def test_rl_requires_training_first(star_graph):
    optimizer = QLearningJoinOptimizer(star_graph, episodes=10)
    with pytest.raises(RuntimeError):
        optimizer.best_order()
    with pytest.raises(RuntimeError):
        optimizer.learning_curve()


def test_rl_validates_args(star_graph):
    with pytest.raises(ValueError):
        QLearningJoinOptimizer(star_graph, episodes=0)
    with pytest.raises(ValueError):
        QLearningJoinOptimizer(star_graph, learning_rate=0.0)
    with pytest.raises(ValueError):
        QLearningJoinOptimizer(star_graph, epsilon_start=0.1,
                               epsilon_end=0.5)


def test_rl_two_relations_trivial():
    g = random_join_graph(2, "chain", seed=0)
    order, cost = solve_join_order_rl(g, episodes=20, seed=0)
    assert sorted(order) == [0, 1]
