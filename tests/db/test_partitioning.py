"""Tests for data partitioning (balanced min-cut)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    PartitioningIsing,
    PartitioningProblem,
    partition_annealing,
    partition_exact,
    partition_kernighan_lin,
)


@pytest.fixture(scope="module")
def two_clusters():
    """Two internally dense fragments groups with one weak bridge."""
    weights = {}
    for group in ((0, 1, 2), (3, 4, 5)):
        for a_pos, a in enumerate(group):
            for b in group[a_pos + 1:]:
                weights[(a, b)] = 10.0
    weights[(2, 3)] = 1.0  # bridge
    return PartitioningProblem(sizes=[1.0] * 6, weights=weights)


def test_cut_weight_and_imbalance(two_clusters):
    across = [0, 0, 0, 1, 1, 1]
    assert two_clusters.cut_weight(across) == pytest.approx(1.0)
    assert two_clusters.imbalance(across) == pytest.approx(0.0)
    lopsided = [0, 0, 0, 0, 0, 1]
    assert lopsided.count(0) == 5
    assert two_clusters.imbalance(lopsided) == pytest.approx(4.0)


def test_validations():
    with pytest.raises(ValueError):
        PartitioningProblem(sizes=[1.0])
    with pytest.raises(ValueError):
        PartitioningProblem(sizes=[1.0, -1.0])
    with pytest.raises(ValueError):
        PartitioningProblem(sizes=[1.0, 1.0], weights={(0, 0): 1.0})
    with pytest.raises(ValueError):
        PartitioningProblem(sizes=[1.0, 1.0], weights={(0, 1): -1.0})
    problem = PartitioningProblem(sizes=[1.0, 1.0])
    with pytest.raises(ValueError):
        problem.cut_weight([0])
    with pytest.raises(ValueError):
        problem.cut_weight([0, 2])


def test_exact_cuts_only_the_bridge(two_clusters):
    assignment, cut = partition_exact(two_clusters)
    assert cut == pytest.approx(1.0)
    assert two_clusters.imbalance(assignment) == pytest.approx(0.0)


def test_annealing_matches_exact(two_clusters):
    assignment = partition_annealing(two_clusters)
    assert two_clusters.cut_weight(assignment) == pytest.approx(1.0)


def test_kernighan_lin_also_finds_bridge(two_clusters):
    assignment = partition_kernighan_lin(two_clusters, seed=0)
    assert two_clusters.cut_weight(assignment) == pytest.approx(1.0)


def test_annealing_balances_heterogeneous_sizes():
    """With one huge fragment, the balanced optimum isolates it."""
    problem = PartitioningProblem(
        sizes=[10.0, 1.0, 1.0, 1.0, 1.0],
        weights={(1, 2): 5.0, (2, 3): 5.0, (3, 4): 5.0},
    )
    assignment = partition_annealing(problem)
    exact_assignment, _ = partition_exact(problem)
    compiler = PartitioningIsing(problem)
    score = lambda a: (problem.cut_weight(a)
                       + compiler.balance_weight
                       * problem.imbalance(a) ** 2)
    assert score(assignment) == pytest.approx(score(exact_assignment))


def test_decode_fixes_gauge(two_clusters):
    compiler = PartitioningIsing(two_clusters)
    assert compiler.decode([1, 1, 1, 0, 0, 0]) == [0, 0, 0, 1, 1, 1]
    assert compiler.decode([0, 0, 0, 1, 1, 1]) == [0, 0, 0, 1, 1, 1]
    with pytest.raises(ValueError):
        compiler.decode([0, 1])


def test_random_instance_deterministic():
    a = PartitioningProblem.random(8, seed=5)
    b = PartitioningProblem.random(8, seed=5)
    assert a.weights == b.weights
    assert a.sizes == b.sizes


def test_ising_energy_tracks_score():
    """The compiled Ising energy orders assignments the same way as
    the explicit cut + balance score (they differ by a constant)."""
    problem = PartitioningProblem.random(6, seed=7)
    compiler = PartitioningIsing(problem)
    model = compiler.build()
    scores = []
    energies = []
    for mask in range(2 ** 5):
        assignment = [0] + [(mask >> k) & 1 for k in range(5)]
        spins = [1 - 2 * a for a in assignment]
        scores.append(problem.cut_weight(assignment)
                      + compiler.balance_weight
                      * problem.imbalance(assignment) ** 2)
        energies.append(model.energy(spins))
    differences = np.asarray(energies) - np.asarray(scores)
    assert np.allclose(differences, differences[0], atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_annealed_partition_is_valid(seed):
    problem = PartitioningProblem.random(7, seed=seed)
    from repro.annealing import SimulatedAnnealingSolver

    assignment = partition_annealing(
        problem,
        solver=SimulatedAnnealingSolver(num_sweeps=100, num_reads=5,
                                        seed=seed),
    )
    assert len(assignment) == 7
    assert set(assignment) <= {0, 1}
    assert assignment[0] == 0  # gauge fixed
