"""Generated JOB-style workload suite: determinism and stable keys."""

import numpy as np
import pytest

from repro.db.workloads import (
    TOPOLOGIES,
    generate_join_workload,
    instance_identity,
)


def graphs_equal(a, b):
    return (np.allclose(a.cardinalities, b.cardinalities)
            and a.selectivities == b.selectivities)


def test_generation_is_seed_deterministic():
    first = generate_join_workload(sizes=(4, 5), instances_per_cell=3,
                                   seed=0)
    second = generate_join_workload(sizes=(4, 5), instances_per_cell=3,
                                    seed=0)
    assert first.workload_key == second.workload_key
    assert len(first) == len(second) == len(TOPOLOGIES) * 2 * 3
    for a, b in zip(first, second):
        assert a.instance_key == b.instance_key
        assert a.seed == b.seed
        assert graphs_equal(a.graph, b.graph)


def test_workload_key_tracks_parameters():
    base = generate_join_workload(sizes=(4,), instances_per_cell=2,
                                  seed=0)
    other_seed = generate_join_workload(sizes=(4,),
                                        instances_per_cell=2, seed=1)
    other_sizes = generate_join_workload(sizes=(5,),
                                         instances_per_cell=2, seed=0)
    assert base.workload_key != other_seed.workload_key
    assert base.workload_key != other_sizes.workload_key
    assert len({base.workload_key, other_seed.workload_key,
                other_sizes.workload_key}) == 3


def test_limit_is_a_stable_prefix():
    """Truncation changes the workload key but not instance identity."""
    full = generate_join_workload(sizes=(4, 5), instances_per_cell=3,
                                  seed=0)
    truncated = generate_join_workload(sizes=(4, 5),
                                       instances_per_cell=3, seed=0,
                                       limit=5)
    assert len(truncated) == 5
    assert truncated.workload_key != full.workload_key
    assert truncated.base_key == full.base_key
    for a, b in zip(truncated, full):
        assert a.instance_key == b.instance_key
        assert graphs_equal(a.graph, b.graph)


def test_instance_identity_is_coordinate_addressed():
    """Seeds hash the coordinate, not the generation order, so an
    instance is regenerable from its coordinates alone."""
    workload = generate_join_workload(sizes=(4,), instances_per_cell=2,
                                      seed=0)
    for instance in workload:
        seed, key = instance_identity(
            workload.base_key, instance.topology,
            instance.num_relations, instance.index,
        )
        assert seed == instance.seed
        assert key == instance.instance_key
    # Distinct coordinates never collide on key or seed.
    keys = {instance.instance_key for instance in workload}
    assert len(keys) == len(workload)


def test_instance_keys_are_stable_across_versions():
    """Pinned hashes: the identity scheme is part of the on-disk
    contract (plans and bench records embed these keys)."""
    seed, key = instance_identity("0123456789ab", "chain", 4, 0)
    assert (seed, key) == (744906333, "2c665e5dc335")


def test_generation_validates_inputs():
    with pytest.raises(ValueError, match="topology"):
        generate_join_workload(topologies=("ring",))
    with pytest.raises(ValueError, match="at least one"):
        generate_join_workload(topologies=())
    with pytest.raises(ValueError, match=">= 2"):
        generate_join_workload(sizes=(1,))
    with pytest.raises(ValueError, match="instances_per_cell"):
        generate_join_workload(instances_per_cell=0)
    with pytest.raises(ValueError, match="limit"):
        generate_join_workload(limit=0)
