"""Tests for the repro-bench/v1 validator and bench-compare watchdog."""

import copy
import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.telemetry.bench_compare import (
    compare_documents,
    main as compare_main,
)
from repro.telemetry.bench_schema import (
    BENCH_SCHEMA,
    BenchSchemaError,
    check_perf_gates,
    load_document,
    main as schema_main,
    validate_document,
    workloads_by_name,
)


def _document():
    return {
        "schema": BENCH_SCHEMA,
        "provenance": {"benchmark": "test"},
        "workloads": [
            {
                "name": "kernel_gram",
                "params": {"num_points": 64, "seed": 7},
                "loop_seconds": 0.10,
                "batched_seconds": 0.01,
                "speedup": 10.0,
                "max_abs_diff": 1e-14,
                "deterministic": True,
            },
            {
                "name": "compile_dispatch",
                "params": {"num_relations": 7, "seed": 13},
                "direct_seconds": 0.20,
                "dispatch_seconds": 0.205,
                "overhead_fraction": 0.025,
                "matches_direct": True,
                "deterministic": True,
            },
        ],
    }


# -- schema validation -------------------------------------------------
def test_validate_accepts_wellformed_document():
    validate_document(_document())  # must not raise


def test_validate_rejects_bad_documents():
    with pytest.raises(BenchSchemaError):
        validate_document([])
    wrong_tag = _document()
    wrong_tag["schema"] = "repro-bench/v2"
    with pytest.raises(BenchSchemaError, match="schema tag"):
        validate_document(wrong_tag)
    no_provenance = _document()
    del no_provenance["provenance"]
    with pytest.raises(BenchSchemaError, match="provenance"):
        validate_document(no_provenance)
    empty = _document()
    empty["workloads"] = []
    with pytest.raises(BenchSchemaError, match="non-empty"):
        validate_document(empty)
    bad_timing = _document()
    bad_timing["workloads"][0]["loop_seconds"] = float("nan")
    with pytest.raises(BenchSchemaError, match="finite"):
        validate_document(bad_timing)
    no_timing = _document()
    no_timing["workloads"][0] = {"name": "x", "params": {}}
    with pytest.raises(BenchSchemaError, match="_seconds"):
        validate_document(no_timing)


def test_validate_accepts_runs_shape():
    validate_document({
        "schema": BENCH_SCHEMA,
        "provenance": {},
        "runs": [{"test": "bench_e8", "metrics": {}}],
    })


def test_workloads_by_name_rejects_duplicates():
    document = _document()
    document["workloads"].append(dict(document["workloads"][0]))
    with pytest.raises(BenchSchemaError, match="duplicate"):
        workloads_by_name(document)


def test_check_perf_gates():
    assert check_perf_gates(_document()) == []
    broken = _document()
    broken["workloads"][0]["deterministic"] = False
    broken["workloads"][0]["max_abs_diff"] = 1e-3
    broken["workloads"][1]["overhead_fraction"] = 0.2
    failures = check_perf_gates(broken)
    assert len(failures) == 3
    assert check_perf_gates(broken, max_dispatch_overhead=0.5) != failures


def test_load_document_reports_unreadable(tmp_path):
    with pytest.raises(BenchSchemaError, match="cannot load"):
        load_document(str(tmp_path / "missing.json"))
    garbled = tmp_path / "bad.json"
    garbled.write_text("{not json")
    with pytest.raises(BenchSchemaError, match="cannot load"):
        load_document(str(garbled))


def test_schema_cli(tmp_path, capsys):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_document()))
    assert schema_main([str(path), "--gates"]) == 0
    out = capsys.readouterr().out
    assert "valid repro-bench/v1" in out
    assert "perf gates OK" in out
    broken = _document()
    broken["workloads"][1]["overhead_fraction"] = 0.9
    path.write_text(json.dumps(broken))
    assert schema_main([str(path)]) == 0         # structurally fine
    assert schema_main([str(path), "--gates"]) == 1


# -- compare policy ----------------------------------------------------
def test_identical_documents_have_no_regressions():
    report = compare_documents(_document(), _document(), tolerance=0.1)
    assert report.regressions == []
    assert "no regressions" in report.render()


def test_injected_slowdown_is_flagged():
    candidate = copy.deepcopy(_document())
    workload = candidate["workloads"][0]
    workload["batched_seconds"] *= 1.2          # 20% slowdown
    workload["speedup"] /= 1.2
    report = compare_documents(_document(), candidate, tolerance=0.1)
    regressed = {(r.workload, r.metric) for r in report.regressions}
    assert ("kernel_gram", "batched_seconds") in regressed
    assert ("kernel_gram", "speedup") in regressed
    # within-tolerance slowdowns pass
    mild = copy.deepcopy(_document())
    mild["workloads"][0]["batched_seconds"] *= 1.05
    assert not compare_documents(_document(), mild,
                                 tolerance=0.1).regressions


def test_overhead_fraction_uses_absolute_slack():
    candidate = copy.deepcopy(_document())
    candidate["workloads"][1]["overhead_fraction"] = 0.08
    assert not compare_documents(_document(), candidate,
                                 tolerance=0.1).regressions
    candidate["workloads"][1]["overhead_fraction"] = 0.2
    report = compare_documents(_document(), candidate, tolerance=0.1)
    assert [r.metric for r in report.regressions] == [
        "overhead_fraction"
    ]


def test_params_mismatch_compares_ratios_only():
    candidate = copy.deepcopy(_document())
    candidate["workloads"][0]["params"]["num_points"] = 12
    candidate["workloads"][0]["batched_seconds"] = 5.0  # much slower
    candidate["workloads"][0]["speedup"] = 9.5          # within 10%
    report = compare_documents(_document(), candidate, tolerance=0.1)
    assert not report.regressions   # seconds were not compared
    metrics = {(r.workload, r.metric, r.status) for r in report.rows}
    assert ("kernel_gram", "params", "info") in metrics
    candidate["workloads"][0]["speedup"] = 2.0          # ratio collapse
    report = compare_documents(_document(), candidate, tolerance=0.1)
    assert [r.metric for r in report.regressions] == ["speedup"]


def test_missing_workload_is_a_regression():
    candidate = copy.deepcopy(_document())
    del candidate["workloads"][1]
    report = compare_documents(_document(), candidate, tolerance=0.1)
    assert any(r.workload == "compile_dispatch" and r.is_regression
               for r in report.rows)
    # extra candidate workloads are informational, not failures
    extra = copy.deepcopy(_document())
    extra["workloads"].append({
        "name": "new_thing", "params": {}, "run_seconds": 1.0,
    })
    assert not compare_documents(_document(), extra,
                                 tolerance=0.1).regressions


def test_only_filter_restricts_comparison():
    candidate = copy.deepcopy(_document())
    candidate["workloads"][0]["batched_seconds"] *= 2.0  # regression
    report = compare_documents(_document(), candidate, tolerance=0.1,
                               only="compile_dispatch")
    assert not report.regressions   # kernel_gram was filtered out
    assert {r.workload for r in report.rows} == {"compile_dispatch"}
    report = compare_documents(_document(), candidate, tolerance=0.1,
                               only="kernel_gram")
    assert report.regressions
    with pytest.raises(BenchSchemaError, match="no workload named"):
        compare_documents(_document(), candidate, only="nope")


def test_empty_baseline_rejected():
    baseline = {"schema": BENCH_SCHEMA, "provenance": {}, "runs": []}
    with pytest.raises(BenchSchemaError, match="no workloads"):
        compare_documents(baseline, _document())


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        compare_documents(_document(), _document(), tolerance=-0.1)


# -- CLI ---------------------------------------------------------------
def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_cli_exit_codes(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _document())
    slow = copy.deepcopy(_document())
    slow["workloads"][0]["batched_seconds"] *= 1.2
    candidate = _write(tmp_path, "cand.json", slow)

    assert compare_main([baseline, baseline]) == 0
    assert compare_main([baseline, candidate, "--tolerance", "0.1"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert compare_main([baseline, candidate, "--tolerance", "0.5"]) == 0
    assert compare_main([baseline, str(tmp_path / "nope.json")]) == 2
    assert compare_main([baseline, candidate, "--tolerance", "0.1",
                         "--workload", "compile_dispatch"]) == 0
    assert compare_main([baseline, candidate,
                         "--workload", "missing"]) == 2


def test_cli_via_experiments_subcommand(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _document())
    slow = copy.deepcopy(_document())
    slow["workloads"][1]["dispatch_seconds"] *= 1.5
    candidate = _write(tmp_path, "cand.json", slow)
    assert experiments_main(["bench-compare", baseline, baseline]) == 0
    assert experiments_main(["bench-compare", baseline, candidate]) == 1
    out = capsys.readouterr().out
    assert "dispatch_seconds" in out
