"""Tests for barren-plateau diagnostics."""

import numpy as np
import pytest

from repro.qml.barren import (
    exponential_decay_rate,
    sample_gradient_component,
    variance_scan,
)


def test_sample_statistics_shapes():
    stats = sample_gradient_component(2, 2, num_samples=10, seed=0)
    assert stats.num_qubits == 2
    assert len(stats.samples) == 10
    assert stats.variance >= 0


def test_sample_mean_near_zero():
    """Random-circuit gradients average to ~0 (unbiased landscape)."""
    stats = sample_gradient_component(3, 3, num_samples=60, seed=1)
    assert abs(stats.mean) < 4 * np.sqrt(stats.variance / 60) + 0.05


def test_variance_decreases_with_qubits():
    scan = variance_scan([2, 4, 6], depth=3, num_samples=40, seed=2)
    variances = [s.variance for s in scan]
    assert variances[-1] < variances[0]


def test_decay_rate_positive_for_plateau():
    scan = variance_scan([2, 4, 6], depth=3, num_samples=40, seed=3)
    assert exponential_decay_rate(scan) > 0


def test_decay_rate_needs_two_points():
    scan = variance_scan([2], depth=2, num_samples=5, seed=4)
    with pytest.raises(ValueError):
        exponential_decay_rate(scan)


def test_single_qubit_uses_z_observable():
    stats = sample_gradient_component(1, 2, num_samples=5, seed=5)
    assert stats.num_qubits == 1


def test_component_bounds_checked():
    with pytest.raises(ValueError):
        sample_gradient_component(2, 1, num_samples=5, component=999)


def test_requires_two_samples():
    with pytest.raises(ValueError):
        sample_gradient_component(2, 1, num_samples=1)
