"""Tests for the one-vs-rest multiclass VQC wrapper."""

import numpy as np
import pytest

from repro.datasets import make_blobs, minmax_scale
from repro.qml import OneVsRestVariationalClassifier, VariationalClassifier


@pytest.fixture(scope="module")
def three_blobs():
    X, y = make_blobs(45, centers=3, spread=0.3, seed=0)
    return minmax_scale(X), y


@pytest.fixture(scope="module")
def fitted(three_blobs):
    X, y = three_blobs
    clf = OneVsRestVariationalClassifier(
        classifier_factory=lambda: VariationalClassifier(
            2, num_layers=1, epochs=10, seed=0
        )
    )
    return clf.fit(X, y), X, y


def test_multiclass_predicts_all_classes(fitted):
    clf, X, y = fitted
    predictions = clf.predict(X)
    assert set(predictions) <= set(np.unique(y))


def test_multiclass_beats_chance_on_blobs(fitted):
    clf, X, y = fitted
    assert clf.score(X, y) > 1.0 / 3.0 + 0.15


def test_decision_matrix_shape(fitted):
    clf, X, _ = fitted
    margins = clf.decision_matrix(X[:5])
    assert margins.shape == (5, 3)


def test_argmax_consistency(fitted):
    clf, X, _ = fitted
    margins = clf.decision_matrix(X[:8])
    predictions = clf.predict(X[:8])
    assert (predictions == clf.classes_[margins.argmax(axis=1)]).all()


def test_unfitted_raises():
    clf = OneVsRestVariationalClassifier()
    with pytest.raises(RuntimeError):
        clf.predict(np.ones((1, 2)))


def test_requires_two_classes():
    clf = OneVsRestVariationalClassifier()
    with pytest.raises(ValueError):
        clf.fit(np.ones((3, 2)), np.zeros(3))


def test_length_mismatch():
    clf = OneVsRestVariationalClassifier()
    with pytest.raises(ValueError):
        clf.fit(np.ones((3, 2)), np.array([0, 1]))


def test_default_factory_used_when_none(three_blobs):
    X, y = three_blobs
    # Only check construction path; training with defaults is slow,
    # so shrink via a tiny subset.
    clf = OneVsRestVariationalClassifier()
    clf.fit(X[:9], y[:9])
    assert len(clf._classifiers) == len(np.unique(y[:9]))
