"""Tests for the variational classifier and regressor.

Training runs here use tiny budgets — the goal is correctness of the
pipeline (shapes, labels, loss descent), not benchmark accuracy, which
experiments E2/E13 measure properly.
"""

import numpy as np
import pytest

from repro.datasets import make_linearly_separable, make_moons
from repro.qml import (
    AngleEncoding,
    IQPEncoding,
    VariationalClassifier,
    VariationalRegressor,
)


@pytest.fixture(scope="module")
def tiny_classification_data():
    X, y = make_linearly_separable(24, dim=2, margin=0.3, seed=0)
    return X, y


@pytest.fixture(scope="module")
def fitted_classifier(tiny_classification_data):
    X, y = tiny_classification_data
    clf = VariationalClassifier(2, num_layers=1, epochs=10, seed=1)
    return clf.fit(X, y), X, y


def test_classifier_predictions_shape_and_labels(fitted_classifier):
    clf, X, y = fitted_classifier
    predictions = clf.predict(X)
    assert predictions.shape == (X.shape[0],)
    assert set(predictions) <= set(np.unique(y))


def test_classifier_learns_separable_data(fitted_classifier):
    clf, X, y = fitted_classifier
    assert clf.score(X, y) >= 0.75


def test_classifier_decision_function_range(fitted_classifier):
    clf, X, _ = fitted_classifier
    scores = clf.decision_function(X)
    assert (np.abs(scores) <= 1.0 + 1e-9).all()


def test_classifier_proba_in_unit_interval(fitted_classifier):
    clf, X, _ = fitted_classifier
    probabilities = clf.predict_proba(X)
    assert ((probabilities >= 0) & (probabilities <= 1)).all()


def test_classifier_loss_history_decreases(fitted_classifier):
    clf, _, _ = fitted_classifier
    history = clf.loss_history_
    assert len(history) >= 2
    assert history[-1] < history[0] + 1e-9


def test_classifier_string_labels():
    X, y = make_linearly_separable(16, seed=3)
    labels = np.where(y == 1, "pos", "neg")
    clf = VariationalClassifier(2, num_layers=1, epochs=4, seed=0)
    clf.fit(X, labels)
    assert set(clf.predict(X[:4])) <= {"pos", "neg"}


def test_classifier_rejects_multiclass():
    X = np.random.default_rng(0).normal(size=(9, 2))
    y = np.array([0, 1, 2] * 3)
    with pytest.raises(ValueError):
        VariationalClassifier(2, epochs=1).fit(X, y)


def test_classifier_rejects_length_mismatch():
    with pytest.raises(ValueError):
        VariationalClassifier(2, epochs=1).fit(np.ones((4, 2)), [0, 1])


def test_classifier_requires_fit_before_predict():
    clf = VariationalClassifier(2, epochs=1)
    with pytest.raises(RuntimeError):
        clf.predict(np.ones((1, 2)))


def test_classifier_custom_encoding():
    X, y = make_moons(16, seed=4)
    clf = VariationalClassifier(
        IQPEncoding(2, depth=1), num_layers=1, epochs=3, seed=0
    )
    clf.fit(X, y)
    assert clf.predict(X).shape == (16,)


def test_classifier_minibatch_training():
    X, y = make_linearly_separable(20, seed=5)
    clf = VariationalClassifier(2, num_layers=1, epochs=6, batch_size=5,
                                seed=0)
    clf.fit(X, y)
    assert clf.weights_ is not None


def test_classifier_data_reuploading_has_longer_circuit():
    base = VariationalClassifier(2, num_layers=1, seed=0)
    reup = VariationalClassifier(2, num_layers=1, data_reuploads=2, seed=0)
    x = np.array([0.1, 0.2])
    assert len(reup._full_circuit(x)) > len(base._full_circuit(x))


def test_classifier_rejects_bad_constructor_args():
    with pytest.raises(TypeError):
        VariationalClassifier("not-an-encoding")
    with pytest.raises(ValueError):
        VariationalClassifier(2, epochs=0)
    with pytest.raises(ValueError):
        VariationalClassifier(2, data_reuploads=0)


def test_classifier_shot_based_outputs_are_noisy_but_bounded():
    X, y = make_linearly_separable(8, seed=6)
    clf = VariationalClassifier(2, num_layers=1, epochs=2, shots=64, seed=0)
    clf.fit(X, y)
    scores = clf.decision_function(X)
    assert (np.abs(scores) <= 1.0 + 1e-9).all()


# ----------------------------------------------------------------------
# Regressor
# ----------------------------------------------------------------------
def test_regressor_fits_linear_trend():
    rng = np.random.default_rng(7)
    X = rng.uniform(-1, 1, size=(20, 1))
    y = 0.8 * X[:, 0]
    # Gentle encoding scaling keeps the target within one monotone arc
    # of the circuit's Fourier spectrum (pi wraps and kills the fit).
    reg = VariationalRegressor(AngleEncoding(1, scaling=1.5),
                               num_layers=2, epochs=40, seed=0)
    reg.fit(X, y)
    assert reg.score(X, y) > 0.8


def test_regressor_output_range_calibrated():
    rng = np.random.default_rng(8)
    X = rng.uniform(-1, 1, size=(10, 1))
    y = 100.0 + 10.0 * X[:, 0]
    reg = VariationalRegressor(1, num_layers=1, epochs=5, seed=0)
    reg.fit(X, y)
    predictions = reg.predict(X)
    assert predictions.min() > 50.0  # rescaled into the target range


def test_regressor_constant_targets():
    X = np.ones((6, 1))
    y = np.full(6, 2.5)
    reg = VariationalRegressor(AngleEncoding(1, scaling=1.5),
                               num_layers=1, epochs=10, seed=0)
    reg.fit(X, y)
    assert np.allclose(reg.predict(X), 2.5, atol=0.3)


def test_regressor_score_is_r_squared():
    rng = np.random.default_rng(9)
    X = rng.uniform(-1, 1, size=(12, 1))
    y = X[:, 0]
    reg = VariationalRegressor(1, num_layers=2, epochs=20, seed=1)
    reg.fit(X, y)
    assert reg.score(X, y) <= 1.0
