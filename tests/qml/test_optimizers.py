"""Tests for the variational optimizers on analytic objectives."""

import numpy as np
import pytest

from repro.qml.optimizers import (
    SPSA,
    Adam,
    GradientDescent,
    Momentum,
    make_optimizer,
)


def quadratic(x):
    return float(((x - 3.0) ** 2).sum())


def quadratic_gradient(x):
    return 2.0 * (x - 3.0)


@pytest.mark.parametrize("optimizer", [
    GradientDescent(learning_rate=0.1),
    Momentum(learning_rate=0.05),
    Adam(learning_rate=0.3),
])
def test_gradient_optimizers_converge_on_quadratic(optimizer):
    result = optimizer.minimize(
        quadratic, np.zeros(3), gradient=quadratic_gradient, max_iter=200
    )
    assert np.allclose(result.x, 3.0, atol=0.05)
    assert result.fun < 1e-2


def test_spsa_converges_without_gradient():
    optimizer = SPSA(a=0.5, c=0.2, seed=0)
    result = optimizer.minimize(quadratic, np.zeros(3), max_iter=500)
    assert result.fun < 0.5


def test_spsa_tolerates_noisy_objective():
    rng = np.random.default_rng(1)

    def noisy(x):
        return quadratic(x) + rng.normal(scale=0.05)

    result = SPSA(a=0.5, c=0.2, seed=2).minimize(
        noisy, np.zeros(2), max_iter=500
    )
    assert np.allclose(result.x, 3.0, atol=0.5)


@pytest.mark.parametrize("optimizer_cls", [GradientDescent, Momentum, Adam])
def test_gradient_optimizers_require_gradient(optimizer_cls):
    with pytest.raises(ValueError):
        optimizer_cls().minimize(quadratic, np.zeros(2), max_iter=5)


def test_history_and_counts_recorded():
    result = Adam(learning_rate=0.2).minimize(
        quadratic, np.zeros(2), gradient=quadratic_gradient, max_iter=10
    )
    assert result.nit == 10
    assert len(result.history) == 11  # iterations + final evaluation
    assert result.nfev == 11


def test_history_is_decreasing_overall():
    result = Adam(learning_rate=0.2).minimize(
        quadratic, np.zeros(2), gradient=quadratic_gradient, max_iter=50
    )
    assert result.history[-1] < result.history[0]


def test_callback_invoked_each_iteration():
    calls = []
    Adam().minimize(
        quadratic, np.zeros(1), gradient=quadratic_gradient, max_iter=7,
        callback=lambda it, x, value: calls.append(it),
    )
    assert calls == list(range(7))


def test_make_optimizer_lookup():
    assert isinstance(make_optimizer("adam"), Adam)
    assert isinstance(make_optimizer("spsa", seed=1), SPSA)
    with pytest.raises(KeyError):
        make_optimizer("lbfgs")


@pytest.mark.parametrize("cls, kwargs", [
    (GradientDescent, {"learning_rate": 0.0}),
    (Momentum, {"momentum": 1.0}),
    (Adam, {"learning_rate": -1.0}),
    (SPSA, {"a": 0.0}),
])
def test_invalid_hyperparameters_rejected(cls, kwargs):
    with pytest.raises(ValueError):
        cls(**kwargs)


def test_spsa_is_deterministic_with_seed():
    result_a = SPSA(seed=42).minimize(quadratic, np.zeros(2), max_iter=50)
    result_b = SPSA(seed=42).minimize(quadratic, np.zeros(2), max_iter=50)
    assert np.allclose(result_a.x, result_b.x)
