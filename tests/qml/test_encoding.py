"""Unit + property tests for data encodings and state preparation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qml.encoding import (
    AmplitudeEncoding,
    AngleEncoding,
    BasisEncoding,
    IQPEncoding,
    mottonen_state_preparation,
)
from repro.quantum import StatevectorSimulator, zero_state

SIM = StatevectorSimulator()


# ----------------------------------------------------------------------
# Basis encoding
# ----------------------------------------------------------------------
def test_basis_encoding_maps_bits_to_basis_state():
    enc = BasisEncoding(3)
    state = enc.state([1, 0, 1])
    assert abs(state[0b101]) == pytest.approx(1.0)


def test_basis_encoding_rejects_non_bits():
    with pytest.raises(ValueError):
        BasisEncoding(2).circuit([0.5, 1.0])


def test_basis_encoding_rejects_wrong_length():
    with pytest.raises(ValueError):
        BasisEncoding(2).circuit([1])


def test_basis_encoding_rejects_zero_bits():
    with pytest.raises(ValueError):
        BasisEncoding(0)


# ----------------------------------------------------------------------
# Angle encoding
# ----------------------------------------------------------------------
def test_angle_encoding_ry_amplitudes():
    enc = AngleEncoding(1, rotation="ry")
    state = enc.state([0.8])
    assert state[0].real == pytest.approx(math.cos(0.4))
    assert state[1].real == pytest.approx(math.sin(0.4))


def test_angle_encoding_scaling():
    enc = AngleEncoding(1, rotation="ry", scaling=2.0)
    state = enc.state([0.4])
    assert state[0].real == pytest.approx(math.cos(0.4))


def test_angle_encoding_zero_keeps_ground_state():
    enc = AngleEncoding(3)
    assert np.allclose(enc.state([0, 0, 0]), zero_state(3))


def test_angle_encoding_rz_uses_hadamard():
    qc = AngleEncoding(2, rotation="rz").circuit([0.1, 0.2])
    assert qc.count_ops().get("h") == 2


def test_angle_encoding_entangle_appends_cx():
    qc = AngleEncoding(3, entangle=True).circuit([0.1, 0.2, 0.3])
    assert qc.count_ops().get("cx") == 2


def test_angle_encoding_rejects_bad_rotation():
    with pytest.raises(ValueError):
        AngleEncoding(2, rotation="rw")


def test_angle_encoding_feature_count_mismatch():
    with pytest.raises(ValueError):
        AngleEncoding(2).circuit([0.1])


# ----------------------------------------------------------------------
# IQP encoding
# ----------------------------------------------------------------------
def test_iqp_depth_controls_repetitions():
    shallow = IQPEncoding(3, depth=1).circuit([0.1, 0.2, 0.3])
    deep = IQPEncoding(3, depth=3).circuit([0.1, 0.2, 0.3])
    assert len(deep) == 3 * len(shallow)


def test_iqp_full_entanglement_pairs():
    qc = IQPEncoding(4, depth=1, full_entanglement=True).circuit(
        [0.1, 0.2, 0.3, 0.4]
    )
    assert qc.count_ops().get("rzz") == 6  # C(4, 2)


def test_iqp_linear_entanglement_pairs():
    qc = IQPEncoding(4, depth=1).circuit([0.1, 0.2, 0.3, 0.4])
    assert qc.count_ops().get("rzz") == 3


def test_iqp_state_is_normalized():
    state = IQPEncoding(3, depth=2).state([0.5, 1.0, 1.5])
    assert np.linalg.norm(state) == pytest.approx(1.0)


def test_iqp_zero_features_gives_uniform_superposition():
    state = IQPEncoding(2, depth=1).state([0.0, 0.0])
    assert np.allclose(np.abs(state), 0.5)


def test_iqp_rejects_bad_depth():
    with pytest.raises(ValueError):
        IQPEncoding(2, depth=0)


# ----------------------------------------------------------------------
# Amplitude encoding / Mottonen
# ----------------------------------------------------------------------
def test_amplitude_encoding_exact_state():
    enc = AmplitudeEncoding(4)
    vec = np.array([0.5, -0.5, 0.5, 0.5])
    assert np.allclose(enc.state(vec).real, vec)


def test_amplitude_encoding_normalizes():
    enc = AmplitudeEncoding(4)
    state = enc.state([3.0, 0.0, 4.0, 0.0])
    assert np.linalg.norm(state) == pytest.approx(1.0)
    assert state[0].real == pytest.approx(0.6)


def test_amplitude_encoding_pads_to_power_of_two():
    enc = AmplitudeEncoding(3)
    assert enc.num_qubits == 2
    state = enc.state([1.0, 1.0, 1.0])
    assert state[3] == pytest.approx(0.0)


def test_amplitude_encoding_rejects_zero_vector():
    with pytest.raises(ValueError):
        AmplitudeEncoding(4).state([0.0, 0.0, 0.0, 0.0])


def test_amplitude_encoding_circuit_matches_state():
    enc = AmplitudeEncoding(8)
    x = np.array([1.0, -2.0, 3.0, 0.5, -0.25, 2.0, 1.5, -1.0])
    circuit_state = SIM.run(enc.circuit(x))
    assert np.allclose(circuit_state, enc.state(x), atol=1e-9)


def test_mottonen_rejects_unnormalized():
    with pytest.raises(ValueError):
        mottonen_state_preparation([1.0, 1.0])


def test_mottonen_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        mottonen_state_preparation([1.0, 0.0, 0.0])


def test_mottonen_single_qubit():
    state = SIM.run(mottonen_state_preparation([0.6, -0.8]))
    assert np.allclose(state.real, [0.6, -0.8])


@settings(max_examples=30, deadline=None)
@given(
    num_qubits=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_mottonen_prepares_any_real_state(num_qubits, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** num_qubits)
    vec /= np.linalg.norm(vec)
    state = SIM.run(mottonen_state_preparation(vec))
    assert np.allclose(state.real, vec, atol=1e-8)
    assert np.allclose(state.imag, 0.0, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    features=st.lists(
        st.floats(min_value=-2.0, max_value=2.0), min_size=2, max_size=4
    ),
)
def test_property_encodings_produce_normalized_states(features):
    for enc in (
        AngleEncoding(len(features)),
        IQPEncoding(len(features)),
    ):
        state = enc.state(features)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)


# ----------------------------------------------------------------------
# Batched state preparation (PR 2)
# ----------------------------------------------------------------------
def test_state_batch_matches_per_point_for_circuit_encodings():
    rng = np.random.default_rng(6)
    X = rng.uniform(-1.0, 1.0, size=(6, 3))
    for encoding in (AngleEncoding(3), IQPEncoding(3, depth=2),
                     IQPEncoding(3, full_entanglement=True)):
        batched = encoding.state_batch(X)
        assert batched.shape == (6, 2 ** encoding.num_qubits)
        for row, state in zip(X, batched):
            assert np.abs(state - encoding.state(row)).max() < 1e-10


def test_state_batch_matches_per_point_for_closed_forms():
    basis_X = np.array([[0, 1], [1, 1], [0, 0]])
    batched = BasisEncoding(2).state_batch(basis_X)
    for row, state in zip(basis_X, batched):
        assert np.allclose(state, BasisEncoding(2).state(row))

    rng = np.random.default_rng(7)
    amp_X = rng.normal(size=(5, 4))
    batched = AmplitudeEncoding(4).state_batch(amp_X)
    for row, state in zip(amp_X, batched):
        assert np.allclose(state, AmplitudeEncoding(4).state(row))


def test_amplitude_state_batch_rejects_zero_rows():
    X = np.array([[1.0, 0.0], [0.0, 0.0]])
    with pytest.raises(ValueError):
        AmplitudeEncoding(2).state_batch(X)
