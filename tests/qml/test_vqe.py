"""Tests for the variational quantum eigensolver."""

import numpy as np
import pytest

from repro.annealing import IsingModel, solve_ising_exact
from repro.qml import VQE, Adam
from repro.quantum import PauliString, PauliSum


def test_vqe_single_qubit_z():
    vqe = VQE(1, num_layers=1, max_iter=60, seed=0)
    result = vqe.compute_minimum_eigenvalue(PauliString("Z"))
    assert result.eigenvalue == pytest.approx(-1.0, abs=0.01)


def test_vqe_transverse_field_pair():
    ham = PauliSum([
        PauliString("ZZ", 1.0),
        PauliString("XI", 0.5),
        PauliString("IX", 0.5),
    ])
    exact = float(np.linalg.eigvalsh(ham.matrix())[0])
    vqe = VQE(2, num_layers=2, max_iter=100, seed=0)
    result = vqe.compute_minimum_eigenvalue(ham)
    assert result.eigenvalue == pytest.approx(exact, abs=0.01)


def test_vqe_matches_ising_ground_state():
    model = IsingModel.random(3, field_scale=0.5, seed=2)
    _, exact = solve_ising_exact(model)
    vqe = VQE(3, num_layers=2, max_iter=80, restarts=2, seed=1)
    result = vqe.compute_minimum_eigenvalue(model.to_pauli_sum())
    assert result.eigenvalue <= exact + 0.1


def test_vqe_optimal_state_consistent():
    vqe = VQE(1, num_layers=1, max_iter=60, seed=0)
    result = vqe.compute_minimum_eigenvalue(PauliString("Z"))
    state = vqe.optimal_state(result)
    # Ground state of Z is |1>.
    assert abs(state[1]) ** 2 > 0.99


def test_vqe_history_decreases():
    vqe = VQE(2, num_layers=1, max_iter=40, restarts=1, seed=0)
    result = vqe.compute_minimum_eigenvalue(PauliString("ZZ"))
    assert result.history[-1] <= result.history[0]


def test_vqe_qubit_mismatch():
    vqe = VQE(2, max_iter=5)
    with pytest.raises(ValueError):
        vqe.compute_minimum_eigenvalue(PauliString("ZZZ"))


def test_vqe_validates_args():
    with pytest.raises(ValueError):
        VQE(2, restarts=0)
    with pytest.raises(ValueError):
        VQE(2, max_iter=0)


def test_vqe_custom_optimizer():
    vqe = VQE(1, num_layers=1, optimizer=Adam(learning_rate=0.3),
              max_iter=40, seed=0)
    result = vqe.compute_minimum_eigenvalue(PauliString("X"))
    assert result.eigenvalue == pytest.approx(-1.0, abs=0.01)
