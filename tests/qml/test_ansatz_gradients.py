"""Tests for ansatz builders and parameter-shift gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qml.ansatz import (
    build_ansatz,
    hardware_efficient_ansatz,
    strongly_entangling_ansatz,
    two_local_ansatz,
)
from repro.qml.gradients import (
    expectation_function,
    finite_difference_gradient,
    parameter_shift_gradient,
)
from repro.quantum import Circuit, Parameter, PauliString, PauliSum, single_z


# ----------------------------------------------------------------------
# Ansatz builders
# ----------------------------------------------------------------------
def test_hea_parameter_count():
    qc, params = hardware_efficient_ansatz(3, 2, rotations=("ry", "rz"))
    assert len(params) == 12
    assert qc.num_parameters == 12


def test_hea_entangler_count():
    qc, _ = hardware_efficient_ansatz(4, 3)
    assert qc.count_ops()["cx"] == 3 * 3


def test_hea_cz_entangler():
    qc, _ = hardware_efficient_ansatz(3, 1, entangler="cz")
    assert "cz" in qc.count_ops()


def test_hea_single_qubit_no_entanglers():
    qc, _ = hardware_efficient_ansatz(1, 2)
    assert "cx" not in qc.count_ops()


def test_hea_rejects_bad_rotation():
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(2, 1, rotations=("h",))


def test_hea_rejects_bad_entangler():
    with pytest.raises(ValueError):
        hardware_efficient_ansatz(2, 1, entangler="swap")


def test_strongly_entangling_parameter_count():
    _, params = strongly_entangling_ansatz(4, 2)
    assert len(params) == 3 * 2 * 4


def test_strongly_entangling_ring():
    qc, _ = strongly_entangling_ansatz(4, 1)
    assert qc.count_ops()["cx"] == 4


def test_two_local_parameter_count():
    _, params = two_local_ansatz(3, 2)
    # 2 layers * (3 ry + 2 rzz) + 3 final ry
    assert len(params) == 2 * 5 + 3


def test_build_ansatz_lookup():
    qc, params = build_ansatz("hardware_efficient", 2, 1)
    assert qc.num_qubits == 2
    with pytest.raises(KeyError):
        build_ansatz("nonexistent", 2, 1)


@pytest.mark.parametrize("builder", [
    hardware_efficient_ansatz,
    strongly_entangling_ansatz,
    two_local_ansatz,
])
def test_builders_validate_args(builder):
    with pytest.raises(ValueError):
        builder(0, 1)
    with pytest.raises(ValueError):
        builder(2, 0)


@pytest.mark.parametrize("name", [
    "hardware_efficient", "strongly_entangling", "two_local",
])
def test_ansatz_parameters_unique(name):
    qc, params = build_ansatz(name, 3, 2)
    assert len({id(p) for p in params}) == len(params)
    assert qc.parameters == params


# ----------------------------------------------------------------------
# Gradients
# ----------------------------------------------------------------------
def test_shift_gradient_matches_analytic_single_gate():
    theta = Parameter("theta")
    qc = Circuit(1).rx(theta, 0)
    obs = PauliSum([single_z(0, 1)])
    # <Z> = cos(theta); d/dtheta = -sin(theta)
    for value in (0.0, 0.4, 1.3, 3.0):
        grad = parameter_shift_gradient(qc, obs, [value])
        assert grad[0] == pytest.approx(-np.sin(value), abs=1e-9)


def test_shift_gradient_shared_parameter():
    theta = Parameter("theta")
    qc = Circuit(1).rx(theta, 0).rx(theta, 0)
    obs = PauliSum([single_z(0, 1)])
    # <Z> = cos(2 theta); derivative -2 sin(2 theta)
    grad = parameter_shift_gradient(qc, obs, [0.3])
    assert grad[0] == pytest.approx(-2.0 * np.sin(0.6), abs=1e-9)


def test_shift_gradient_scaled_parameter():
    theta = Parameter("theta")
    qc = Circuit(1).rx(3.0 * theta, 0)
    obs = PauliSum([single_z(0, 1)])
    grad = parameter_shift_gradient(qc, obs, [0.2])
    assert grad[0] == pytest.approx(-3.0 * np.sin(0.6), abs=1e-9)


def test_shift_gradient_value_count_mismatch():
    qc = Circuit(1).rx(Parameter("a"), 0)
    obs = PauliSum([single_z(0, 1)])
    with pytest.raises(ValueError):
        parameter_shift_gradient(qc, obs, [0.1, 0.2])


def test_shift_gradient_fallback_for_phase_gate():
    lam = Parameter("lam")
    qc = Circuit(1).h(0).p(lam, 0).h(0)
    obs = PauliSum([single_z(0, 1)])
    # <Z> after H P(l) H on |0> = cos(l)... verify vs finite differences.
    f = expectation_function(qc, obs)
    grad = parameter_shift_gradient(qc, obs, [0.7])
    fd = finite_difference_gradient(f, [0.7])
    assert grad[0] == pytest.approx(fd[0], abs=1e-4)


def test_expectation_function_evaluates():
    theta = Parameter("theta")
    qc = Circuit(1).ry(theta, 0)
    f = expectation_function(qc, PauliSum([single_z(0, 1)]))
    assert f([0.0]) == pytest.approx(1.0)
    assert f([np.pi]) == pytest.approx(-1.0)


def test_finite_difference_on_polynomial():
    grad = finite_difference_gradient(
        lambda v: v[0] ** 2 + 3 * v[1], [2.0, 5.0]
    )
    assert grad[0] == pytest.approx(4.0, abs=1e-4)
    assert grad[1] == pytest.approx(3.0, abs=1e-4)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_property_shift_matches_finite_difference(seed):
    """Parameter shift equals finite differences on random ansätze."""
    rng = np.random.default_rng(seed)
    qc, params = build_ansatz("hardware_efficient", 2, 1)
    obs = PauliSum([single_z(0, 2), PauliString("ZZ", 0.5)])
    values = rng.uniform(0, 2 * np.pi, size=len(params))
    analytic = parameter_shift_gradient(qc, obs, values)
    numeric = finite_difference_gradient(
        expectation_function(qc, obs), values
    )
    assert np.allclose(analytic, numeric, atol=1e-5)
