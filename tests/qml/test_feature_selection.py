"""Tests for QUBO feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import solve_qubo_exact
from repro.qml import (
    FeatureSelectionProblem,
    FeatureSelectionQUBO,
    mutual_information,
    select_features_annealing,
    select_features_exact,
    select_features_greedy,
)


@pytest.fixture(scope="module")
def redundant_dataset():
    """f0, f1 informative; f2 a near-copy of f0; f3..f5 noise."""
    rng = np.random.default_rng(1)
    n = 500
    f0 = rng.normal(size=n)
    f1 = rng.normal(size=n)
    y = (f0 + f1 > 0).astype(int)
    f2 = f0 + rng.normal(scale=0.1, size=n)
    noise = rng.normal(size=(n, 3))
    X = np.column_stack([f0, f1, f2, noise])
    return X, y


@pytest.fixture(scope="module")
def problem(redundant_dataset):
    X, y = redundant_dataset
    return FeatureSelectionProblem.from_data(X, y, num_selected=2)


# ----------------------------------------------------------------------
# Mutual information
# ----------------------------------------------------------------------
def test_mi_identical_variables_is_entropy():
    x = np.array([0, 0, 1, 1] * 50)
    assert mutual_information(x, x) == pytest.approx(np.log(2), abs=0.01)


def test_mi_independent_variables_near_zero():
    rng = np.random.default_rng(2)
    a = rng.normal(size=2000)
    b = rng.normal(size=2000)
    assert mutual_information(a, b) < 0.05


def test_mi_is_symmetric():
    rng = np.random.default_rng(3)
    a = rng.normal(size=500)
    b = a + rng.normal(scale=0.5, size=500)
    assert mutual_information(a, b) == pytest.approx(
        mutual_information(b, a)
    )


def test_mi_nonnegative_property():
    rng = np.random.default_rng(4)
    for _ in range(5):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        assert mutual_information(a, b) >= -1e-12


def test_mi_validations():
    with pytest.raises(ValueError):
        mutual_information(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        mutual_information(np.array([]), np.array([]))


# ----------------------------------------------------------------------
# Problem construction and objective
# ----------------------------------------------------------------------
def test_relevance_orders_informative_features(problem):
    relevance = problem.relevance
    # f0, f1, f2 all carry signal; noise features carry ~none.
    assert min(relevance[0], relevance[1], relevance[2]) > max(
        relevance[3:]
    )


def test_redundant_pair_has_high_mi(problem):
    assert problem.redundancy[0, 2] > 5 * problem.redundancy[0, 1]


def test_objective_penalizes_redundancy(problem):
    informative = problem.objective([0, 1])
    redundant = problem.objective([0, 2])
    assert informative > redundant


def test_problem_validations():
    with pytest.raises(ValueError):
        FeatureSelectionProblem(np.ones(3), np.ones((2, 2)), 1)
    with pytest.raises(ValueError):
        FeatureSelectionProblem(np.ones(3), np.zeros((3, 3)), 0)
    with pytest.raises(ValueError):
        FeatureSelectionProblem(np.ones(3), np.zeros((3, 3)), 4)


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def test_exact_avoids_redundant_copy(problem):
    selection, _ = select_features_exact(problem)
    # f0 and f2 are near-copies: an optimal pair takes f1 plus exactly
    # one of them, never both.
    assert 1 in selection
    assert len(set(selection) & {0, 2}) == 1


def test_greedy_matches_exact_here(problem):
    greedy_selection, greedy_value = select_features_greedy(problem)
    _, exact_value = select_features_exact(problem)
    assert greedy_value <= exact_value + 1e-9
    assert len(greedy_selection) == 2


def test_annealing_matches_exact(problem):
    selection, value = select_features_annealing(problem)
    _, exact_value = select_features_exact(problem)
    assert value == pytest.approx(exact_value)
    assert 1 in selection
    assert len(set(selection) & {0, 2}) == 1


def test_qubo_ground_state_respects_cardinality(problem):
    compiler = FeatureSelectionQUBO(problem)
    best = solve_qubo_exact(compiler.build())
    selection = compiler.decode(best.assignment)
    assert len(selection) == problem.num_selected


def test_decoder_repairs_wrong_cardinality(problem):
    compiler = FeatureSelectionQUBO(problem)
    compiler.build()
    nothing = compiler.decode(np.zeros(6, dtype=int))
    everything = compiler.decode(np.ones(6, dtype=int))
    assert len(nothing) == 2
    assert len(everything) == 2
    # Repair favours relevance: the empty decode picks top features.
    assert set(nothing) <= {0, 1, 2}


def test_compiler_validations(problem):
    with pytest.raises(ValueError):
        FeatureSelectionQUBO(problem, alpha=-1.0)
    with pytest.raises(ValueError):
        FeatureSelectionQUBO(problem, penalty_scale=0.0)
    compiler = FeatureSelectionQUBO(problem)
    compiler.build()
    with pytest.raises(ValueError):
        compiler.decode([0, 1])


@settings(max_examples=15, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 6 - 1))
def test_property_decoder_always_returns_k_features(problem, raw):
    compiler = FeatureSelectionQUBO(problem)
    compiler.build()
    bits = np.array([(raw >> k) & 1 for k in range(6)])
    selection = compiler.decode(bits)
    assert len(selection) == problem.num_selected
    assert len(set(selection)) == problem.num_selected
