"""Tests for quantum kernels and the kernel classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_circles, make_parity, train_test_split
from repro.qml.encoding import AngleEncoding, IQPEncoding
from repro.qml.kernels import (
    FidelityQuantumKernel,
    ProjectedQuantumKernel,
    QuantumKernelClassifier,
    kernel_target_alignment,
)


@pytest.fixture(scope="module")
def small_data():
    rng = np.random.default_rng(0)
    return rng.uniform(0, np.pi, size=(8, 2))


def test_fidelity_kernel_diagonal_is_one(small_data):
    kernel = FidelityQuantumKernel(AngleEncoding(2))
    gram = kernel(small_data)
    assert np.allclose(np.diag(gram), 1.0)


def test_fidelity_kernel_symmetric(small_data):
    gram = FidelityQuantumKernel(IQPEncoding(2))(small_data)
    assert np.allclose(gram, gram.T)


def test_fidelity_kernel_entries_in_unit_interval(small_data):
    gram = FidelityQuantumKernel(IQPEncoding(2, depth=2))(small_data)
    assert (gram >= -1e-12).all() and (gram <= 1.0 + 1e-12).all()


def test_fidelity_kernel_positive_semidefinite(small_data):
    gram = FidelityQuantumKernel(IQPEncoding(2))(small_data)
    eigenvalues = np.linalg.eigvalsh(gram)
    assert eigenvalues.min() > -1e-9


def test_fidelity_kernel_rectangular(small_data):
    kernel = FidelityQuantumKernel(AngleEncoding(2))
    gram = kernel(small_data[:3], small_data[3:])
    assert gram.shape == (3, 5)


def test_fidelity_kernel_evaluate_single_pair():
    kernel = FidelityQuantumKernel(AngleEncoding(2))
    x = np.array([0.2, 0.4])
    assert kernel.evaluate(x, x) == pytest.approx(1.0)


def test_fidelity_kernel_identical_points_kernel_one():
    kernel = FidelityQuantumKernel(IQPEncoding(2))
    gram = kernel(np.array([[0.3, 0.7], [0.3, 0.7]]))
    assert gram[0, 1] == pytest.approx(1.0)


def test_fidelity_kernel_rejects_non_encoding():
    with pytest.raises(TypeError):
        FidelityQuantumKernel("angle")


def test_projected_kernel_diagonal_is_one(small_data):
    kernel = ProjectedQuantumKernel(AngleEncoding(2), gamma=1.0)
    gram = kernel(small_data)
    assert np.allclose(np.diag(gram), 1.0)


def test_projected_kernel_features_are_probabilities(small_data):
    kernel = ProjectedQuantumKernel(AngleEncoding(2))
    feats = kernel.features(small_data)
    assert ((feats >= 0) & (feats <= 1)).all()
    assert feats.shape == (8, 2)


def test_projected_kernel_rejects_bad_gamma():
    with pytest.raises(ValueError):
        ProjectedQuantumKernel(AngleEncoding(2), gamma=0.0)


def test_alignment_perfect_kernel():
    y = np.array([0, 0, 1, 1])
    signs = np.where(y == 1, 1.0, -1.0)
    ideal = np.outer(signs, signs)
    assert kernel_target_alignment(ideal, y) == pytest.approx(1.0)


def test_alignment_random_kernel_is_lower():
    rng = np.random.default_rng(1)
    y = np.array([0, 1] * 8)
    noise = rng.uniform(size=(16, 16))
    noise = (noise + noise.T) / 2
    ideal_alignment = kernel_target_alignment(
        np.outer(np.where(y == 1, 1.0, -1.0),
                 np.where(y == 1, 1.0, -1.0)),
        y,
    )
    assert kernel_target_alignment(noise, y) < ideal_alignment


def test_alignment_shape_mismatch():
    with pytest.raises(ValueError):
        kernel_target_alignment(np.eye(3), np.array([0, 1]))


def test_quantum_kernel_classifier_on_circles():
    X, y = make_circles(48, noise=0.03, seed=2)
    Xtr, Xte, ytr, yte = train_test_split(X, y, 0.25, seed=0)
    clf = QuantumKernelClassifier(
        kernel=FidelityQuantumKernel(IQPEncoding(2, depth=2)), C=5.0
    )
    clf.fit(Xtr, ytr)
    assert clf.score(Xte, yte) >= 0.7


def test_quantum_kernel_classifier_default_kernel():
    X, y = make_circles(20, seed=3)
    clf = QuantumKernelClassifier().fit(X, y)
    assert clf.predict(X).shape == (20,)


def test_quantum_kernel_classifier_decision_function_sign():
    X, y = make_circles(24, seed=4)
    clf = QuantumKernelClassifier().fit(X, y)
    margins = clf.decision_function(X)
    predictions = clf.predict(X)
    positive = predictions == clf._svm.classes_[1]
    assert ((margins >= 0) == positive).all()


def test_quantum_kernel_classifier_unfitted_raises():
    clf = QuantumKernelClassifier(
        kernel=FidelityQuantumKernel(AngleEncoding(2))
    )
    with pytest.raises(RuntimeError):
        clf.predict(np.ones((1, 2)))


def test_quantum_kernel_separates_parity_unlike_linear():
    """The IQP kernel distinguishes parity classes that inner products
    cannot (all parity rows share the same norm structure)."""
    X, y = make_parity(3, seed=5)
    gram = FidelityQuantumKernel(IQPEncoding(3, depth=2, scaling=np.pi))(X)
    alignment = kernel_target_alignment(gram, y)
    linear = X @ X.T
    assert alignment > kernel_target_alignment(linear, y)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_gram_psd_for_random_data(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(6, 2))
    gram = FidelityQuantumKernel(IQPEncoding(2))(X)
    assert np.linalg.eigvalsh(gram).min() > -1e-9


def test_shot_based_kernel_validates_shots():
    with pytest.raises(ValueError):
        FidelityQuantumKernel(AngleEncoding(2), shots=0)


def test_shot_based_kernel_symmetric_unit_diagonal(small_data):
    kernel = FidelityQuantumKernel(AngleEncoding(2), shots=32, seed=1)
    gram = kernel(small_data)
    assert np.allclose(gram, gram.T)
    assert np.allclose(np.diag(gram), 1.0)


def test_shot_based_kernel_entries_are_frequencies(small_data):
    kernel = FidelityQuantumKernel(AngleEncoding(2), shots=8, seed=2)
    gram = kernel(small_data)
    # Every entry is a multiple of 1/8 in [0, 1].
    assert ((gram >= 0) & (gram <= 1)).all()
    assert np.allclose(gram * 8, np.round(gram * 8))


def test_shot_based_kernel_converges_to_exact(small_data):
    exact = FidelityQuantumKernel(IQPEncoding(2))(small_data)
    sampled = FidelityQuantumKernel(IQPEncoding(2), shots=8192,
                                    seed=3)(small_data)
    assert np.abs(sampled - exact).max() < 0.05


# ----------------------------------------------------------------------
# Vectorized sampled Gram (PR 2)
# ----------------------------------------------------------------------
def test_sampled_gram_symmetric_with_unit_diagonal(small_data):
    kernel = FidelityQuantumKernel(IQPEncoding(2), shots=256, seed=5)
    gram = kernel(small_data)
    assert np.allclose(np.diag(gram), 1.0)
    assert np.array_equal(gram, gram.T)
    # Shot counts are multiples of 1/shots.
    assert np.allclose(gram * 256, np.round(gram * 256))


def test_sampled_gram_deterministic_under_seed(small_data):
    first = FidelityQuantumKernel(IQPEncoding(2), shots=128,
                                  seed=9)(small_data)
    second = FidelityQuantumKernel(IQPEncoding(2), shots=128,
                                   seed=9)(small_data)
    assert np.array_equal(first, second)


def test_sampled_gram_asymmetric_block(small_data):
    kernel = FidelityQuantumKernel(IQPEncoding(2), shots=512, seed=2)
    exact = FidelityQuantumKernel(IQPEncoding(2))
    rows, cols = small_data[:3], small_data[3:]
    sampled = kernel(rows, cols)
    reference = exact(rows, cols)
    assert sampled.shape == reference.shape == (3, 5)
    assert np.abs(sampled - reference).max() < 0.2


def test_sampled_gram_converges_to_exact(small_data):
    exact = FidelityQuantumKernel(IQPEncoding(2))(small_data)
    sampled = FidelityQuantumKernel(IQPEncoding(2), shots=20_000,
                                    seed=3)(small_data)
    assert np.abs(sampled - exact).max() < 0.05


def test_projected_kernel_batched_features_match_per_point(small_data):
    kernel = ProjectedQuantumKernel(IQPEncoding(2, depth=2))
    batched = kernel.features(small_data)
    encoding = IQPEncoding(2, depth=2)
    from repro.quantum import StatevectorSimulator, marginal_probabilities

    sim = StatevectorSimulator()
    for row, feature in zip(small_data, batched):
        state = sim.run(encoding.circuit(row))
        expected = [marginal_probabilities(state, [q])[1]
                    for q in range(2)]
        assert np.allclose(feature, expected, atol=1e-12)
