"""Cross-package integration tests.

These exercise full pipelines spanning several subsystems, checking
that the solver families agree with each other on shared problems —
the consistency web that makes the library trustworthy as a whole.
"""

import numpy as np
import pytest

from repro.annealing import (
    QAOASolver,
    QUBO,
    SimulatedAnnealingSolver,
    SimulatedQuantumAnnealingSolver,
    TabuSearchSolver,
    solve_qubo_exact,
)
from repro.db import (
    EquiJoinPredicate,
    HashJoinExecutor,
    JoinOrderQUBO,
    PhysicalQuery,
    dp_optimal,
    exhaustive_left_deep,
    greedy_goo,
    left_deep_tree,
    make_star_schema,
    random_join_graph,
    solve_join_order_annealing,
    solve_join_order_grover,
    solve_join_order_rl,
)
from repro.qml import VQE, FidelityQuantumKernel, IQPEncoding
from repro.quantum import StatevectorSimulator


@pytest.fixture(scope="module")
def shared_qubo():
    rng = np.random.default_rng(42)
    return QUBO.from_matrix(rng.normal(size=(6, 6)) * 2.0)


def test_all_qubo_solver_families_agree(shared_qubo):
    """Exact, SA, SQA, tabu and QAOA all land on the same optimum of a
    small shared QUBO."""
    exact = solve_qubo_exact(shared_qubo)
    sa = SimulatedAnnealingSolver(num_sweeps=300, num_reads=15,
                                  seed=0).solve(shared_qubo)
    sqa = SimulatedQuantumAnnealingSolver(
        num_sweeps=300, num_reads=10, num_slices=12, seed=1
    ).solve(shared_qubo)
    tabu = TabuSearchSolver(num_restarts=4, max_iterations=200,
                            seed=2).solve(shared_qubo)
    qaoa = QAOASolver(p=3, restarts=3, shots=512, seed=3).solve(
        shared_qubo
    )
    assert sa.best_energy == pytest.approx(exact.energy)
    assert sqa.best_energy == pytest.approx(exact.energy)
    assert tabu.best_energy == pytest.approx(exact.energy)
    assert qaoa.samples.best_energy == pytest.approx(exact.energy)


def test_vqe_agrees_with_annealers(shared_qubo):
    """The gate-model variational route reaches the annealers' optimum
    on the shared QUBO's Ising form."""
    exact = solve_qubo_exact(shared_qubo)
    ising = shared_qubo.to_ising()
    vqe = VQE(6, num_layers=2, max_iter=80, restarts=2, seed=0)
    result = vqe.compute_minimum_eigenvalue(ising.to_pauli_sum())
    assert result.eigenvalue <= exact.energy + 0.5


def test_five_join_optimizers_on_one_graph():
    """DP, greedy, annealed QUBO, Grover and Q-learning all produce
    executable, near-optimal plans for the same query."""
    graph = random_join_graph(5, "star", seed=5)
    _, ld_optimum = exhaustive_left_deep(graph)
    _, dp_cost = dp_optimal(graph, bushy=True,
                            avoid_cross_products=False)
    _, greedy_cost = greedy_goo(graph)
    annealed = solve_join_order_annealing(graph)
    grover_order, grover_cost = solve_join_order_grover(graph, seed=0)
    rl_order, rl_cost = solve_join_order_rl(graph, episodes=1200,
                                            seed=0)
    assert dp_cost <= ld_optimum + 1e-6
    assert greedy_cost <= 2.0 * dp_cost
    assert annealed.cost <= 2.0 * ld_optimum
    assert grover_cost == pytest.approx(ld_optimum)
    assert rl_cost <= 1.5 * ld_optimum


def test_join_order_qubo_ground_state_executes_correctly():
    """Annealed plan -> executor: the optimized plan returns the same
    row count as the textbook plan on real data."""
    catalog = make_star_schema(fact_rows=600, dimension_rows=(30, 12),
                               seed=6)
    query = PhysicalQuery(
        catalog, ["fact", "dim0", "dim1"],
        predicates=[
            EquiJoinPredicate("fact", "fk0", "dim0", "id"),
            EquiJoinPredicate("fact", "fk1", "dim1", "id"),
        ],
    )
    graph = query.to_join_graph()
    annealed = solve_join_order_annealing(graph)
    executor = HashJoinExecutor(query)
    optimized = executor.execute(left_deep_tree(annealed.order))
    reference = executor.execute(left_deep_tree([0, 1, 2]))
    assert optimized.row_count == reference.row_count == 600


def test_quantum_kernel_shot_noise_converges():
    """Sampled Gram matrices converge to the exact one as shots grow."""
    rng = np.random.default_rng(7)
    X = rng.uniform(0, np.pi, size=(6, 2))
    encoding = IQPEncoding(2, depth=2)
    exact = FidelityQuantumKernel(encoding)(X)
    noisy_small = FidelityQuantumKernel(encoding, shots=16, seed=0)(X)
    noisy_large = FidelityQuantumKernel(encoding, shots=4096, seed=0)(X)
    error_small = np.abs(noisy_small - exact).mean()
    error_large = np.abs(noisy_large - exact).mean()
    assert error_large < error_small
    assert error_large < 0.02
    # Sampled symmetric Gram keeps its symmetry and unit diagonal.
    assert np.allclose(noisy_large, noisy_large.T)
    assert np.allclose(np.diag(noisy_large), 1.0)


def test_log_proxy_objective_consistency():
    """The QUBO objective, the cost model's log proxy and direct
    evaluation of the statevector pipeline agree on every permutation
    of a small graph."""
    import itertools

    from repro.db import log_cost_proxy

    graph = random_join_graph(4, "cycle", seed=8)
    formulation = JoinOrderQUBO(graph)
    qubo = formulation.build()
    for order in itertools.permutations(range(4)):
        bits = formulation.encode_order(order)
        assert qubo.energy(bits) == pytest.approx(
            log_cost_proxy(graph, list(order)), abs=1e-6
        )


def test_simulator_backends_agree_on_expectation():
    """Statevector and density-matrix simulators give identical
    noiseless expectations on random circuits."""
    from repro.quantum import (
        DensityMatrixSimulator,
        PauliString,
        random_layered_circuit,
    )

    circuit = random_layered_circuit(3, 3, seed=9)
    observable = PauliString("ZXY", 0.8)
    sv = StatevectorSimulator().expectation(circuit, observable)
    dm = DensityMatrixSimulator().expectation(circuit, observable)
    assert sv == pytest.approx(dm, abs=1e-9)


def test_qaoa_solves_join_order_qubo_end_to_end():
    """The full stack in one line of sight: a 3-relation join query
    compiles to a 9-variable QUBO, runs on the *gate-model* QAOA
    solver (9 qubits), and decodes to the optimal left-deep order."""
    graph = random_join_graph(3, "chain", seed=10)
    formulation = JoinOrderQUBO(graph)
    qubo = formulation.build()
    result = QAOASolver(p=2, restarts=2, shots=256, seed=0).solve(qubo)
    decoded = formulation.decode(result.samples.best_assignment)
    _, optimum = exhaustive_left_deep(graph)
    assert decoded.cost <= 1.5 * optimum


def test_embedded_solver_runs_db_qubo():
    """Index selection compiled for Chimera hardware: QUBO -> minor
    embedding -> physical anneal -> logical decode stays feasible."""
    from repro.annealing import EmbeddedSolver, chimera_graph
    from repro.db import IndexSelectionProblem, IndexSelectionQUBO

    problem = IndexSelectionProblem.random(6, seed=11)
    compiler = IndexSelectionQUBO(problem)
    qubo = compiler.build()
    hardware = chimera_graph(3, 3, shore=4)
    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=400, num_reads=20, seed=0),
        hardware, seed=0,
    )
    samples = solver.solve(qubo)
    best = max(
        (compiler.decode(s.assignment) for s in samples),
        key=problem.total_benefit,
    )
    assert problem.is_feasible(best)
    from repro.db import solve_index_selection_exact

    _, exact_benefit = solve_index_selection_exact(problem)
    assert problem.total_benefit(best) >= 0.7 * exact_benefit
