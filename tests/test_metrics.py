"""Tests for the live-metrics layer: instruments, registry, exports,
health rules, sampler, report CLI and hot-path instrumentation."""

import json
import threading

import pytest

from repro.telemetry import health as health_mod
from repro.telemetry import metrics as metrics_mod
from repro.telemetry.health import (
    DEFAULT_SLO_RULES,
    SLORule,
    evaluate_rule,
    evaluate_rules,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    RESERVOIR_SIZE,
    MetricsRegistry,
    quantile,
    validate_prometheus_text,
)
from repro.telemetry.metrics_report import load_snapshot, main as report_main
from repro.telemetry.sampler import MetricsSampler


@pytest.fixture(autouse=True)
def _clean_metrics():
    """Every test starts and ends with the global registry removed."""
    metrics_mod.disable_metrics()
    yield
    metrics_mod.disable_metrics()


# -- instruments -------------------------------------------------------
def test_counter_labels_and_totals():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "jobs", ("status",))
    jobs.labels(status="done").inc()
    jobs.labels(status="done").inc(2)
    jobs.labels(status="failed").inc()
    assert jobs.labels(status="done").value == 3
    assert jobs.value == 4  # total across label sets
    with pytest.raises(ValueError):
        jobs.labels(status="done").inc(-1)
    with pytest.raises(ValueError):
        jobs.labels(wrong="x")
    with pytest.raises(ValueError):
        jobs.inc()  # labeled instrument needs .labels(...)


def test_gauge_set_inc_dec_and_set_max():
    registry = MetricsRegistry()
    depth = registry.gauge("queue_depth")
    depth.set(5)
    depth.inc()
    depth.dec(2)
    assert depth.value == 4
    peak = registry.gauge("peak_bytes")
    peak.set_max(100)
    peak.set_max(50)  # running max keeps the larger value
    assert peak.value == 100


def test_histogram_buckets_reservoir_and_timer():
    registry = MetricsRegistry()
    hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    series = hist.labels()
    assert series.count == 5
    assert series.sum == pytest.approx(56.05)
    # Per-bucket counts: <=0.1, <=1, <=10, overflow.
    assert series._bucket_counts == [1, 2, 1, 1]
    assert series.quantile(0.5) == pytest.approx(0.5)
    with hist.time() as timer:
        pass
    assert timer.elapsed is not None and timer.elapsed >= 0
    assert series.count == 6


def test_registry_get_or_create_and_conflicts():
    registry = MetricsRegistry()
    first = registry.counter("c", "help", ("a",))
    assert registry.counter("c", "other help", ("a",)) is first
    with pytest.raises(ValueError):
        registry.gauge("c")  # kind conflict
    with pytest.raises(ValueError):
        registry.counter("c", labelnames=("b",))  # label conflict
    registry.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=(1.0, 3.0))  # bucket conflict
    with pytest.raises(ValueError):
        registry.counter("bad name")
    with pytest.raises(ValueError):
        registry.counter("ok", labelnames=("bad-label",))


def test_quantile_interpolation():
    assert quantile([], 0.5) is None
    assert quantile([3.0], 0.99) == 3.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_reservoir_stays_bounded_and_estimates_quantiles():
    registry = MetricsRegistry()
    hist = registry.histogram("wide", buckets=DEFAULT_BUCKETS)
    n = RESERVOIR_SIZE * 3
    for index in range(n):
        hist.observe(index / n)
    series = hist.labels()
    assert len(series._reservoir) == RESERVOIR_SIZE
    assert series.count == n
    # A uniform ramp's median is ~0.5 even from the decayed sample.
    assert series.quantile(0.5) == pytest.approx(0.5, abs=0.1)


# -- concurrency (satellite: threads hammering labeled instruments) ----
def test_concurrent_counter_and_histogram_updates_are_exact():
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", "ops", ("worker",))
    hist = registry.histogram("op_seconds", "ops", ("worker",),
                              buckets=(0.25, 0.5, 0.75))
    per_thread, num_threads = 2000, 8

    def hammer(worker_id):
        label = str(worker_id % 2)  # two label sets, contended
        series = hist.labels(worker=label)
        for index in range(per_thread):
            counter.labels(worker=label).inc()
            series.observe((index % 100) / 100.0)

    threads = [threading.Thread(target=hammer, args=(i,))
               for i in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = per_thread * num_threads
    assert counter.value == total
    snap = registry.snapshot()
    hist_series = snap["histograms"]["op_seconds"]["series"]
    assert sum(entry["count"] for entry in hist_series) == total
    assert sum(sum(entry["bucket_counts"]) for entry in hist_series) == total
    # Cumulative bucket counts must be monotone for every series.
    for entry in hist_series:
        cumulative, previous = 0, -1
        for bucket in entry["bucket_counts"]:
            cumulative += bucket
            assert cumulative >= previous
            previous = cumulative
    problems = validate_prometheus_text(registry.to_prometheus())
    assert problems == []


# -- snapshot / merge --------------------------------------------------
def test_snapshot_merge_adds_counters_and_histograms():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    for registry in (parent, worker):
        registry.counter("jobs", "", ("status",)).labels(
            status="done").inc(3)
        hist = registry.histogram("t", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        registry.gauge("depth").set(7)
    parent.merge_snapshot(worker.snapshot())
    assert parent.counter("jobs", "", ("status",)).value == 6
    merged = parent.histogram("t", buckets=(1.0, 2.0)).labels()
    assert merged.count == 6
    assert merged.sum == pytest.approx(14.0)
    assert merged._bucket_counts == [2, 2, 2]
    assert parent.gauge("depth").value == 7  # last write wins
    # Merging into an empty registry recreates instruments wholesale.
    fresh = MetricsRegistry()
    fresh.merge_snapshot(parent.snapshot())
    assert fresh.counter("jobs", "", ("status",)).value == 6


def test_snapshot_always_embeds_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("t")
    for value in range(1, 101):
        hist.observe(float(value))
    entry = registry.snapshot(include_reservoir=False)
    series = entry["histograms"]["t"]["series"][0]
    assert "reservoir" not in series
    assert series["p50"] == pytest.approx(50.5)
    assert series["p95"] == pytest.approx(95.05)
    with_reservoir = registry.snapshot()["histograms"]["t"]["series"][0]
    assert len(with_reservoir["reservoir"]) == 100


# -- exports -----------------------------------------------------------
def test_prometheus_export_invariants_and_validation():
    registry = MetricsRegistry()
    registry.counter("c_total", "a counter", ("kind",)).labels(
        kind='we"ird\\').inc(2)
    registry.gauge("g", "a gauge").set(-1.5)
    hist = registry.histogram("h_seconds", "a histogram",
                              buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 3.0):
        hist.observe(value)
    text = registry.to_prometheus()
    assert validate_prometheus_text(text) == []
    assert '# TYPE c_total counter' in text
    assert 'h_seconds_bucket{le="+Inf"} 3' in text
    assert 'h_seconds_count 3' in text
    # The checker catches real violations.
    broken = text.replace('h_seconds_bucket{le="+Inf"} 3',
                          'h_seconds_bucket{le="+Inf"} 2')
    assert any("+Inf" in problem
               for problem in validate_prometheus_text(broken))
    assert any("no # TYPE" in problem
               for problem in validate_prometheus_text("mystery 1\n"))


def test_json_export_round_trips():
    registry = MetricsRegistry()
    registry.counter("c").inc(4)
    document = json.loads(registry.to_json())
    assert document["schema"] == "repro-metrics/v1"
    assert document["counters"]["c"]["series"][0]["value"] == 4


# -- global guard (cheap-when-off semantics) ---------------------------
def test_enable_disable_cycle_and_env_opt_in(monkeypatch):
    assert metrics_mod.get_registry() is None
    assert not metrics_mod.is_metrics_enabled()
    registry = metrics_mod.enable_metrics()
    assert metrics_mod.get_registry() is registry
    metrics_mod.disable_metrics()
    assert metrics_mod.get_registry() is None
    monkeypatch.setenv(metrics_mod.ENV_VAR, "1")
    assert metrics_mod.enable_from_env() is not None
    metrics_mod.disable_metrics()
    monkeypatch.setenv(metrics_mod.ENV_VAR, "0")
    assert metrics_mod.enable_from_env() is None
    assert metrics_mod.get_registry() is None


def test_solver_records_metrics_only_when_enabled():
    from repro.annealing import IsingModel, SimulatedAnnealingSolver

    ising = IsingModel.random(8, density=0.5, seed=3)
    solver = SimulatedAnnealingSolver(num_sweeps=10, num_reads=2, seed=3)
    solver.solve(ising)  # disabled: must not create any state
    registry = metrics_mod.enable_metrics()
    solver.solve(ising)
    snap = registry.snapshot()
    sweeps = snap["counters"]["solver_sweeps_total"]["series"]
    assert sweeps == [{"labels": {"solver": "sa"}, "value": 20.0}]
    moves = {tuple(sorted(entry["labels"].items())): entry["value"]
             for entry in snap["counters"]["solver_moves_total"]["series"]}
    accepted = moves[(("outcome", "accepted"), ("solver", "sa"))]
    rejected = moves[(("outcome", "rejected"), ("solver", "sa"))]
    assert accepted + rejected == 20 * 8  # sweeps * spins


def test_statevector_and_dispatch_record_metrics():
    import numpy as np

    from repro.compile import SolverConfig, solve
    from repro.db import JoinOrderQUBO, random_join_graph
    from repro.quantum import Circuit, StatevectorSimulator

    registry = metrics_mod.enable_metrics()
    qc = Circuit(2)
    qc.h(0)
    qc.cx(0, 1)
    state = StatevectorSimulator().run(qc)
    problem = JoinOrderQUBO(random_join_graph(4, "chain", seed=0)).compile()
    solve(problem, "sa", config=SolverConfig(num_sweeps=20, num_reads=2,
                                             seed=1))
    snap = registry.snapshot()
    gates = snap["counters"]["quantum_gate_applications_total"]["series"]
    assert gates == [{"labels": {"mode": "single"}, "value": 2.0}]
    assert (snap["gauges"]["quantum_statevector_peak_bytes"]["series"]
            [0]["value"] == state.nbytes)
    solve_hist = snap["histograms"]["solver_solve_seconds"]["series"]
    assert solve_hist[0]["labels"] == {"solver": "sa"}
    assert solve_hist[0]["count"] == 1


# -- health / SLO rules ------------------------------------------------
def _snapshot_with(timeouts=0, submitted=10, queue_waits=(0.01, 0.02)):
    registry = MetricsRegistry()
    jobs = registry.counter("service_jobs_total", "", ("status",))
    jobs.labels(status="submitted").inc(submitted)
    if timeouts:
        jobs.labels(status="timeout").inc(timeouts)
    events = registry.counter("service_cache_events_total", "", ("event",))
    events.labels(event="hit").inc(4)
    events.labels(event="miss").inc(6)
    wait = registry.histogram("service_queue_wait_seconds")
    for value in queue_waits:
        wait.observe(value)
    return registry.snapshot()


def test_default_rules_pass_on_healthy_snapshot():
    report = evaluate_rules(DEFAULT_SLO_RULES, _snapshot_with())
    assert report.ok
    assert report.status == "ok"
    assert "health: OK" in report.render()


def test_timeout_rate_rule_fails_and_report_serializes():
    report = evaluate_rules(DEFAULT_SLO_RULES,
                            _snapshot_with(timeouts=5))
    assert report.status == "fail"
    assert [r.rule for r in report.failures()] == ["timeout_rate"]
    payload = report.to_dict()
    assert payload["status"] == "fail"
    assert any(entry["status"] == "fail" for entry in payload["rules"])


def test_missing_metric_degrades_to_warn_not_crash():
    rule = SLORule(name="ghost", expr="p95(nonexistent_seconds) < 1")
    result = evaluate_rule(rule, _snapshot_with())
    assert result.status == "warn"
    assert "not collected" in result.reason
    # Unmatched labels on an existing counter read as zero instead.
    rule = SLORule(name="zero",
                   expr="value(service_jobs_total, status='failed') <= 0")
    assert evaluate_rule(rule, _snapshot_with()).status == "ok"


def test_warn_band_and_expression_safety():
    rule = SLORule(name="wait",
                   expr="p95(service_queue_wait_seconds) < 10",
                   warn="p95(service_queue_wait_seconds) < 0.001")
    result = evaluate_rule(rule, _snapshot_with())
    assert result.status == "warn"  # passes fail bar, misses warn bar
    with pytest.raises(health_mod.SLOExpressionError):
        evaluate_rule(SLORule(name="evil",
                              expr="__import__('os').getpid() > 0"),
                      _snapshot_with())


def test_bucket_quantile_fallback_without_reservoir():
    registry = MetricsRegistry()
    wait = registry.histogram("service_queue_wait_seconds")
    for value in (0.2,) * 99 + (40.0,):
        wait.observe(value)
    snapshot = registry.snapshot(include_reservoir=False)
    rule = SLORule(name="wait",
                   expr="p95(service_queue_wait_seconds) < 5.0")
    assert evaluate_rule(rule, snapshot).status == "ok"


# -- sampler -----------------------------------------------------------
def test_sampler_appends_jsonl_snapshots(tmp_path):
    registry = metrics_mod.enable_metrics()
    registry.counter("ticks").inc()
    path = tmp_path / "samples.jsonl"
    sampler = MetricsSampler(str(path), interval=0.01)
    sampler.start()
    import time as _time

    _time.sleep(0.06)
    written = sampler.stop()
    assert written >= 2  # periodic samples plus the final one
    lines = path.read_text().strip().splitlines()
    assert len(lines) == written
    for line in lines:
        sample = json.loads(line)
        assert sample["metrics"]["schema"] == "repro-metrics/v1"
        assert sample["metrics"]["counters"]["ticks"]["series"][0][
            "value"] == 1


def test_sampler_requires_a_registry():
    sampler = MetricsSampler("/tmp/unused.jsonl")
    with pytest.raises(RuntimeError):
        sampler.start()


# -- metrics-report CLI ------------------------------------------------
def test_metrics_report_renders_dashboard_and_diff(tmp_path, capsys):
    registry = MetricsRegistry()
    registry.counter("jobs_total", "", ("status",)).labels(
        status="done").inc(5)
    hist = registry.histogram("wait_seconds")
    for value in (0.01, 0.02, 0.03):
        hist.observe(value)
    baseline = tmp_path / "base.json"
    baseline.write_text(registry.to_json())
    registry.counter("jobs_total", "", ("status",)).labels(
        status="done").inc(3)
    current = tmp_path / "now.json"
    current.write_text(registry.to_json())

    assert report_main([str(current), "--no-health"]) == 0
    text = capsys.readouterr().out
    assert "wait_seconds" in text and "p95" in text

    assert report_main([str(current), str(baseline),
                        "--no-health"]) == 0
    text = capsys.readouterr().out
    assert "+3" in text  # counter delta against the baseline


def test_metrics_report_health_exit_codes(tmp_path, capsys):
    snapshot = _snapshot_with(timeouts=5)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(snapshot))
    assert report_main([str(path)]) == 0  # default: report only
    capsys.readouterr()
    assert report_main([str(path), "--fail-on", "fail"]) == 1
    capsys.readouterr()
    assert report_main([str(tmp_path / "missing.json")]) == 2


# -- service instrumentation -------------------------------------------
@pytest.mark.parametrize("mode", ["process", "thread"])
def test_service_metrics_cover_jobs_and_merge_worker_registries(mode):
    from repro.compile import SolverConfig
    from repro.db import JoinOrderQUBO, random_join_graph
    from repro.service import SolveService

    registry = metrics_mod.enable_metrics()
    specs = []
    for index in range(3):
        graph = random_join_graph(4, "chain", seed=index)
        config = SolverConfig(num_sweeps=40, num_reads=2,
                              seed=50 + index, convergence=False)
        specs.append((JoinOrderQUBO(graph).compile(), "sa", config))
    with SolveService(max_workers=2, mode=mode) as service:
        service.solve_many(specs)
    snap = registry.snapshot()

    jobs = {entry["labels"]["status"]: entry["value"]
            for entry in snap["counters"]["service_jobs_total"]["series"]}
    assert jobs["submitted"] == 3
    assert jobs["done"] == 3
    wait = snap["histograms"]["service_queue_wait_seconds"]["series"][0]
    assert wait["count"] == 3
    execute = snap["histograms"]["service_execute_seconds"]["series"][0]
    assert execute["labels"] == {"solver": "sa"}
    assert execute["count"] == 3
    # Solver-level metrics are recorded inside the worker; in process
    # mode they only reach the parent via the snapshot merge. Warm
    # workers accumulate across all their jobs and merge exactly once
    # each, at pool drain — so the cumulative totals are intact while
    # the merge count is bounded by the pool size, not the job count.
    sweeps = snap["counters"]["solver_sweeps_total"]["series"][0]
    assert sweeps["value"] == 3 * 40 * 2  # jobs * sweeps * reads
    if mode == "process":
        merges = snap["counters"]["service_metrics_merges_total"]
        assert 1 <= merges["series"][0]["value"] <= 2  # <= pool size
        respawns = snap["counters"]["service_worker_respawns_total"]
        assert respawns["series"][0]["value"] == 0


def test_cache_events_counter_tracks_hits_and_misses():
    from repro.compile import SolverConfig
    from repro.db import JoinOrderQUBO, random_join_graph
    from repro.service import SolveService

    registry = metrics_mod.enable_metrics()
    problem = JoinOrderQUBO(random_join_graph(4, "chain", seed=0)).compile()
    config = SolverConfig(num_sweeps=30, num_reads=2, seed=9,
                          convergence=False)
    with SolveService(max_workers=1, mode="thread") as service:
        service.submit(problem, "sa", config).result(timeout=60)
        service.submit(problem, "sa", config).result(timeout=60)
    events = {entry["labels"]["event"]: entry["value"]
              for entry in registry.snapshot()["counters"]
              ["service_cache_events_total"]["series"]}
    assert events["miss"] == 1
    assert events["hit"] == 1


def test_load_snapshot_handles_jsonl_lines(tmp_path):
    registry = metrics_mod.enable_metrics()
    registry.counter("ticks").inc()
    path = tmp_path / "samples.jsonl"
    with MetricsSampler(str(path), interval=5.0):
        registry.counter("ticks").inc()
    last = load_snapshot(str(path))
    assert last["counters"]["ticks"]["series"][0]["value"] == 2
    first = load_snapshot(str(path), line=1)
    assert first["schema"] == "repro-metrics/v1"
