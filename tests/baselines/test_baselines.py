"""Tests for the from-scratch classical ML baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    KNNClassifier,
    LinearRegression,
    LogisticRegression,
    MLP,
    RidgeRegression,
    SVM,
    linear_kernel,
    median_heuristic_gamma,
    polynomial_kernel,
    rbf_kernel,
)
from repro.datasets import (
    make_circles,
    make_linearly_separable,
    make_moons,
    train_test_split,
)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def test_linear_kernel_is_inner_product():
    x = np.array([[1.0, 2.0]])
    y = np.array([[3.0, 4.0]])
    assert linear_kernel(x, y)[0, 0] == pytest.approx(11.0)


def test_rbf_kernel_diagonal_one():
    x = np.random.default_rng(0).normal(size=(5, 3))
    assert np.allclose(np.diag(rbf_kernel(x, x)), 1.0)


def test_rbf_kernel_decays_with_distance():
    x = np.array([[0.0], [1.0], [10.0]])
    gram = rbf_kernel(x, x, gamma=1.0)
    assert gram[0, 1] > gram[0, 2]


def test_polynomial_kernel_degree_two():
    x = np.array([[1.0]])
    value = polynomial_kernel(x, x, degree=2, coef0=1.0, gamma=1.0)
    assert value[0, 0] == pytest.approx(4.0)


def test_median_heuristic_positive():
    x = np.random.default_rng(1).normal(size=(10, 2))
    assert median_heuristic_gamma(x) > 0


# ----------------------------------------------------------------------
# SVM
# ----------------------------------------------------------------------
def test_svm_linear_separable():
    X, y = make_linearly_separable(60, margin=0.25, seed=0)
    clf = SVM(kernel="linear", C=10.0, seed=0).fit(X, y)
    assert clf.score(X, y) >= 0.95


def test_svm_rbf_on_circles():
    X, y = make_circles(80, noise=0.05, seed=1)
    clf = SVM(kernel="rbf", gamma=2.0, C=5.0, seed=0).fit(X, y)
    assert clf.score(X, y) >= 0.9


def test_svm_precomputed_matches_callable():
    X, y = make_moons(40, seed=2)
    gram = rbf_kernel(X, X, gamma=1.5)
    direct = SVM(kernel="rbf", gamma=1.5, C=2.0, seed=0).fit(X, y)
    precomputed = SVM(kernel="precomputed", C=2.0, seed=0).fit(gram, y)
    test_gram = rbf_kernel(X, X, gamma=1.5)
    assert (precomputed.predict(test_gram) == direct.predict(X)).mean() > 0.9


def test_svm_callable_kernel():
    X, y = make_linearly_separable(40, seed=3)
    clf = SVM(kernel=lambda a, b: a @ b.T, C=5.0, seed=0).fit(X, y)
    assert clf.score(X, y) >= 0.9


def test_svm_decision_function_sign_matches_predictions():
    X, y = make_moons(30, seed=4)
    clf = SVM(kernel="rbf", gamma=1.0, seed=0).fit(X, y)
    margins = clf.decision_function(X)
    assert ((margins >= 0) == (clf.predict(X) == clf.classes_[1])).all()


def test_svm_preserves_original_labels():
    X, y = make_linearly_separable(30, seed=5)
    labels = np.where(y == 1, 7, -3)
    clf = SVM(kernel="linear", seed=0).fit(X, labels)
    assert set(clf.predict(X)) <= {7, -3}


def test_svm_rejects_multiclass():
    X = np.random.default_rng(0).normal(size=(9, 2))
    with pytest.raises(ValueError):
        SVM().fit(X, np.array([0, 1, 2] * 3))


def test_svm_rejects_bad_c():
    with pytest.raises(ValueError):
        SVM(C=0.0)


def test_svm_precomputed_requires_square():
    with pytest.raises(ValueError):
        SVM(kernel="precomputed").fit(np.ones((3, 4)), [0, 1, 0])


def test_svm_unfitted_raises():
    with pytest.raises(RuntimeError):
        SVM().predict(np.ones((1, 2)))


def test_svm_support_vectors_subset():
    X, y = make_linearly_separable(40, seed=6)
    clf = SVM(kernel="linear", C=1.0, seed=0).fit(X, y)
    assert 0 < clf.support_.size <= 40


# ----------------------------------------------------------------------
# Logistic regression
# ----------------------------------------------------------------------
def test_logistic_separable():
    X, y = make_linearly_separable(60, margin=0.3, seed=7)
    clf = LogisticRegression(max_iter=300).fit(X, y)
    assert clf.score(X, y) >= 0.95


def test_logistic_proba_bounds():
    X, y = make_moons(30, seed=8)
    clf = LogisticRegression(max_iter=100).fit(X, y)
    probabilities = clf.predict_proba(X)
    assert ((probabilities > 0) & (probabilities < 1)).all()


def test_logistic_l2_shrinks_weights():
    X, y = make_linearly_separable(60, seed=9)
    plain = LogisticRegression(max_iter=200, l2=0.0).fit(X, y)
    ridge = LogisticRegression(max_iter=200, l2=1.0).fit(X, y)
    assert np.linalg.norm(ridge.coef_) < np.linalg.norm(plain.coef_)


def test_logistic_rejects_multiclass():
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones((3, 1)), [0, 1, 2])


def test_logistic_unfitted_raises():
    with pytest.raises(RuntimeError):
        LogisticRegression().predict(np.ones((1, 2)))


# ----------------------------------------------------------------------
# Linear / ridge regression
# ----------------------------------------------------------------------
def test_linear_regression_recovers_coefficients():
    rng = np.random.default_rng(10)
    X = rng.normal(size=(50, 2))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, [3.0, -2.0], atol=1e-8)
    assert model.intercept_ == pytest.approx(1.0)
    assert model.score(X, y) == pytest.approx(1.0)


def test_linear_regression_no_intercept():
    X = np.array([[1.0], [2.0]])
    model = LinearRegression(fit_intercept=False).fit(X, [2.0, 4.0])
    assert model.intercept_ == 0.0
    assert model.coef_[0] == pytest.approx(2.0)


def test_ridge_shrinks_relative_to_ols():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(20, 3))
    y = X @ np.array([5.0, -5.0, 2.0]) + rng.normal(scale=0.1, size=20)
    ols = LinearRegression().fit(X, y)
    ridge = RidgeRegression(alpha=50.0).fit(X, y)
    assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)


def test_ridge_rejects_negative_alpha():
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1.0)


def test_regression_length_mismatch():
    with pytest.raises(ValueError):
        LinearRegression().fit(np.ones((3, 1)), [1.0, 2.0])


# ----------------------------------------------------------------------
# MLP
# ----------------------------------------------------------------------
def test_mlp_classifier_on_moons():
    X, y = make_moons(120, noise=0.1, seed=12)
    clf = MLP(hidden=(16,), max_iter=300, learning_rate=0.02, seed=0)
    clf.fit(X, y)
    assert clf.score(X, y) >= 0.85


def test_mlp_regressor_on_sine():
    rng = np.random.default_rng(13)
    X = rng.uniform(-1, 1, size=(80, 1))
    y = np.sin(2 * X[:, 0])
    model = MLP(hidden=(16,), task="regression", max_iter=400,
                learning_rate=0.02, seed=0)
    model.fit(X, y)
    assert model.score(X, y) >= 0.8


def test_mlp_predict_proba_classification_only():
    model = MLP(task="regression", max_iter=1, seed=0)
    model.fit(np.ones((4, 1)), np.ones(4))
    with pytest.raises(RuntimeError):
        model.predict_proba(np.ones((1, 1)))


def test_mlp_validates_args():
    with pytest.raises(ValueError):
        MLP(task="clustering")
    with pytest.raises(ValueError):
        MLP(hidden=(0,))
    with pytest.raises(ValueError):
        MLP(activation="sigmoidish")


def test_mlp_unfitted_raises():
    with pytest.raises(RuntimeError):
        MLP().predict(np.ones((1, 2)))


def test_mlp_deterministic_with_seed():
    X, y = make_moons(40, seed=14)
    a = MLP(max_iter=50, seed=3).fit(X, y).predict(X)
    b = MLP(max_iter=50, seed=3).fit(X, y).predict(X)
    assert (a == b).all()


# ----------------------------------------------------------------------
# k-NN
# ----------------------------------------------------------------------
def test_knn_memorizes_with_k1():
    X, y = make_moons(30, seed=15)
    clf = KNNClassifier(k=1).fit(X, y)
    assert clf.score(X, y) == 1.0


def test_knn_generalizes():
    X, y = make_moons(100, noise=0.1, seed=16)
    Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, seed=0)
    clf = KNNClassifier(k=5).fit(Xtr, ytr)
    assert clf.score(Xte, yte) >= 0.8


def test_knn_validates_k():
    with pytest.raises(ValueError):
        KNNClassifier(k=0)
    with pytest.raises(ValueError):
        KNNClassifier(k=10).fit(np.ones((3, 1)), [0, 1, 0])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_rbf_gram_psd(seed):
    x = np.random.default_rng(seed).normal(size=(6, 2))
    gram = rbf_kernel(x, x, gamma=0.7)
    assert np.linalg.eigvalsh(gram).min() > -1e-9
