"""Tests for repro.telemetry: spans, counters, provenance, CLI wiring."""

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.quantum import Circuit, StatevectorSimulator
from repro.quantum.statevector import apply_matrix


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry (and tracing) disabled."""
    telemetry.disable()
    telemetry.disable_tracing()
    yield
    telemetry.disable()
    telemetry.disable_tracing()


def _representative_circuit(num_qubits=5, layers=4) -> Circuit:
    qc = Circuit(num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            qc.ry(0.3 * (layer + 1), q)
        for q in range(num_qubits - 1):
            qc.cx(q, q + 1)
    return qc


# -- enable/disable ----------------------------------------------------
def test_disabled_by_default_and_noop():
    assert telemetry.get_collector() is None
    assert not telemetry.is_enabled()
    # Module helpers must be safe no-ops while disabled.
    telemetry.count("x")
    telemetry.gauge("x", 1.0)
    telemetry.record("x", 1.0)
    with telemetry.span("x"):
        pass
    # The shared no-op span is reused, never a fresh allocation per call.
    assert telemetry.span("a") is telemetry.span("b")


def test_enable_disable_cycle():
    collector = telemetry.enable()
    assert telemetry.is_enabled()
    assert telemetry.get_collector() is collector
    telemetry.count("c", 2)
    assert collector.snapshot()["counters"]["c"] == 2
    telemetry.disable()
    assert telemetry.get_collector() is None
    telemetry.count("c", 5)  # dropped
    assert collector.snapshot()["counters"]["c"] == 2


def test_enable_from_env(monkeypatch):
    monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
    assert telemetry.enable_from_env() is None
    assert not telemetry.is_enabled()
    monkeypatch.setenv(telemetry.ENV_VAR, "1")
    collector = telemetry.enable_from_env()
    assert collector is not None
    assert telemetry.get_collector() is collector


# -- counters / gauges / series ---------------------------------------
def test_counter_totals():
    collector = telemetry.enable()
    collector.count("hits")
    collector.count("hits", 4)
    collector.count("other", 2.5)
    counters = collector.snapshot()["counters"]
    assert counters["hits"] == 5
    assert counters["other"] == 2.5


def test_counters_are_thread_safe():
    collector = telemetry.enable()

    def work():
        for _ in range(1000):
            collector.count("parallel")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert collector.snapshot()["counters"]["parallel"] == 8000


def test_gauge_last_write_wins():
    collector = telemetry.enable()
    collector.gauge("bytes", 10)
    collector.gauge("bytes", 99)
    assert collector.snapshot()["gauges"]["bytes"] == 99


def test_series_bounded():
    collector = telemetry.enable()
    for value in range(telemetry.collector.MAX_SERIES_POINTS + 7):
        collector.record("trajectory", value)
    entry = collector.snapshot()["series"]["trajectory"]
    assert len(entry["values"]) == telemetry.collector.MAX_SERIES_POINTS
    assert entry["truncated"] == 7


# -- spans -------------------------------------------------------------
def test_span_nesting_builds_paths():
    collector = telemetry.enable()
    with collector.span("outer"):
        assert collector.current_span_path() == "outer"
        with collector.span("inner"):
            assert collector.current_span_path() == "outer/inner"
        with collector.span("inner"):
            pass
    spans = collector.snapshot()["spans"]
    assert spans["outer"]["count"] == 1
    assert spans["outer/inner"]["count"] == 2
    assert spans["outer"]["total_seconds"] >= 0.0
    assert (spans["outer/inner"]["min_seconds"]
            <= spans["outer/inner"]["max_seconds"])


def test_span_records_duration():
    collector = telemetry.enable()
    with collector.span("sleepy"):
        time.sleep(0.01)
    stats = collector.snapshot()["spans"]["sleepy"]
    assert stats["total_seconds"] >= 0.009


def test_span_survives_exception():
    collector = telemetry.enable()
    with pytest.raises(RuntimeError):
        with collector.span("boom"):
            raise RuntimeError("x")
    assert collector.snapshot()["spans"]["boom"]["count"] == 1
    assert collector.current_span_path() is None


# -- export ------------------------------------------------------------
def test_json_roundtrip():
    collector = telemetry.enable()
    collector.count("a", 3)
    collector.gauge("g", 1.5)
    collector.record("s", 2.0)
    with collector.span("t"):
        pass
    restored = json.loads(collector.to_json())
    assert restored == collector.snapshot()
    # JSONL: every line is standalone JSON with a type tag.
    lines = [json.loads(line) for line in collector.to_jsonl().splitlines()]
    assert {entry["type"] for entry in lines} == {
        "counter", "gauge", "span", "series"
    }


def test_counters_snapshot_delta():
    collector = telemetry.enable()
    collector.count("x", 10)
    before = collector.counters_snapshot()
    collector.count("x", 5)
    collector.count("y", 1)
    delta = collector.snapshot(counters_since=before)["counters"]
    assert delta == {"x": 5, "y": 1}


def test_reset_clears_metrics():
    collector = telemetry.enable()
    collector.count("x")
    collector.reset()
    snap = collector.snapshot()
    assert snap["counters"] == {} and snap["spans"] == {}


def test_render_report_mentions_metrics():
    collector = telemetry.enable()
    collector.count("quantum.gate_applications", 12)
    with collector.span("quantum.run"):
        pass
    text = telemetry.render_report(collector)
    assert "quantum.gate_applications" in text
    assert "quantum.run" in text


def test_render_report_degenerate_inputs():
    # None and {} must render a valid placeholder report, not crash.
    for metrics in (None, {}):
        text = telemetry.render_report(metrics)
        assert text.startswith("telemetry report")
        assert "(no metrics collected)" in text
    # A live-but-empty collector behaves the same.
    collector = telemetry.enable()
    assert "(no metrics collected)" in telemetry.render_report(collector)


def test_render_report_skips_none_provenance_values():
    text = telemetry.render_report({}, provenance={
        "experiment_id": "E8",
        "seed": None,
        "duration_seconds": 0.25,
    })
    assert "experiment_id" in text and "E8" in text
    assert "duration_seconds" in text
    assert "seed" not in text
    # All-None provenance adds no section at all.
    text = telemetry.render_report({}, provenance={"seed": None})
    assert "provenance" not in text


def test_render_report_shows_series_truncation_column():
    # The series table must surface how many convergence rows each
    # series dropped, not silently render the kept points as if they
    # were everything.
    text = telemetry.render_report({
        "series": {"annealing.sa.best_energy": {
            "values": [5.0, 4.0, 3.0],
            "truncated": 17,
        }},
    })
    assert "dropped" in text
    line = next(row for row in text.splitlines()
                if "annealing.sa.best_energy" in row)
    assert line.rstrip().endswith("17")
    # Series without truncation report zero in the same column.
    text = telemetry.render_report({
        "series": {"s": {"values": [1.0], "truncated": 0}},
    })
    line = next(row for row in text.splitlines() if row.startswith("  s"))
    assert line.rstrip().endswith("0")


def test_render_report_includes_tracer_drop_line():
    from repro.telemetry.trace import Tracer

    collector = telemetry.enable()
    collector.count("c", 1)
    tracer = telemetry.enable_tracing(Tracer(max_events=2))
    for index in range(5):
        tracer.instant(f"event.{index}")
    text = telemetry.render_report(collector)
    assert "trace: 2 events buffered, 3 dropped" in text
    # Explicitly passing tracer=None suppresses the line even while a
    # global tracer is active.
    assert "trace:" not in telemetry.render_report(collector,
                                                   tracer=None)
    telemetry.disable_tracing()
    assert "trace:" not in telemetry.render_report(collector)


def test_render_report_no_dangling_series_header():
    # Series that exist but hold no points must not leave a bare
    # "series (...)" header at the bottom of the report.
    text = telemetry.render_report({
        "series": {"annealing.sa.best_energy": {"values": [],
                                                "truncated": 0}},
    })
    assert "series" not in text
    assert "(no metrics collected)" in text


# -- instrumentation of the hot layers ---------------------------------
def test_statevector_counts_gates_when_enabled():
    collector = telemetry.enable()
    sim = StatevectorSimulator(seed=0)
    qc = _representative_circuit(num_qubits=3, layers=2)
    sim.run(qc)
    sim.sample_counts(qc, shots=64)
    counters = collector.snapshot()["counters"]
    assert counters["quantum.gate_applications"] == 2 * len(qc.instructions)
    assert counters["quantum.circuit_evaluations"] == 2
    assert counters["quantum.shots"] == 64
    assert counters["quantum.gate.cx"] > 0
    assert collector.snapshot()["gauges"]["quantum.statevector_bytes"] == (
        2 ** 3 * 16
    )


def test_statevector_identical_results_enabled_vs_disabled():
    qc = _representative_circuit(num_qubits=4, layers=3)
    sim = StatevectorSimulator(seed=0)
    disabled_state = sim.run(qc)
    telemetry.enable()
    enabled_state = sim.run(qc)
    np.testing.assert_allclose(disabled_state, enabled_state)


def test_annealer_counts_sweeps_and_trajectory():
    from repro.annealing import IsingModel, SimulatedAnnealingSolver

    collector = telemetry.enable()
    model = IsingModel(2, h={0: 0.5, 1: -0.5}, j={(0, 1): 1.0})
    solver = SimulatedAnnealingSolver(num_sweeps=30, num_reads=4, seed=0)
    solver.solve(model)
    snap = collector.snapshot()
    assert snap["counters"]["annealing.sweeps"] == 120
    assert snap["counters"]["annealing.sa.reads"] == 4
    moves = (snap["counters"]["annealing.sa.accepted_moves"]
             + snap["counters"]["annealing.sa.rejected_moves"])
    assert moves == 120 * model.num_spins
    assert len(snap["series"]["annealing.sa.best_energy"]["values"]) == 4
    # Trajectory is monotonically non-increasing (running best).
    values = snap["series"]["annealing.sa.best_energy"]["values"]
    assert all(b <= a for a, b in zip(values, values[1:]))


def test_gradient_counter():
    from repro.quantum.operators import PauliSum, single_z
    from repro.qml.gradients import parameter_shift_gradient
    from repro.quantum.circuit import Parameter

    collector = telemetry.enable()
    theta = Parameter("theta")
    qc = Circuit(1).ry(theta, 0)
    observable = PauliSum([single_z(0, 1)])
    parameter_shift_gradient(qc, observable, [0.3])
    counters = collector.snapshot()["counters"]
    assert counters["qml.gradient_evaluations"] == 1
    # Each shift-rule term costs two circuit evaluations.
    assert counters["quantum.circuit_evaluations"] == 2


# -- provenance --------------------------------------------------------
def test_provenance_fields():
    record = telemetry.collect_provenance(
        "E8", {"sizes": (4, 6), "seed": 3}, duration_seconds=1.25
    ).to_dict()
    assert record["experiment_id"] == "E8"
    assert record["kwargs"] == {"sizes": [4, 6], "seed": 3}
    assert record["seed"] == 3
    assert record["version"]
    assert record["duration_seconds"] == 1.25
    assert record["python"]
    json.dumps(record)  # fully serializable


def test_provenance_sanitizes_exotic_kwargs():
    record = telemetry.collect_provenance(
        "EX", {"array": np.arange(3), "scalar": np.float64(1.5)}
    ).to_dict()
    json.dumps(record)
    assert record["kwargs"]["scalar"] == 1.5


def test_run_experiment_attaches_provenance_and_metrics():
    from repro.experiments import run_experiment

    collector = telemetry.enable()
    result = run_experiment("E14", cluster_sizes=(3,), num_reads=3,
                            num_sweeps=20, seed=0)
    assert result.provenance is not None
    assert result.provenance["experiment_id"] == "E14"
    assert result.provenance["seed"] == 0
    assert result.provenance["version"]
    assert result.provenance["duration_seconds"] > 0
    assert result.metrics["counters"]["annealing.sweeps"] > 0
    assert "experiment.E14" in result.metrics["spans"]
    # Annealer spans nest under the experiment span.
    assert any(path.startswith("experiment.E14/")
               for path in result.metrics["spans"])
    assert collector.snapshot()["counters"]["annealing.sweeps"] > 0


def test_run_experiment_without_telemetry_has_no_records():
    from repro.experiments import run_experiment

    result = run_experiment("E14", cluster_sizes=(3,), num_reads=2,
                            num_sweeps=10, seed=0)
    assert result.provenance is None
    assert result.metrics is None


# -- CLI ---------------------------------------------------------------
def test_cli_json_out(tmp_path, capsys):
    from repro.experiments.__main__ import main as cli_main

    out_file = tmp_path / "metrics.json"
    code = cli_main([
        "E14", "--telemetry", "--json-out", str(out_file),
        "--set", "cluster_sizes=(3,)", "--set", "num_reads=2",
        "--set", "num_sweeps=10", "--set", "seed=0",
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "telemetry report" in printed
    document = json.loads(out_file.read_text())
    assert document["schema"] == "repro-telemetry/v1"
    (record,) = document["experiments"]
    assert record["provenance"]["experiment_id"] == "E14"
    assert record["provenance"]["seed"] == 0
    assert record["metrics"]["counters"]["annealing.sweeps"] > 0
    assert not telemetry.is_enabled()  # CLI cleans up after itself


def test_cli_rejects_bad_set(capsys):
    from repro.experiments.__main__ import main as cli_main

    assert cli_main(["E14", "--set", "nokey"]) == 2


# -- overhead guard ----------------------------------------------------
def test_disabled_overhead_is_small():
    """With telemetry disabled the instrumented simulator must stay
    close to a raw uninstrumented apply loop.

    Locally the gap is well under 5% (the disabled path costs one
    ``get_collector()`` call per run); the assertion bound is loose
    (50%) because shared CI machines jitter far more than the
    instrumentation costs.
    """
    qc = _representative_circuit(num_qubits=6, layers=6)
    sim = StatevectorSimulator(seed=0)
    n = qc.num_qubits

    def raw_run():
        # Mirrors StatevectorSimulator.run's disabled branch exactly,
        # minus the telemetry guard itself.
        state = np.zeros(2 ** n, dtype=complex)
        state[0] = 1.0
        for inst in qc.instructions:
            state = apply_matrix(state, inst.matrix(), inst.qubits, n)
        return state

    def timed(function, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            function()
            best = min(best, time.perf_counter() - start)
        return best

    raw_run()          # warm caches
    sim.run(qc)
    assert telemetry.get_collector() is None
    baseline = timed(raw_run)
    instrumented = timed(lambda: sim.run(qc))
    assert instrumented <= baseline * 1.5 + 1e-3
