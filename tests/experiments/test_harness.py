"""Tests for the experiment harness (registry, formatting, CLI)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    format_table,
    geometric_mean,
    run_experiment,
)
from repro.experiments.__main__ import main as cli_main


ALL_IDS = [f"E{i}" for i in range(1, 21)] + ["A1", "A2", "A3"]


def test_all_design_experiments_registered():
    registered = available_experiments()
    for experiment_id in ALL_IDS:
        assert experiment_id in registered, (
            f"{experiment_id} from DESIGN.md is not registered"
        )


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        run_experiment("E99")


def test_run_unknown_experiment_message_lists_available():
    with pytest.raises(KeyError) as excinfo:
        run_experiment("nope")
    message = str(excinfo.value)
    assert "unknown experiment 'nope'" in message
    assert "available" in message


def test_register_duplicate_id_raises():
    from repro.experiments.harness import _REGISTRY, _TITLES, register

    def runner():
        raise AssertionError("runner must never execute")

    register("ZZ_DUP", "duplicate-registration probe")(runner)
    try:
        with pytest.raises(ValueError, match="registered twice"):
            register("ZZ_DUP", "duplicate-registration probe")(runner)
    finally:
        _REGISTRY.pop("ZZ_DUP", None)
        _TITLES.pop("ZZ_DUP", None)


def test_result_column_extraction():
    result = ExperimentResult(
        "EX", "demo", ["a", "b"],
        [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}],
    )
    assert result.column("a") == [1, 3]
    with pytest.raises(KeyError):
        result.column("c")


def test_format_table_contains_data():
    result = ExperimentResult(
        "EX", "demo", ["name", "value"],
        [{"name": "row1", "value": 1.23456}],
        notes="a note",
    )
    text = format_table(result)
    assert "EX: demo" in text
    assert "row1" in text
    assert "1.235" in text
    assert "a note" in text


def test_format_table_empty_rows():
    result = ExperimentResult("EX", "demo", ["a"], [])
    assert "EX" in format_table(result)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])


def test_cli_lists_experiments(capsys):
    assert cli_main([]) == 0
    out = capsys.readouterr().out
    for experiment_id in ALL_IDS:
        assert experiment_id in out


def test_cli_rejects_unknown(capsys):
    assert cli_main(["E99"]) == 2


def test_small_experiment_end_to_end():
    """E1 at tiny scale runs through the registry and has the right
    schema."""
    result = run_experiment("E1", qubit_range=(2, 3), depth=2, repeats=1)
    assert result.experiment_id == "E1"
    assert result.column("qubits") == [2, 3]
    assert all(s > 0 for s in result.column("seconds_per_run"))


def test_e4_smoke():
    result = run_experiment("E4", qubit_range=(2, 3), depth=1,
                            num_samples=5, seed=0)
    assert len(result.rows) == 2
    assert all(v >= 0 for v in result.column("gradient_variance"))


def test_e12_smoke():
    result = run_experiment("E12", depths=(1,), num_spins=4, instances=1,
                            seed=0)
    assert 0.0 <= result.rows[0]["approximation_ratio"] <= 1.0


def test_e14_smoke():
    result = run_experiment("E14", cluster_sizes=(3,), num_reads=5,
                            num_sweeps=50, seed=0)
    assert 0.0 <= result.rows[0]["sa_hit_rate"] <= 1.0


def test_e9_smoke():
    result = run_experiment("E9", query_counts=(3,), instances_per_cell=1,
                            seed=0)
    assert result.rows[0]["annealed_vs_exact"] >= 1.0 - 1e-9


def test_e11_smoke():
    result = run_experiment("E11", transaction_counts=(5,),
                            conflict_levels=(8,), seed=0)
    assert result.rows[0]["annealed_valid"]


def test_weak_strong_instance_structure():
    from repro.annealing import solve_ising_exact
    from repro.experiments.optimization import (
        weak_strong_cluster_instance,
    )

    model = weak_strong_cluster_instance(3)
    assert model.num_spins == 6
    spins, energy = solve_ising_exact(model)
    # Global optimum: weak cluster flipped to -1 against the bridge,
    # strong cluster pinned to +1 by its field.
    assert spins.tolist() == [-1, -1, -1, 1, 1, 1]
    # The fully aligned state is a distinct local optimum exactly
    # `gap` above the ground state.
    aligned_energy = model.energy([1] * 6)
    assert aligned_energy == pytest.approx(energy + 1.0)


def test_to_csv_roundtrips_columns():
    import csv
    import io

    from repro.experiments import to_csv

    result = ExperimentResult(
        "EX", "demo", ["name", "value"],
        [{"name": "a,b", "value": 1.5}, {"name": "c", "value": 2.0}],
    )
    text = to_csv(result)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows[0]["name"] == "a,b"
    assert float(rows[1]["value"]) == 2.0


def test_e16_smoke():
    result = run_experiment("E16", eval_qubit_range=(2, 3), mc_trials=10,
                            seed=0)
    assert len(result.rows) == 2
    assert all(r["qae_error"] >= 0 for r in result.rows)


def test_e17_smoke():
    result = run_experiment("E17", shot_budgets=(16, None), n_samples=24,
                            seed=0)
    assert result.rows[-1]["gram_rms_error"] == 0.0


def test_e18_smoke():
    result = run_experiment("E18", feature_counts=(8,),
                            instances_per_cell=1, n_samples=400,
                            num_selected=3, seed=0)
    assert 0 <= result.rows[0]["annealed_fraction_of_optimum"] <= 1.1


def test_e19_smoke():
    result = run_experiment("E19", fragment_counts=(6,),
                            instances_per_cell=1, seed=0)
    assert result.rows[0]["annealed_cut"] >= 0


def test_e20_smoke():
    result = run_experiment("E20", error_rates=(0.01,), seed=0)
    assert result.rows[0]["mitigated_error"] >= 0


def test_a1_smoke():
    result = run_experiment("A1", scales=(1.0,), num_relations=4,
                            instances=1, seed=0)
    assert result.rows[0]["valid_read_fraction"] == 1.0


def test_a3_smoke():
    result = run_experiment("A3", slice_counts=(5,), cluster_size=4,
                            num_reads=5, num_sweeps=60, seed=0)
    assert 0.0 <= result.rows[0]["hit_rate"] <= 1.0
