"""Unit tests for the content-addressed result cache and its keys."""

from repro.compile import SolverConfig
from repro.db import JoinOrderQUBO, random_join_graph
from repro.service.cache import ResultCache, cache_key


def problem(seed=0):
    return JoinOrderQUBO(random_join_graph(4, "chain", seed=seed)).compile()


SEEDED = SolverConfig(num_sweeps=50, num_reads=4, seed=7,
                      convergence=False)


def test_cache_key_is_stable_across_recompilation():
    assert (cache_key(problem(), "sa", SEEDED)
            == cache_key(problem(), "sa", SEEDED))


def test_cache_key_varies_with_each_input():
    base = cache_key(problem(), "sa", SEEDED)
    assert cache_key(problem(seed=1), "sa", SEEDED) != base
    assert cache_key(problem(), "tabu", SEEDED) != base
    other_config = SolverConfig(num_sweeps=51, num_reads=4, seed=7,
                                convergence=False)
    assert cache_key(problem(), "sa", other_config) != base
    assert cache_key(problem(), "sa", SEEDED, repair=True) != base


def test_seedless_config_is_uncacheable():
    assert cache_key(problem(), "sa", SolverConfig(num_sweeps=50)) is None


def test_lru_eviction_order():
    cache = ResultCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes a's LRU position
    cache.put("c", 3)  # evicts b, the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_hit_miss_skip_accounting():
    cache = ResultCache(max_entries=4)
    assert cache.get("missing") is None
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.get(None) is None
    snapshot = cache.snapshot()
    assert snapshot["hits"] == 1
    assert snapshot["misses"] == 1
    assert snapshot["skips"] == 1
    assert snapshot["entries"] == 1
    assert snapshot["hit_rate"] == 0.5


def test_peek_and_note_do_not_double_count():
    cache = ResultCache(max_entries=2)
    cache.put("k", "v")
    assert cache.peek("k") == "v"
    assert cache.peek("other") is None
    assert cache.snapshot()["hits"] == 0
    assert cache.snapshot()["misses"] == 0
    cache.note_hit("k")
    cache.note_miss("other")
    cache.note_miss(None)
    snapshot = cache.snapshot()
    assert (snapshot["hits"], snapshot["misses"], snapshot["skips"]) \
        == (1, 1, 1)


def test_clear_and_len():
    cache = ResultCache(max_entries=4)
    cache.put("a", 1)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None
