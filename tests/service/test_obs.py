"""Cross-layer observability through the solve service.

Covers the tentpole guarantees: trace ids survive the warm-pool pipe
protocol into workers and back through drain-merge; failure capsules
are on disk *before* ``handle.result()`` returns; and enabling the
whole stack never changes solve results.
"""

import json
import os
import signal
import time

import pytest

from repro.compile import SolverConfig
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.service import JobTimeoutError, ServiceError, SolveService
from repro.telemetry import context as context_mod
from repro.telemetry import flight as flight_mod
from repro.telemetry import obs_report as obs_mod
from repro.telemetry import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_layers():
    yield
    context_mod.disable_context()
    flight_mod.disable_flight()
    trace_mod.disable_tracing()


def problem(seed=0, relations=4):
    graph = random_join_graph(relations, "chain", seed=seed)
    return JoinOrderQUBO(graph).compile()


def config(seed=7, sweeps=60, reads=2):
    return SolverConfig(num_sweeps=sweeps, num_reads=reads, seed=seed,
                        convergence=False)


#: Runs for minutes if never reaped — deadline/SIGKILL fodder.
SLOW = SolverConfig(num_sweeps=2_000_000, num_reads=50, seed=1,
                    convergence=False)


def test_trace_ids_propagate_into_workers_and_drain_merge():
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    specs = [(problem(seed=index), "sa", config(seed=50 + index))
             for index in range(3)]
    with SolveService(max_workers=2) as service:
        results = service.solve_many(specs)
    trace_ids = [result.provenance["service"]["trace_id"]
                 for result in results]
    assert len(set(trace_ids)) == 3
    assert all(len(trace_id) == 16 for trace_id in trace_ids)

    # Worker-side spans arrive via drain-merge tagged with the parent's
    # trace ids (satellite 2: merge attribution).
    events = tracer.events()
    worker_span_traces = {
        event["args"]["trace_id"] for event in events
        if event.get("ph") == "B"
        and (event.get("args") or {}).get("stage") == "worker"}
    assert worker_span_traces == set(trace_ids)

    # The drain log (stats()["drains"], populated at shutdown) maps
    # each worker pid to the jobs/traces it ran.
    drains = service.stats()["drains"]
    assert drains, "drain log must be populated after shutdown"
    drained = {job["trace_id"]
               for entry in drains for job in entry["jobs"]}
    assert set(trace_ids) <= drained
    for entry in drains:
        assert entry["pid"] > 0
        for job in entry["jobs"]:
            assert job["solver"] == "sa"
            assert job["ok"] is True
            assert job["duration"] >= 0

    # And the merge itself is announced on the timeline.
    merges = [event for event in events
              if event["name"] == "service.pool.drain_merge"]
    assert merges


def test_solve_results_bit_for_bit_with_full_stack_enabled():
    specs = [(problem(seed=index), "sa", config(seed=80 + index))
             for index in range(3)]
    baseline = [dispatch_solve(p, s, config=c) for p, s, c in specs]
    context_mod.enable_context()
    flight_mod.enable_flight()
    trace_mod.enable_tracing(sample_memory=False)
    with SolveService(max_workers=2) as service:
        results = service.solve_many(specs)
    for direct, result in zip(baseline, results):
        assert direct.solution == result.solution
        assert direct.energy == result.energy
        assert list(direct.energies) == list(result.energies)
        # The obs keys are additive: provenance gains trace_id only.
        assert "trace_id" not in direct.provenance.get("service", {})
        assert result.provenance["service"]["trace_id"]


def test_flight_capsule_on_deadline_reap(tmp_path):
    context_mod.enable_context()
    recorder = flight_mod.enable_flight(dump_dir=str(tmp_path))
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(relations=7), "sa", SLOW,
                                deadline=0.3)
        with pytest.raises(JobTimeoutError):
            handle.result(timeout=60)
        # The capsule must already exist when result() raises — the
        # dump happens before the job event is set.
        capsules = [capsule for capsule in recorder.capsules
                    if capsule.get("job_id") == handle.job_id]
        assert len(capsules) == 1
    capsule = capsules[0]
    assert capsule["reason"] == "job_timeout"
    assert capsule["trace_id"] == handle.trace_id
    assert capsule["detail"]["deadline"] == 0.3
    assert flight_mod.validate_flight_document(capsule) == []
    names = [event["name"] for event in capsule["events"]]
    assert "dispatching" in names and "timeout" in names
    with open(capsule["path"], encoding="utf-8") as handle_:
        on_disk = json.load(handle_)
    assert flight_mod.validate_flight_document(on_disk) == []


def test_flight_capsule_on_midjob_worker_kill(tmp_path):
    context_mod.enable_context()
    recorder = flight_mod.enable_flight(dump_dir=str(tmp_path))
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(relations=7), "sa", SLOW)
        deadline = time.time() + 30
        while handle._job.process is None:
            assert time.time() < deadline, "job never started"
            time.sleep(0.01)
        time.sleep(0.1)  # let the worker process actually spawn
        os.kill(handle._job.process.pid, signal.SIGKILL)
        with pytest.raises(ServiceError):
            handle.result(timeout=60)
        capsules = [capsule for capsule in recorder.capsules
                    if capsule.get("job_id") == handle.job_id]
        assert len(capsules) == 1
        assert capsules[0]["reason"] == "job_failed"
        assert capsules[0]["trace_id"] == handle.trace_id
        assert flight_mod.validate_flight_document(capsules[0]) == []
        # The reaped worker is replaced: the service still serves.
        follow_up = service.solve(problem(), "sa", config())
        assert follow_up.feasible


def test_cache_hit_and_disabled_layer_provenance():
    with SolveService(max_workers=1) as service:
        first = service.solve(problem(), "sa", config())
        # Layer off: no trace_id key at all (bit-for-bit provenance).
        assert "trace_id" not in first.provenance["service"]
    context_mod.enable_context()
    with SolveService(max_workers=1) as service:
        first = service.solve(problem(), "sa", config())
        again = service.solve(problem(), "sa", config())
    assert again.provenance["service"]["cache"] == "hit"
    # The cache hit is a new job with its own trace identity.
    assert again.provenance["service"]["trace_id"] \
        != first.provenance["service"]["trace_id"]


def test_obs_report_reconstructs_service_run(tmp_path, capsys):
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    flight_mod.enable_flight(dump_dir=str(tmp_path / "flight"))
    specs = [(problem(seed=index), "sa", config(seed=30 + index))
             for index in range(2)]
    with SolveService(max_workers=2) as service:
        results = service.solve_many(specs)
    # The reaped job runs in its own service: killing a warm worker
    # loses whatever spans it had not yet drained, so sharing a pool
    # with the successful jobs would race their worker spans away.
    with SolveService(max_workers=2) as service:
        timeout_handle = service.submit(problem(relations=7), "sa",
                                        SLOW, deadline=0.3)
        with pytest.raises(JobTimeoutError):
            timeout_handle.result(timeout=60)
    trace_path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(trace_path))

    # A successful job's timeline: queue wait, dispatch, worker spans.
    trace_id = results[0].provenance["service"]["trace_id"]
    assert obs_mod.main([str(trace_path), trace_id]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}" in out
    assert "queue wait:" in out
    assert "dispatch:" in out
    assert "worker spans:" in out

    # The reaped job's timeline joins with its flight capsule.
    assert obs_mod.main([str(trace_path), "--pick", "failed",
                         "--flight", str(tmp_path / "flight"),
                         "--validate"]) == 0
    out = capsys.readouterr().out
    assert f"trace {timeout_handle.trace_id}" in out
    assert "flight capsule: job_timeout" in out
