"""Integration tests for SolveService: correctness, deadlines, cache,
coalescing, cancellation, validation."""

import time

import pytest

from repro.compile import SolverConfig, make_solver
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.service import (
    JobCancelledError,
    JobStatus,
    JobTimeoutError,
    ServiceError,
    SolveService,
)


def problem(seed=0, relations=4):
    graph = random_join_graph(relations, "chain", seed=seed)
    return JoinOrderQUBO(graph).compile()


def config(seed=7, sweeps=60, reads=4):
    return SolverConfig(num_sweeps=sweeps, num_reads=reads, seed=seed,
                        convergence=False)


#: A config whose job runs for minutes — used to hold a worker busy
#: for deadline/cancellation tests (it is always reaped, never run to
#: completion).
SLOW = SolverConfig(num_sweeps=2_000_000, num_reads=50, seed=1,
                    convergence=False)


def results_equal(first, second):
    return (first.solution == second.solution
            and first.energy == second.energy
            and list(first.energies) == list(second.energies))


@pytest.mark.parametrize("mode", ["process", "thread"])
def test_solve_many_matches_sequential_bit_for_bit(mode):
    specs = [(problem(seed=index), "sa", config(seed=100 + index))
             for index in range(4)]
    sequential = [dispatch_solve(p, s, config=c) for p, s, c in specs]
    with SolveService(max_workers=2, mode=mode) as service:
        concurrent = service.solve_many(specs)
    assert all(results_equal(direct, result)
               for direct, result in zip(sequential, concurrent))


def test_submit_returns_handle_and_result():
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(), "sa", config())
        result = handle.result(timeout=60)
        assert handle.done()
        assert handle.status is JobStatus.DONE
        assert handle.exception() is None
        assert result.feasible
        provenance = result.provenance["service"]
        assert provenance["mode"] == "process"
        assert provenance["cache"] == "miss"
        assert provenance["worker_pid"] > 0


def test_deadline_blowing_worker_is_reaped():
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(relations=7), "sa", SLOW,
                                deadline=0.4)
        with pytest.raises(JobTimeoutError):
            handle.result(timeout=60)
        assert handle.status is JobStatus.TIMEOUT
        # The worker slot is free again: a normal job still runs.
        follow_up = service.solve(problem(), "sa", config())
        assert follow_up.feasible


def test_cancel_queued_job():
    with SolveService(max_workers=1, mode="thread") as service:
        decoy = service.submit(problem(relations=6), "sa",
                               config(seed=2, sweeps=2000, reads=20))
        queued = service.submit(problem(), "sa", config(seed=3))
        assert queued.cancel()
        assert queued.status is JobStatus.CANCELLED
        with pytest.raises(JobCancelledError):
            queued.result(timeout=60)
        assert decoy.result(timeout=60).feasible
        # Cancelling a finished job reports False.
        assert not queued.cancel()
        assert not decoy.cancel()


def test_cancel_running_process_job_reaps_worker():
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(relations=7), "sa", SLOW)
        deadline = time.time() + 30
        while handle.status is JobStatus.PENDING:
            assert time.time() < deadline, "job never started"
            time.sleep(0.01)
        time.sleep(0.1)  # let the worker process actually spawn
        assert handle.cancel()
        assert handle.status is JobStatus.CANCELLED
        follow_up = service.solve(problem(), "sa", config())
        assert follow_up.feasible


def test_cache_hit_serves_without_reexecution():
    spec = [(problem(), "sa", config())] * 1
    with SolveService(max_workers=2) as service:
        first = service.solve_many(spec)
        second = service.solve_many(spec)
        assert results_equal(first[0], second[0])
        assert second[0].provenance["service"]["cache"] == "hit"
        stats = service.stats()
        # One executed job total; the repeat never touched the queue.
        assert stats["jobs"]["done"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["jobs"]["cache_hits_served"] == 1


def test_seedless_jobs_bypass_the_cache():
    seedless = SolverConfig(num_sweeps=40, num_reads=2,
                            convergence=False)
    with SolveService(max_workers=1, mode="thread") as service:
        result = service.solve(problem(), "sa", seedless)
        assert result.provenance["service"]["cache"] == "off"
        service.solve(problem(), "sa", seedless)
        stats = service.stats()
        assert stats["jobs"]["done"] == 2
        assert stats["cache"]["skips"] == 2


def test_identical_inflight_jobs_coalesce():
    with SolveService(max_workers=1, mode="thread") as service:
        decoy = service.submit(problem(seed=9, relations=6), "sa",
                               config(seed=9, sweeps=2000, reads=20))
        original = service.submit(problem(), "sa", config())
        duplicate = service.submit(problem(), "sa", config())
        assert results_equal(original.result(timeout=60),
                             duplicate.result(timeout=60))
        assert decoy.result(timeout=60) is not None
        stats = service.stats()
        assert stats["jobs"]["coalesced"] == 1
        assert stats["jobs"]["done"] == 2  # decoy + one shared job


def test_submit_validation_errors():
    with SolveService(max_workers=1) as service:
        with pytest.raises(TypeError):
            service.submit("not a problem", "sa")
        with pytest.raises(ValueError, match="in-process only"):
            service.submit(problem(), make_solver("sa"))
        with pytest.raises(ValueError, match="unknown solver"):
            service.submit(problem(), "nope")
        with pytest.raises(ValueError, match="unpicklable options"):
            service.submit(problem(), "sa",
                           SolverConfig(options={"hook": lambda: 0}))
        with pytest.raises(ValueError, match="deadline"):
            service.submit(problem(), "sa", config(), deadline=-1.0)


def test_thread_mode_allows_unpicklable_options():
    # The pickling guard is a cross-process requirement only; inline
    # workers can carry arbitrary options — here a generator-backed
    # beta schedule, which pickle rejects but the SA backend accepts.
    schedule = (0.1 * (index + 1) for index in range(40))
    with SolveService(max_workers=1, mode="thread") as service:
        handle = service.submit(
            problem(), "sa",
            SolverConfig(num_sweeps=40, num_reads=2, seed=3,
                         convergence=False,
                         options={"beta_schedule": schedule}))
        assert handle.result(timeout=60).feasible


def test_worker_failure_surfaces_as_service_error():
    with SolveService(max_workers=1) as service:
        # An unknown backend option crashes inside the worker; the
        # handle carries the child traceback.
        handle = service.submit(
            problem(), "sa",
            SolverConfig(num_sweeps=40, num_reads=2, seed=3,
                         convergence=False,
                         options={"definitely_not_a_knob": 1}))
        with pytest.raises(ServiceError):
            handle.result(timeout=60)
        assert handle.status is JobStatus.FAILED


def test_shutdown_rejects_new_work():
    service = SolveService(max_workers=1, mode="thread")
    service.shutdown()
    with pytest.raises(ServiceError):
        service.submit(problem(), "sa", config())


def test_solve_many_accepts_dict_and_bare_problem_specs():
    with SolveService(max_workers=1, mode="thread") as service:
        results = service.solve_many(
            [problem(),
             {"problem": problem(seed=1), "solver": "sa",
              "config": config(seed=11)}],
            solver="sa", config=config(seed=10))
        assert len(results) == 2
        assert all(result.feasible for result in results)
        with pytest.raises(ValueError, match="unknown job-spec keys"):
            service.solve_many([{"problem": problem(), "bogus": 1}])
        with pytest.raises(TypeError):
            service.solve_many([42])


def test_stats_shape():
    with SolveService(max_workers=1, mode="thread") as service:
        service.solve(problem(), "sa", config())
        stats = service.stats()
    assert stats["mode"] == "thread"
    assert stats["max_workers"] == 1
    assert stats["queue"]["capacity"] == 128
    assert stats["jobs"]["done"] == 1
    assert stats["jobs"]["submitted"] == 1
    assert stats["cache"]["entries"] == 1
