"""Warm-pool lifecycle: crash respawn, deadline reap, shm hygiene,
cross-job batching, and bit-for-bit parity across worker counts."""

import os
import time

import pytest

from repro.compile import SolverConfig
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.service import (
    JobStatus,
    JobTimeoutError,
    ServiceError,
    SolveService,
)


def problem(seed=0, relations=4):
    graph = random_join_graph(relations, "chain", seed=seed)
    return JoinOrderQUBO(graph).compile()


def config(seed=7, sweeps=60, reads=4):
    return SolverConfig(num_sweeps=sweeps, num_reads=reads, seed=seed,
                        convergence=False)


SLOW = SolverConfig(num_sweeps=2_000_000, num_reads=50, seed=1,
                    convergence=False)


def results_equal(first, second):
    return (first.solution == second.solution
            and first.energy == second.energy
            and list(first.energies) == list(second.energies)
            and [s.assignment for s in first.samples.samples]
            == [s.assignment for s in second.samples.samples])


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_parity_with_sequential_across_worker_counts(workers):
    specs = [(problem(seed=index), "sa", config(seed=40 + index))
             for index in range(6)]
    sequential = [dispatch_solve(p, s, config=c) for p, s, c in specs]
    if workers == 0:
        # workers=0 means no service at all: the sequential baseline
        # compared against itself pins the comparison helper.
        assert all(results_equal(r, r) for r in sequential)
        return
    with SolveService(max_workers=workers) as service:
        concurrent = service.solve_many(specs)
    assert all(results_equal(direct, result)
               for direct, result in zip(sequential, concurrent))


def test_same_model_jobs_fold_into_batches_with_parity():
    shared = problem(seed=5)
    configs = [config(seed=200 + index) for index in range(10)]
    sequential = [dispatch_solve(shared, "sa", config=c)
                  for c in configs]
    with SolveService(max_workers=1, batch_limit=4) as service:
        handles = [service.submit(shared, "sa", c) for c in configs]
        results = [handle.result(timeout=120) for handle in handles]
        stats = service.stats()
    assert all(results_equal(direct, result)
               for direct, result in zip(sequential, results))
    # 10 same-model jobs on 1 worker with batch_limit=4 cannot have
    # taken 10 round trips; most rode along as folded members.
    batched = [r.provenance["service"]["batched"] for r in results]
    assert max(batched) > 1
    assert stats["pool"]["jobs_run"] == 10
    assert stats["pool"]["dispatches_warm"] >= 1


def test_batching_disabled_with_batch_limit_one():
    shared = problem(seed=5)
    with SolveService(max_workers=1, batch_limit=1) as service:
        handles = [service.submit(shared, "sa", config(seed=300 + i))
                   for i in range(4)]
        results = [handle.result(timeout=120) for handle in handles]
    assert all(r.provenance["service"]["batched"] == 1
               for r in results)


def test_worker_crash_mid_job_respawns_and_fails_job():
    with SolveService(max_workers=1) as service:
        handle = service.submit(problem(relations=6), "sa", SLOW)
        deadline = time.time() + 30
        while handle.status is JobStatus.PENDING:
            assert time.time() < deadline, "job never started"
            time.sleep(0.01)
        # Kill the warm worker out from under the job — a crash, not a
        # cancel (the job is not terminal), so the service must fail
        # the job and replace the worker.
        deadline = time.time() + 30
        while True:
            pid = service.stats()["pool"]["pids"][0]
            if pid is not None:
                break
            assert time.time() < deadline
            time.sleep(0.01)
        time.sleep(0.2)  # let the dispatch actually reach the worker
        os.kill(pid, 9)
        with pytest.raises(ServiceError, match="died|pipe"):
            handle.result(timeout=60)
        assert handle.status is JobStatus.FAILED
        # The pool healed: a fresh worker serves the next job.
        follow_up = service.solve(problem(), "sa", config())
        assert follow_up.feasible
        stats = service.stats()
        assert stats["pool"]["respawns"] == 1
        assert stats["pool"]["pids"][0] != pid


def test_deadline_reap_respawns_warm_worker():
    with SolveService(max_workers=1) as service:
        first_pid = service.stats()["pool"]["pids"][0]
        handle = service.submit(problem(relations=7), "sa", SLOW,
                                deadline=0.4)
        with pytest.raises(JobTimeoutError):
            handle.result(timeout=60)
        follow_up = service.solve(problem(), "sa", config())
        assert follow_up.feasible
        stats = service.stats()
        assert stats["pool"]["respawns"] == 1
        assert stats["pool"]["pids"][0] != first_pid


def test_shutdown_unlinks_all_shared_memory_segments():
    before = set(os.listdir("/dev/shm")) if os.path.isdir(
        "/dev/shm") else set()
    service = SolveService(max_workers=2)
    for index in range(3):
        service.solve(problem(seed=index), "sa", config(seed=index))
    names = service._store.segment_names()
    assert names, "expected live segments while the service runs"
    service.shutdown(wait=True)
    assert service._store.segment_names() == []
    if os.path.isdir("/dev/shm"):
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"leaked shm segments: {leaked}"


def test_warm_dispatch_counted_after_model_reuse():
    shared = problem(seed=9)
    with SolveService(max_workers=1, batch_limit=1) as service:
        for index in range(3):
            service.solve(shared, "sa", config(seed=400 + index))
        stats = service.stats()
    assert stats["pool"]["dispatches_cold"] == 1
    assert stats["pool"]["dispatches_warm"] == 2
    assert stats["shm"]["segments_created"] == 1
