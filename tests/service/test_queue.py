"""Unit tests for the bounded priority JobQueue and Job lifecycle."""

import threading
import time

import pytest

from repro.service.queue import Job, JobQueue, JobStatus, QueueFullError


def make_job(job_id=1, priority=0):
    return Job(job_id=job_id, problem=None, solver="sa", config=None,
               priority=priority)


def test_priority_order_then_fifo_within_class():
    queue = JobQueue(capacity=8)
    first_low = make_job(1, priority=0)
    high = make_job(2, priority=5)
    second_low = make_job(3, priority=0)
    for job in (first_low, high, second_low):
        queue.put(job)
    assert queue.get().job_id == 2
    assert queue.get().job_id == 1
    assert queue.get().job_id == 3


def test_capacity_raises_queue_full():
    queue = JobQueue(capacity=2)
    queue.put(make_job(1))
    queue.put(make_job(2))
    with pytest.raises(QueueFullError):
        queue.put(make_job(3))


def test_blocking_put_waits_for_capacity():
    queue = JobQueue(capacity=1)
    queue.put(make_job(1))

    def drain():
        time.sleep(0.05)
        queue.get()

    thread = threading.Thread(target=drain)
    thread.start()
    queue.put(make_job(2), block=True, timeout=5.0)
    thread.join()
    assert queue.get().job_id == 2


def test_blocking_put_times_out():
    queue = JobQueue(capacity=1)
    queue.put(make_job(1))
    with pytest.raises(QueueFullError):
        queue.put(make_job(2), block=True, timeout=0.05)


def test_cancelled_job_is_discarded_and_frees_capacity():
    queue = JobQueue(capacity=2)
    victim = make_job(1)
    survivor = make_job(2)
    queue.put(victim)
    queue.put(survivor)
    assert victim.resolve(JobStatus.CANCELLED)
    queue.release(victim)
    # Slot freed immediately, before the heap entry is discarded.
    queue.put(make_job(3))
    assert queue.get().job_id == 2
    assert queue.get().job_id == 3


def test_get_marks_dequeued_and_sets_started_at():
    queue = JobQueue(capacity=2)
    job = make_job(1)
    assert not job.dequeued
    queue.put(job)
    taken = queue.get()
    assert taken is job
    assert job.dequeued
    assert job.started_at is not None


def test_get_times_out_and_close_wakes_getters():
    queue = JobQueue(capacity=2)
    assert queue.get(timeout=0.05) is None
    queue.put(make_job(1))
    queue.close()
    # Closed queues still drain what they hold, then report None.
    assert queue.get().job_id == 1
    assert queue.get() is None
    with pytest.raises(RuntimeError):
        queue.put(make_job(2))


def test_resolve_is_exactly_once_and_fires_callbacks():
    job = make_job(1)
    seen = []
    job.add_callback(lambda j: seen.append(j.status))
    assert job.resolve(JobStatus.DONE, result="r")
    assert not job.resolve(JobStatus.CANCELLED)
    assert job.status is JobStatus.DONE
    assert job.result == "r"
    assert seen == [JobStatus.DONE]
    # Late callbacks run immediately on terminal jobs.
    job.add_callback(lambda j: seen.append("late"))
    assert seen == [JobStatus.DONE, "late"]


def test_snapshot_reports_live_and_capacity():
    queue = JobQueue(capacity=3)
    queue.put(make_job(1))
    snapshot = queue.snapshot()
    assert snapshot == {"live": 1, "capacity": 3, "closed": False}
