"""Sharded result cache: drop-in semantics plus merged statistics."""

import threading

import pytest

from repro.service import SolveService
from repro.service.cache import ResultCache, ShardedResultCache


def keys(count):
    """Distinct hex keys shaped like real sha256 cache keys."""
    import hashlib
    return [hashlib.sha256(str(i).encode()).hexdigest()
            for i in range(count)]


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardedResultCache(0)
    with pytest.raises(ValueError):
        ShardedResultCache(16, shards=0)


def test_shard_count_never_exceeds_capacity():
    cache = ShardedResultCache(3, shards=8)
    assert cache.shards == 3


def test_get_put_roundtrip_and_len():
    cache = ShardedResultCache(64, shards=4)
    for index, key in enumerate(keys(20)):
        cache.put(key, index)
    assert len(cache) == 20
    for index, key in enumerate(keys(20)):
        assert cache.get(key) == index
        assert cache.peek(key) == index


def test_same_key_always_lands_on_same_shard():
    # 128 entries per shard: no shard can overflow on 50 keys, so any
    # missing entry would mean a key migrated between shards.
    cache = ShardedResultCache(1024, shards=8)
    for key in keys(50):
        cache.put(key, "v")
        cache.put(key, "v2")  # overwrite, not duplicate
    assert len(cache) == 50


def test_none_key_counts_a_skip_and_caches_nothing():
    cache = ShardedResultCache(16, shards=4)
    assert cache.get(None) is None
    cache.put(None, "x")
    cache.note_miss(None)
    assert len(cache) == 0
    assert cache.skips == 2


def test_merged_stats_view():
    cache = ShardedResultCache(64, shards=4)
    for key in keys(10):
        cache.put(key, "v")
    for key in keys(10):
        assert cache.get(key) == "v"
    for key in keys(20)[10:]:
        assert cache.get(key) is None
    view = cache.stats()
    assert view["hits"] == 10
    assert view["misses"] == 10
    assert view["entries"] == 10
    assert view["shards"] == 4
    assert sum(view["shard_entries"]) == view["entries"]
    assert view["hit_rate"] == pytest.approx(0.5)
    # Same keys as the single-lock snapshot, so service stats and
    # dashboards are implementation-agnostic.
    single_keys = set(ResultCache(4).snapshot())
    assert single_keys <= set(view)


def test_note_hit_note_miss_merge():
    cache = ShardedResultCache(16, shards=4)
    key_a, key_b = keys(2)
    cache.put(key_a, 1)
    cache.note_hit(key_a)
    cache.note_miss(key_b)
    assert cache.hits == 1
    assert cache.misses == 1


def test_eviction_is_shard_local_but_counted_globally():
    cache = ShardedResultCache(8, shards=4)  # 2 entries per shard
    for key in keys(40):
        cache.put(key, "v")
    assert len(cache) <= 8
    assert cache.evictions == 40 - len(cache)
    assert cache.stats()["evictions"] == cache.evictions


def test_clear_empties_every_shard():
    cache = ShardedResultCache(32, shards=4)
    for key in keys(12):
        cache.put(key, "v")
    cache.clear()
    assert len(cache) == 0


def test_concurrent_hit_path_is_consistent():
    cache = ShardedResultCache(256, shards=8)
    hot = keys(32)
    for index, key in enumerate(hot):
        cache.put(key, index)
    errors = []

    def hammer():
        try:
            for _ in range(200):
                for index, key in enumerate(hot):
                    if cache.get(key) != index:
                        raise AssertionError("lost entry under load")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.hits == 4 * 200 * 32


def test_service_accepts_cache_shards_knob():
    service = SolveService(max_workers=1, mode="thread", cache_shards=4,
                          cache_entries=32)
    try:
        assert isinstance(service._cache, ShardedResultCache)
        stats = service.stats()
        assert stats["cache"]["shards"] == 4
    finally:
        service.shutdown()


def test_service_default_keeps_single_lock_cache():
    service = SolveService(max_workers=1, mode="thread")
    try:
        assert isinstance(service._cache, ResultCache)
    finally:
        service.shutdown()


def test_service_rejects_bad_shards():
    with pytest.raises(ValueError):
        SolveService(max_workers=1, mode="thread", cache_shards=0)
