"""Tests for portfolio racing: winner selection, cancellation,
provenance, determinism under seeds."""

import pytest

from repro.compile import SolverConfig
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.service import PortfolioError, SolveService
from repro.service.portfolio import race


def problem(seed=0, relations=4):
    graph = random_join_graph(relations, "chain", seed=seed)
    return JoinOrderQUBO(graph).compile()


CONFIG = SolverConfig(num_sweeps=80, num_reads=4, seed=5,
                      convergence=False)


def test_first_feasible_entrant_wins_and_losers_cancel():
    # One worker serializes the race in submission order, so the first
    # feasible entrant (sa) deterministically wins and the queued
    # losers are withdrawn without running.
    with SolveService(max_workers=1, cache_entries=0) as service:
        winner = race(service, problem(), solvers=("sa", "tabu", "pt"),
                      config=CONFIG)
    assert winner.feasible
    record = winner.provenance["portfolio"]
    assert record["entrants"] == ["sa", "tabu", "pt"]
    assert record["winner"] == "sa"
    assert record["winner_feasible"] is True
    assert record["cancelled"] == 2
    statuses = set(record["statuses"].values())
    assert statuses == {"done", "cancelled"}


def test_portfolio_winner_is_deterministic_under_seed():
    def run_once():
        with SolveService(max_workers=1, cache_entries=0) as service:
            return race(service, problem(), solvers=("sa", "tabu"),
                        config=CONFIG)

    first, second = run_once(), run_once()
    assert first.provenance["portfolio"]["winner"] \
        == second.provenance["portfolio"]["winner"]
    assert first.solution == second.solution
    assert first.energy == second.energy
    # ...and the winner's result equals a plain sequential solve.
    direct = dispatch_solve(problem(), "sa", config=CONFIG)
    assert first.solution == direct.solution
    assert first.energy == direct.energy


def test_all_entrants_timing_out_raises_portfolio_error():
    slow = SolverConfig(num_sweeps=2_000_000, num_reads=50, seed=1,
                        convergence=False)
    with SolveService(max_workers=2, cache_entries=0) as service:
        with pytest.raises(PortfolioError, match="no portfolio entrant"):
            race(service, problem(relations=7), solvers=("sa", "tabu"),
                 config=slow, budget=0.4)


def test_solve_portfolio_method_delegates():
    with SolveService(max_workers=1) as service:
        winner = service.solve_portfolio(problem(),
                                         solvers=("sa", "tabu"),
                                         config=CONFIG)
    assert winner.feasible
    assert winner.provenance["portfolio"]["entrants"] == ["sa", "tabu"]


def test_entrant_validation():
    with SolveService(max_workers=1, mode="thread") as service:
        with pytest.raises(ValueError, match="at least one"):
            race(service, problem(), solvers=())
        with pytest.raises(ValueError, match="entrants"):
            race(service, problem(), solvers=[1.5])


def test_per_entrant_configs():
    entrants = [("sa", SolverConfig(num_sweeps=60, num_reads=2, seed=3,
                                    convergence=False)),
                ("tabu", SolverConfig(num_sweeps=60, num_reads=2,
                                      seed=4, convergence=False))]
    with SolveService(max_workers=1, cache_entries=0) as service:
        winner = race(service, problem(), solvers=entrants)
    assert winner.feasible
    assert winner.provenance["portfolio"]["winner"] == "sa"
