"""Cross-cutting property-based tests (hypothesis).

Fuzzes the repair decoders of every QUBO compiler with arbitrary bit
vectors (annealers can hand back anything), and pins down algebraic
invariants of the schedules, penalties and sample sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import QUBO, Sample, SampleSet
from repro.annealing.schedules import (
    default_beta_schedule,
    geometric_schedule,
    linear_schedule,
)
from repro.db import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    JoinOrderQUBO,
    MQOProblem,
    MQOQUBO,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    random_join_graph,
)

# ----------------------------------------------------------------------
# Decoder fuzzing: any bit vector must decode to a *feasible* solution
# ----------------------------------------------------------------------
bits_strategy = st.integers(min_value=0, max_value=2 ** 25 - 1)


def _bits(value: int, width: int) -> np.ndarray:
    return np.array([(value >> k) & 1 for k in range(width)], dtype=int)


@settings(max_examples=40, deadline=None)
@given(raw=bits_strategy, seed=st.integers(min_value=0, max_value=200))
def test_join_order_decoder_always_returns_permutation(raw, seed):
    graph = random_join_graph(5, "chain", seed=seed)
    formulation = JoinOrderQUBO(graph)
    formulation.build()
    decoded = formulation.decode(_bits(raw, 25))
    assert sorted(decoded.order) == list(range(5))
    assert decoded.cost > 0


@settings(max_examples=40, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 12 - 1),
       seed=st.integers(min_value=0, max_value=200))
def test_mqo_decoder_always_selects_one_plan_per_query(raw, seed):
    problem = MQOProblem.random(4, 3, seed=seed)
    compiler = MQOQUBO(problem)
    compiler.build()
    selection = compiler.decode(_bits(raw, 12))
    assert len(selection) == 4
    for q, k in enumerate(selection):
        assert 0 <= k < 3
    # The decoded selection has a finite, evaluable cost.
    assert np.isfinite(problem.total_cost(selection))


@settings(max_examples=40, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 16 - 1),
       seed=st.integers(min_value=0, max_value=200))
def test_index_decoder_always_feasible(raw, seed):
    problem = IndexSelectionProblem.random(8, seed=seed)
    compiler = IndexSelectionQUBO(problem)
    compiler.build()
    width = compiler.num_variables
    selection = compiler.decode(_bits(raw % (2 ** width), width))
    assert problem.is_feasible(selection)
    assert len(set(selection)) == len(selection)


@settings(max_examples=40, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 20 - 1),
       seed=st.integers(min_value=0, max_value=200))
def test_scheduling_decoder_always_assigns_every_transaction(raw, seed):
    problem = TransactionSchedulingProblem.random(5, num_objects=6,
                                                  seed=seed)
    compiler = TransactionSchedulingQUBO(problem, num_slots=4)
    compiler.build()
    schedule = compiler.decode(_bits(raw, 20))
    assert len(schedule) == 5
    assert all(0 <= slot < 4 for slot in schedule)


# ----------------------------------------------------------------------
# Penalty algebra
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 5 - 1))
def test_exactly_one_penalty_zero_iff_one_hot(raw):
    qubo = QUBO(5).add_penalty_exactly_one(list(range(5)), weight=3.0)
    bits = _bits(raw, 5)
    energy = qubo.energy(bits)
    if bits.sum() == 1:
        assert energy == pytest.approx(0.0)
    else:
        assert energy >= 3.0 - 1e-9


@settings(max_examples=40, deadline=None)
@given(raw=st.integers(min_value=0, max_value=2 ** 4 - 1))
def test_at_most_one_penalty_counts_pairs(raw):
    qubo = QUBO(4).add_penalty_at_most_one(list(range(4)), weight=2.0)
    bits = _bits(raw, 4)
    ones = int(bits.sum())
    expected = 2.0 * ones * (ones - 1) / 2
    assert qubo.energy(bits) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(steps=st.integers(min_value=2, max_value=200))
def test_linear_schedule_endpoints_and_monotonicity(steps):
    values = linear_schedule(1.0, 5.0, steps)
    assert len(values) == steps
    assert values[0] == pytest.approx(1.0)
    assert values[-1] == pytest.approx(5.0)
    assert all(b >= a for a, b in zip(values, values[1:]))


@settings(max_examples=25, deadline=None)
@given(steps=st.integers(min_value=2, max_value=200))
def test_geometric_schedule_constant_ratio(steps):
    values = geometric_schedule(0.1, 10.0, steps)
    ratios = [b / a for a, b in zip(values, values[1:])]
    assert max(ratios) - min(ratios) < 1e-9


def test_geometric_schedule_rejects_sign_flip():
    with pytest.raises(ValueError):
        geometric_schedule(-1.0, 1.0, 5)
    with pytest.raises(ValueError):
        geometric_schedule(0.0, 1.0, 5)


def test_default_beta_schedule_increasing():
    betas = default_beta_schedule(50)
    assert all(b > a for a, b in zip(betas, betas[1:]))


# ----------------------------------------------------------------------
# SampleSet invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(energies=st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=1, max_size=10,
))
def test_sampleset_best_is_minimum(energies):
    samples = [
        Sample((i,), energy) for i, energy in enumerate(energies)
    ]
    sample_set = SampleSet(samples)
    assert sample_set.best_energy == pytest.approx(min(energies))
    assert sample_set.success_probability(min(energies)) > 0
