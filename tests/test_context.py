"""Trace-context, flight-recorder, profiler and obs-report tests.

Mirrors the cheap-when-off discipline of ``tests/test_metrics.py``:
every layer must be a no-op until explicitly enabled, and enabling it
must never perturb solve results.
"""

import json
import threading
import time

import pytest

from repro.compile import SolverConfig, solve
from repro.db.joinorder import JoinOrderQUBO
from repro.db.workloads import random_join_graph
from repro.telemetry import context as context_mod
from repro.telemetry import flight as flight_mod
from repro.telemetry import health as health_mod
from repro.telemetry import obs_report as obs_mod
from repro.telemetry import profiler as profiler_mod
from repro.telemetry import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_layers():
    """Every test starts and ends with all obs layers off."""
    yield
    context_mod.disable_context()
    flight_mod.disable_flight()
    profiler_mod.disable_profiling()
    trace_mod.disable_tracing()


def compiled_problem(seed=0):
    graph = random_join_graph(4, "chain", seed=seed)
    return JoinOrderQUBO(graph).compile()


# -- global guard (cheap-when-off semantics) ---------------------------
def test_enable_disable_cycle_and_env_opt_in(monkeypatch):
    assert context_mod.get_context_state() is None
    assert not context_mod.is_context_enabled()
    state = context_mod.enable_context()
    assert context_mod.get_context_state() is state
    assert context_mod.enable_context() is state  # idempotent
    context_mod.disable_context()
    assert context_mod.get_context_state() is None
    monkeypatch.setenv(context_mod.ENV_VAR, "1")
    assert context_mod.enable_from_env() is not None
    context_mod.disable_context()
    monkeypatch.setenv(context_mod.ENV_VAR, "0")
    assert context_mod.enable_from_env() is None
    assert context_mod.get_context_state() is None


def test_disabled_layer_is_inert_shared_noop():
    assert context_mod.current_context() is None
    scope = context_mod.activate("abc123")
    assert scope is context_mod._NOOP_SCOPE
    with scope:
        assert context_mod.current_context() is None
    # trace_id=None is a no-op even with the layer on.
    context_mod.enable_context()
    assert context_mod.activate(None) is context_mod._NOOP_SCOPE


def test_mint_inherits_trace_and_job_ids():
    state = context_mod.enable_context()
    root = state.mint(stage="pipeline")
    assert len(root.trace_id) == 16
    assert root.parent_id is None
    with state.activate(root):
        child = state.mint(job_id=41, stage="dispatch")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.job_id == 41
        with state.activate(child):
            grandchild = state.mint(stage="worker")
            assert grandchild.trace_id == root.trace_id
            assert grandchild.job_id == 41  # inherited
            with state.activate(grandchild):
                assert context_mod.current_context() is grandchild
            assert context_mod.current_context() is child
    assert context_mod.current_context() is None
    assert state.minted == 3


def test_context_stack_is_thread_local():
    state = context_mod.enable_context()
    seen = {}

    def worker():
        seen["inner"] = context_mod.current_context()

    with state.activate(state.mint()):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["inner"] is None


def test_tracer_events_carry_context_annotation():
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    with context_mod.activate(
            context_mod.get_context_state().new_trace_id(),
            job_id=7, stage="dispatch"):
        tracer.instant("inside", args={"custom": 1})
    tracer.instant("outside")
    events = {event["name"]: event for event in tracer.events()}
    inside = events["inside"]["args"]
    assert inside["custom"] == 1
    assert inside["job_id"] == 7
    assert inside["stage"] == "dispatch"
    assert len(inside["trace_id"]) == 16
    assert "args" not in events["outside"]


def test_tracer_annotation_does_not_override_explicit_args():
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    with context_mod.activate("ffff000011112222", job_id=1):
        tracer.instant("event", args={"trace_id": "explicit"})
    (event,) = [e for e in tracer.events() if e["name"] == "event"]
    assert event["args"]["trace_id"] == "explicit"
    assert event["args"]["job_id"] == 1


def test_solve_is_bit_for_bit_identical_with_context_enabled():
    problem = compiled_problem(seed=3)
    config = SolverConfig(num_sweeps=40, num_reads=3, seed=9,
                          convergence=False)
    baseline = solve(problem, "sa", config=config)
    context_mod.enable_context()
    state = context_mod.get_context_state()
    with state.activate(state.mint(stage="pipeline")):
        traced = solve(problem, "sa", config=config)
    assert traced.solution == baseline.solution
    assert traced.energy == baseline.energy
    assert list(traced.energies) == list(baseline.energies)
    # And the default-off result carries no obs keys at all.
    assert "trace_id" not in baseline.provenance
    assert "profile" not in baseline.provenance


# -- flight recorder ---------------------------------------------------
def test_flight_guard_and_env_opt_in(monkeypatch, tmp_path):
    assert flight_mod.get_flight_recorder() is None
    flight_mod.flight_event("job", "noop")  # must not raise while off
    recorder = flight_mod.enable_flight()
    assert flight_mod.get_flight_recorder() is recorder
    flight_mod.disable_flight()
    monkeypatch.setenv(flight_mod.ENV_VAR, "yes")
    monkeypatch.setenv(flight_mod.ENV_DIR_VAR, str(tmp_path))
    recorder = flight_mod.enable_from_env()
    assert recorder is not None
    assert recorder._dump_dir == str(tmp_path)
    flight_mod.disable_flight()
    monkeypatch.setenv(flight_mod.ENV_VAR, "")
    assert flight_mod.enable_from_env() is None


def test_flight_events_default_ids_from_context():
    context_mod.enable_context()
    recorder = flight_mod.enable_flight()
    state = context_mod.get_context_state()
    with state.activate(state.mint(job_id=5)):
        event = recorder.record("job", "dispatching")
    assert event["job_id"] == 5
    assert event["trace_id"] is not None
    explicit = recorder.record("job", "finish", trace_id="t1", job_id=9)
    assert explicit["trace_id"] == "t1" and explicit["job_id"] == 9


def test_flight_ring_is_bounded_and_counts_drops():
    recorder = flight_mod.FlightRecorder(max_events=4)
    for index in range(10):
        recorder.record("k", f"event{index}")
    assert len(recorder.events()) == 4
    assert recorder.dropped == 6
    assert [event["name"] for event in recorder.events()] == [
        "event6", "event7", "event8", "event9"]


def test_capsule_dump_filters_to_trace_plus_ambient(tmp_path):
    recorder = flight_mod.FlightRecorder(dump_dir=str(tmp_path))
    recorder.record("job", "mine", trace_id="aaa", job_id=1)
    recorder.record("job", "other", trace_id="bbb", job_id=2)
    recorder.record("slo", "ambient")  # no ids: rides in every capsule
    capsule = recorder.dump("job_timeout", trace_id="aaa", job_id=1,
                            detail={"deadline": 0.1})
    assert [event["name"] for event in capsule["events"]] == [
        "mine", "ambient"]
    assert capsule["event_count"] == 2
    assert flight_mod.validate_flight_document(capsule) == []
    # And the on-disk copy round-trips through the validator too.
    with open(capsule["path"], encoding="utf-8") as handle:
        assert flight_mod.validate_flight_document(
            json.load(handle)) == []


def test_validate_flight_document_catches_corruption():
    assert flight_mod.validate_flight_document([]) \
        == ["document is not a JSON object"]
    capsule = flight_mod.FlightRecorder().dump("why")
    broken = dict(capsule)
    broken["schema"] = "wrong/v0"
    broken["event_count"] = 99
    broken["events"] = [{"kind": "", "name": "x", "seq": "nope"}]
    problems = flight_mod.validate_flight_document(broken)
    assert any("schema tag" in problem for problem in problems)
    assert any("event_count" in problem for problem in problems)
    assert any("'seq'" in problem for problem in problems)


def test_slo_breach_dumps_one_capsule_and_dedupes(tmp_path):
    recorder = flight_mod.enable_flight(dump_dir=str(tmp_path))
    rule = health_mod.SLORule(
        name="queue_wait_p95",
        expr="p95(service_queue_wait_seconds) < 0.001",
        description="p95 queue wait under 1ms",
    )
    snapshot = {
        "schema": "repro-metrics/v1",
        "histograms": {"service_queue_wait_seconds": {"series": [{
            "labels": {}, "count": 10, "sum": 0.1,
            "reservoir": [0.01] * 10,
        }]}},
        "counters": {}, "gauges": {},
    }
    first = health_mod.evaluate_rules([rule], snapshot)
    assert first.status == "fail"
    assert len(recorder.capsules) == 1
    capsule = recorder.capsules[0]
    assert capsule["reason"] == "slo_breach"
    assert capsule["detail"]["rules"][0]["rule"] == "queue_wait_p95"
    assert flight_mod.validate_flight_document(capsule) == []
    # The identical breach evaluated again must not dump a second one.
    health_mod.evaluate_rules([rule], snapshot)
    assert len(recorder.capsules) == 1


# -- sampling profiler -------------------------------------------------
def test_profiler_guard_and_env_opt_in(monkeypatch):
    assert profiler_mod.get_profiler_config() is None
    assert profiler_mod.maybe_capture(None) is None
    assert profiler_mod.maybe_capture(False) is None
    config = profiler_mod.enable_profiling(interval=0.001)
    assert profiler_mod.get_profiler_config() is config
    assert profiler_mod.maybe_capture(False) is None
    profiler_mod.disable_profiling()
    monkeypatch.setenv(profiler_mod.ENV_VAR, "on")
    assert profiler_mod.enable_from_env() is not None
    profiler_mod.disable_profiling()


def _busy(deadline):
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


def test_profile_capture_samples_this_thread():
    capture = profiler_mod.ProfileCapture(interval=0.001)
    with capture:
        _busy(time.perf_counter() + 0.08)
    summary = capture.summary(top=5)
    assert summary["samples"] > 0
    assert summary["duration_seconds"] > 0
    assert summary["stacks"]
    sites = " ".join(entry["site"] for entry in summary["hotspots"])
    assert "_busy" in sites
    fractions = [entry["fraction"] for entry in summary["hotspots"]]
    assert all(0 < fraction <= 1 for fraction in fractions)


def test_solve_profile_opt_in_attaches_provenance_and_trace():
    tracer = trace_mod.enable_tracing(sample_memory=False)
    problem = compiled_problem(seed=1)
    config = SolverConfig(num_sweeps=400, num_reads=4, seed=2,
                          convergence=False)
    baseline = solve(problem, "sa", config=config, profile=False)
    profiled = solve(problem, "sa", config=config, profile=True)
    assert profiled.solution == baseline.solution
    assert list(profiled.energies) == list(baseline.energies)
    summary = profiled.provenance["profile"]
    assert summary["samples"] >= 0
    assert "hotspots" in summary
    mirrored = [event for event in tracer.events()
                if event["cat"] == "profile"]
    assert mirrored and mirrored[0]["name"] == "profile.sa"


# -- obs-report join ---------------------------------------------------
def _trace_document(events):
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "metadata": {}}


def _service_events(trace_id, job_id):
    return [
        {"name": "service.job.submitted", "cat": "service", "ph": "I",
         "ts": 10.0, "pid": 1, "tid": 1,
         "args": {"trace_id": trace_id, "job_id": job_id,
                  "solver": "sa"}},
        {"name": "service.worker.sa", "cat": "span", "ph": "B",
         "ts": 20.0, "pid": 2, "tid": 2,
         "args": {"trace_id": trace_id, "job_id": job_id,
                  "stage": "worker"}},
        {"name": "convergence.sa", "cat": "convergence", "ph": "I",
         "ts": 25.0, "pid": 2, "tid": 2,
         "args": {"trace_id": trace_id, "job_id": job_id}},
        {"name": "service.job.dispatch", "cat": "service", "ph": "I",
         "ts": 30.0, "pid": 1, "tid": 1,
         "args": {"trace_id": trace_id, "job_id": job_id,
                  "solver": "sa", "dispatch": "warm",
                  "worker_pid": 2, "queue_seconds": 0.004,
                  "batched": 1}},
        {"name": "service.job.finish", "cat": "service", "ph": "I",
         "ts": 40.0, "pid": 1, "tid": 1,
         "args": {"trace_id": trace_id, "job_id": job_id,
                  "solver": "sa", "status": "done",
                  "queue_seconds": 0.004}},
    ]


def test_obs_report_join_and_timeline():
    events = (_service_events("t1" * 8, 1)
              + _service_events("t2" * 8, 2)
              + [{"name": "untagged", "ph": "I", "ts": 1.0,
                  "pid": 1, "tid": 1}])
    capsule = flight_mod.FlightRecorder().dump(
        "job_timeout", trace_id="t2" * 8, job_id=2,
        detail={"deadline": 0.1})
    traces = obs_mod.join_artifacts(events, [capsule])
    assert sorted(traces) == sorted(["t1" * 8, "t2" * 8])
    summary = obs_mod.build_timeline("t1" * 8, traces["t1" * 8])
    assert summary["job_ids"] == [1]
    assert summary["solver"] == "sa"
    assert summary["dispatch"] == "warm"
    assert summary["worker_pid"] == 2
    assert summary["queue_seconds"] == 0.004
    assert summary["status"] == "done"
    assert summary["convergence_rows"] == 1
    assert len(summary["worker_spans"]) == 1
    rendered = obs_mod.render_timeline(
        summary, traces["t1" * 8]["capsules"])
    assert "queue wait: 4.00ms" in rendered
    assert "dispatch: warm (worker pid 2)" in rendered
    failed = obs_mod.build_timeline("t2" * 8, traces["t2" * 8])
    rendered = obs_mod.render_timeline(
        failed, traces["t2" * 8]["capsules"])
    assert "flight capsule: job_timeout" in rendered


def test_obs_report_cli_end_to_end(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    trace_path.write_text(json.dumps(
        _trace_document(_service_events("cafe" * 4, 3))))
    recorder = flight_mod.FlightRecorder(dump_dir=str(tmp_path))
    recorder.record("job", "timeout", trace_id="cafe" * 4, job_id=3)
    recorder.dump("job_timeout", trace_id="cafe" * 4, job_id=3)

    assert obs_mod.main([str(trace_path), "--list"]) == 0
    assert "cafe" * 4 in capsys.readouterr().out

    assert obs_mod.main([str(trace_path), "cafe" * 4,
                         "--flight", str(tmp_path),
                         "--validate"]) == 0
    out = capsys.readouterr().out
    assert "queue wait: 4.00ms" in out
    assert "flight capsule: job_timeout" in out

    assert obs_mod.main([str(trace_path), "--pick", "failed",
                         "--flight", str(tmp_path)]) == 0
    assert "trace " + "cafe" * 4 in capsys.readouterr().out

    # Unknown trace id: exit 2 (the acceptance-criteria contract).
    assert obs_mod.main([str(trace_path), "0" * 16]) == 2
