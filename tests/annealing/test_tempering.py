"""Tests for the parallel tempering solver."""

import numpy as np
import pytest

from repro.annealing import (
    IsingModel,
    ParallelTemperingSolver,
    QUBO,
    solve_ising_exact,
    solve_qubo_exact,
)


@pytest.fixture(scope="module")
def glass():
    rng = np.random.default_rng(6)
    return QUBO.from_matrix(rng.normal(size=(10, 10)))


def test_pt_finds_optimum(glass):
    solver = ParallelTemperingSolver(num_replicas=6, num_sweeps=150,
                                     num_reads=3, seed=0)
    result = solver.solve(glass)
    assert result.best_energy == pytest.approx(
        solve_qubo_exact(glass).energy
    )


def test_pt_accepts_ising_directly():
    model = IsingModel.random(8, seed=1)
    solver = ParallelTemperingSolver(num_replicas=4, num_sweeps=100,
                                     num_reads=2, seed=2)
    result = solver.solve(model)
    _, exact = solve_ising_exact(model)
    assert result.best_energy <= exact + 1.0


def test_pt_swap_acceptance_recorded(glass):
    solver = ParallelTemperingSolver(num_replicas=5, num_sweeps=50,
                                     num_reads=1, seed=3)
    solver.solve(glass)
    assert 0.0 <= solver.last_swap_acceptance <= 1.0


def test_pt_deterministic_with_seed(glass):
    make = lambda: ParallelTemperingSolver(
        num_replicas=4, num_sweeps=50, num_reads=2, seed=11
    )
    assert (make().solve(glass).best_energy
            == make().solve(glass).best_energy)


def test_pt_custom_beta_ladder(glass):
    solver = ParallelTemperingSolver(
        num_replicas=3, num_sweeps=80, num_reads=2,
        betas=[0.05, 0.5, 5.0], seed=4,
    )
    result = solver.solve(glass)
    assert result.best_energy <= solve_qubo_exact(glass).energy + 2.0


def test_pt_validations():
    with pytest.raises(ValueError):
        ParallelTemperingSolver(num_replicas=1)
    with pytest.raises(ValueError):
        ParallelTemperingSolver(num_sweeps=0)
    with pytest.raises(ValueError):
        ParallelTemperingSolver(num_reads=0)
    with pytest.raises(ValueError):
        ParallelTemperingSolver(num_replicas=3, betas=[1.0, 2.0])
    with pytest.raises(ValueError):
        ParallelTemperingSolver(num_replicas=3, betas=[2.0, 1.0, 3.0])


def test_pt_never_beats_exact(glass):
    floor = solve_qubo_exact(glass).energy
    for seed in range(3):
        solver = ParallelTemperingSolver(num_replicas=4, num_sweeps=40,
                                         num_reads=1, seed=seed)
        assert solver.solve(glass).best_energy >= floor - 1e-9
