"""Regression tests for solver schedule auto-scaling.

These pin down two failure modes found during development:

* penalty-heavy QUBOs whose large coefficients froze the old fixed
  beta schedule, and
* near-zero stray coefficients (e.g. tiny mutual-information scores)
  that stretched the cold end so far the whole anneal was frozen.
"""

import numpy as np
import pytest

from repro.annealing import (
    QUBO,
    ParallelTemperingSolver,
    SimulatedAnnealingSolver,
    solve_qubo_exact,
)
from repro.annealing.ising import IsingModel
from repro.annealing.simulated_annealing import auto_beta_schedule


def test_sa_solves_penalty_heavy_qubo():
    """Large penalty coefficients must not freeze the schedule."""
    qubo = QUBO(6)
    rng = np.random.default_rng(0)
    for i in range(6):
        qubo.add_linear(i, float(rng.uniform(1, 5)))
    qubo.add_penalty_exactly_one([0, 1, 2], weight=500.0)
    qubo.add_penalty_exactly_one([3, 4, 5], weight=500.0)
    result = SimulatedAnnealingSolver(num_sweeps=300, num_reads=15,
                                      seed=1).solve(qubo)
    exact = solve_qubo_exact(qubo)
    assert result.best_energy == pytest.approx(exact.energy)


def test_sa_solves_qubo_with_tiny_stray_coefficients():
    """A near-zero coefficient must not stretch the cold end into a
    frozen schedule (the floor at 1e-3 * max matters here)."""
    qubo = QUBO(8)
    rng = np.random.default_rng(1)
    for i in range(8):
        qubo.add_linear(i, float(rng.normal()))
    for i in range(7):
        qubo.add_quadratic(i, i + 1, float(rng.normal()))
    qubo.add_quadratic(0, 7, 1e-9)  # the stray term
    result = SimulatedAnnealingSolver(num_sweeps=300, num_reads=15,
                                      seed=2).solve(qubo)
    exact = solve_qubo_exact(qubo)
    assert result.best_energy == pytest.approx(exact.energy)


def test_auto_beta_cold_end_is_floored():
    model = IsingModel(3, j={(0, 1): 1.0, (1, 2): 1e-12})
    betas = auto_beta_schedule(model, 10)
    # Without the floor the cold end would be ~ln(1000)/2e-12 ~ 1e15.
    assert betas[-1] < 1e7


def test_parallel_tempering_on_weak_strong_barrier():
    """PT crosses the tall-thin barrier that defeats plain SA."""
    from repro.experiments.optimization import (
        weak_strong_cluster_instance,
    )
    from repro.annealing import solve_ising_exact

    model = weak_strong_cluster_instance(6)
    _, optimum = solve_ising_exact(model)
    solver = ParallelTemperingSolver(num_replicas=8, num_sweeps=200,
                                     num_reads=5, seed=3)
    result = solver.solve(model)
    assert result.success_probability(optimum) >= 0.6
