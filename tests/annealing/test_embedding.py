"""Tests for Chimera topology and minor embedding."""

import networkx as nx
import numpy as np
import pytest

from repro.annealing import (
    EmbeddedSolver,
    Embedding,
    IsingModel,
    Sample,
    SampleSet,
    SimulatedAnnealingSolver,
    chain_break_fraction,
    chimera_graph,
    embed_ising,
    find_embedding,
    solve_ising_exact,
    unembed_sampleset,
)


@pytest.fixture(scope="module")
def hardware():
    return chimera_graph(2, 2, shore=4)


# ----------------------------------------------------------------------
# Chimera topology
# ----------------------------------------------------------------------
def test_chimera_node_and_edge_counts(hardware):
    # 4 cells x 8 qubits.
    assert hardware.number_of_nodes() == 32
    # Per cell: 16 internal; inter-cell: 4 vertical + 4 horizontal
    # per adjacent pair; 2x2 grid has 2 vertical + 2 horizontal pairs.
    assert hardware.number_of_edges() == 4 * 16 + 4 * 4


def test_chimera_cell_is_bipartite_k44():
    cell = chimera_graph(1, 1, shore=4)
    assert cell.number_of_nodes() == 8
    assert cell.number_of_edges() == 16
    assert nx.is_bipartite(cell)


def test_chimera_validates_args():
    with pytest.raises(ValueError):
        chimera_graph(0, 1)


def test_chimera_is_connected(hardware):
    assert nx.is_connected(hardware)


# ----------------------------------------------------------------------
# Embedding
# ----------------------------------------------------------------------
def test_embedding_rejects_overlapping_chains():
    with pytest.raises(ValueError):
        Embedding({0: [1, 2], 1: [2, 3]})


def test_embedding_rejects_empty_chain():
    with pytest.raises(ValueError):
        Embedding({0: []})


def test_find_embedding_triangle_in_cell(hardware):
    # A triangle does not fit a bipartite cell without a chain.
    embedding = find_embedding([(0, 1), (1, 2), (0, 2)], hardware,
                               seed=0)
    assert set(embedding.chains) == {0, 1, 2}
    assert embedding.max_chain_length() >= 1
    _assert_edges_realizable(embedding, [(0, 1), (1, 2), (0, 2)],
                             hardware)


def test_find_embedding_k5(hardware):
    edges = [(a, b) for a in range(5) for b in range(a + 1, 5)]
    embedding = find_embedding(edges, hardware, seed=0)
    _assert_edges_realizable(embedding, edges, hardware)
    # Chains must be connected in hardware.
    for chain in embedding.chains.values():
        assert nx.is_connected(hardware.subgraph(chain))


def test_find_embedding_too_large_raises():
    tiny = chimera_graph(1, 1, shore=2)  # 4 qubits
    edges = [(a, b) for a in range(8) for b in range(a + 1, 8)]
    with pytest.raises(RuntimeError):
        find_embedding(edges, tiny, seed=0)


def test_find_embedding_requires_edges(hardware):
    with pytest.raises(ValueError):
        find_embedding([], hardware)


def _assert_edges_realizable(embedding, edges, hardware):
    for u, v in edges:
        chain_u = set(embedding.chains[u])
        chain_v = set(embedding.chains[v])
        touching = any(
            n in chain_v
            for q in chain_u for n in hardware.neighbors(q)
        )
        assert touching, f"chains of {u} and {v} not adjacent"


# ----------------------------------------------------------------------
# Compilation and unembedding
# ----------------------------------------------------------------------
def test_embed_ising_preserves_ground_state(hardware):
    model = IsingModel.random(4, density=1.0, field_scale=0.4, seed=2)
    embedding = find_embedding(list(model.j), hardware, seed=0)
    physical = embed_ising(model, embedding, hardware)
    # The physical ground state, unembedded, is the logical one.
    spins, logical_energy = solve_ising_exact(model)
    phys_spins, _ = solve_ising_exact(physical)
    bits = tuple((1 + s) // 2 for s in phys_spins)
    samples = SampleSet([Sample(bits, 0.0)])
    logical = unembed_sampleset(samples, embedding, model)
    assert logical.best_energy == pytest.approx(logical_energy)


def test_embed_ising_missing_edge_raises(hardware):
    model = IsingModel(2, j={(0, 1): 1.0})
    # Deliberately broken embedding: two far-apart single qubits with
    # no hardware edge between them.
    far_a, far_b = 0, 31
    assert not hardware.has_edge(far_a, far_b)
    with pytest.raises(ValueError):
        embed_ising(model, Embedding({0: [far_a], 1: [far_b]}),
                    hardware)


def test_unembed_majority_vote():
    model = IsingModel(1, h={0: -1.0}, j={})
    embedding = Embedding({0: [0, 1, 2]})
    samples = SampleSet([Sample((1, 1, 0), 0.0)])  # broken chain 2:1
    logical = unembed_sampleset(samples, embedding, model)
    assert logical.best.assignment == (1,)


def test_chain_break_fraction_counts():
    embedding = Embedding({0: [0, 1]})
    intact = SampleSet([Sample((1, 1), 0.0)])
    broken = SampleSet([Sample((1, 0), 0.0)])
    assert chain_break_fraction(intact, embedding) == 0.0
    assert chain_break_fraction(broken, embedding) == 1.0


# ----------------------------------------------------------------------
# End-to-end embedded solving
# ----------------------------------------------------------------------
def test_embedded_solver_matches_exact(hardware):
    model = IsingModel.random(5, density=1.0, field_scale=0.3, seed=1)
    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=400, num_reads=25, seed=3),
        hardware, seed=0,
    )
    result = solver.solve(model)
    _, exact = solve_ising_exact(model)
    assert result.best_energy == pytest.approx(exact)
    assert solver.last_embedding is not None
    assert solver.last_chain_break_fraction is not None


def test_embedded_solver_rejects_uncoupled_spin(hardware):
    model = IsingModel(3, h={2: 1.0}, j={(0, 1): -1.0})
    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=50, num_reads=3, seed=0),
        hardware,
    )
    with pytest.raises(ValueError):
        solver.solve(model)


def test_embedded_solver_accepts_qubo(hardware):
    from repro.annealing import QUBO, solve_qubo_exact

    qubo = QUBO(3)
    qubo.add_quadratic(0, 1, -2.0).add_quadratic(1, 2, 1.0)
    qubo.add_quadratic(0, 2, 1.5).add_linear(0, -1.0)
    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=300, num_reads=20, seed=4),
        hardware, seed=0,
    )
    result = solver.solve(qubo)
    assert result.best_energy == pytest.approx(
        solve_qubo_exact(qubo).energy
    )


# ----------------------------------------------------------------------
# Structured clique embedding
# ----------------------------------------------------------------------
def test_clique_embedding_k16_on_c4():
    import networkx as nx

    from repro.annealing import chimera_clique_embedding

    hardware = chimera_graph(4, 4, shore=4)
    embedding = chimera_clique_embedding(16, 4, shore=4)
    for u in range(16):
        chain_u = set(embedding.chains[u])
        assert nx.is_connected(hardware.subgraph(chain_u))
        for v in range(u + 1, 16):
            chain_v = set(embedding.chains[v])
            touching = any(
                n in chain_v
                for q in chain_u for n in hardware.neighbors(q)
            )
            assert touching, f"chains {u}, {v} not adjacent"


def test_clique_embedding_chain_length():
    from repro.annealing import chimera_clique_embedding

    embedding = chimera_clique_embedding(12, 3, shore=4)
    assert embedding.max_chain_length() == 4  # rows + 1


def test_clique_embedding_capacity_check():
    from repro.annealing import chimera_clique_embedding

    with pytest.raises(ValueError):
        chimera_clique_embedding(17, 4, shore=4)
    with pytest.raises(ValueError):
        chimera_clique_embedding(0, 4)


def test_embedded_solver_clique_fallback_dense_problem():
    """An 11-variable dense QUBO (beyond the greedy embedder) solves
    through the structured clique fallback."""
    from repro.annealing import QUBO, solve_qubo_exact

    rng = np.random.default_rng(12)
    qubo = QUBO.from_matrix(rng.normal(size=(11, 11)))
    hardware = chimera_graph(3, 3, shore=4)
    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=600, num_reads=30, seed=0),
        hardware, seed=0,
    )
    result = solver.solve(qubo)
    exact = solve_qubo_exact(qubo)
    assert result.best_energy <= exact.energy + 1.0
    assert solver.last_embedding.max_chain_length() == 4
