"""Tests for the QAOA solver."""

import numpy as np
import pytest

from repro.annealing import (
    QAOASolver,
    QUBO,
    IsingModel,
    approximation_ratio,
    basis_energies,
    qaoa_circuit,
    solve_ising_exact,
)


@pytest.fixture(scope="module")
def triangle_maxcut():
    """MaxCut on a triangle as an Ising model: J = +1 on each edge."""
    return IsingModel(3, j={(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})


def test_qaoa_circuit_structure(triangle_maxcut):
    qc = qaoa_circuit(triangle_maxcut, gammas=[0.3], betas=[0.2])
    ops = qc.count_ops()
    assert ops["h"] == 3
    assert ops["rzz"] == 3
    assert ops["rx"] == 3


def test_qaoa_circuit_depth_two_layers(triangle_maxcut):
    qc = qaoa_circuit(triangle_maxcut, gammas=[0.3, 0.1], betas=[0.2, 0.4])
    assert qc.count_ops()["rzz"] == 6


def test_qaoa_circuit_angle_length_mismatch(triangle_maxcut):
    with pytest.raises(ValueError):
        qaoa_circuit(triangle_maxcut, gammas=[0.1], betas=[0.1, 0.2])


def test_basis_energies_match_model():
    model = IsingModel(2, h={0: 0.5}, j={(0, 1): -1.0})
    energies = basis_energies(model)
    # index 0 = |00> = spins (+1, +1): E = 0.5 - 1 = -0.5
    assert energies[0] == pytest.approx(-0.5)
    # index 3 = |11> = spins (-1, -1): E = -0.5 - 1 = -1.5
    assert energies[3] == pytest.approx(-1.5)


def test_qaoa_improves_over_random_guessing(triangle_maxcut):
    result = QAOASolver(p=1, restarts=2, seed=0).solve(triangle_maxcut)
    energies = basis_energies(triangle_maxcut)
    random_expectation = float(energies.mean())
    assert result.expectation < random_expectation


def test_qaoa_samples_reach_ground_state(triangle_maxcut):
    result = QAOASolver(p=2, restarts=3, shots=512, seed=1).solve(
        triangle_maxcut
    )
    _, exact = solve_ising_exact(triangle_maxcut)
    assert result.samples.best_energy == pytest.approx(exact)


def test_qaoa_ratio_increases_with_depth(triangle_maxcut):
    shallow = QAOASolver(p=1, restarts=3, seed=2).solve(triangle_maxcut)
    deep = QAOASolver(p=3, restarts=3, seed=2).solve(triangle_maxcut)
    assert deep.approximation_ratio >= shallow.approximation_ratio - 0.02


def test_qaoa_accepts_qubo_input():
    q = QUBO(2).add_linear(0, 1.0).add_quadratic(0, 1, -3.0)
    result = QAOASolver(p=1, restarts=2, seed=3).solve(q)
    assert result.samples.best.assignment in {(1, 1), (0, 0), (0, 1), (1, 0)}


def test_qaoa_validates_args():
    with pytest.raises(ValueError):
        QAOASolver(p=0)
    with pytest.raises(ValueError):
        QAOASolver(optimizer="bfgs")
    with pytest.raises(ValueError):
        QAOASolver(restarts=0)


def test_approximation_ratio_bounds():
    energies = np.array([-2.0, 0.0, 3.0])
    assert approximation_ratio(-2.0, energies) == pytest.approx(1.0)
    assert approximation_ratio(3.0, energies) == pytest.approx(0.0)
    assert approximation_ratio(0.5, energies) == pytest.approx(0.5)


def test_approximation_ratio_degenerate_spectrum():
    assert approximation_ratio(1.0, np.array([1.0, 1.0])) == 1.0


def test_qaoa_nelder_mead_also_works(triangle_maxcut):
    result = QAOASolver(p=1, optimizer="nelder-mead", restarts=1,
                        seed=4).solve(triangle_maxcut)
    assert result.nfev > 0
    assert result.gammas.size == 1
