"""Tests for exact, SA, SQA and tabu solvers plus sample sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import (
    QUBO,
    IsingModel,
    Sample,
    SampleSet,
    SimulatedAnnealingSolver,
    SimulatedQuantumAnnealingSolver,
    TabuSearchSolver,
    all_assignments,
    anneal_qubo,
    ground_states,
    qubo_spectrum,
    solve_ising_exact,
    solve_qubo_exact,
)
from repro.annealing.simulated_annealing import auto_beta_schedule


@pytest.fixture(scope="module")
def frustrated_qubo():
    rng = np.random.default_rng(5)
    return QUBO.from_matrix(rng.normal(size=(8, 8)))


# ----------------------------------------------------------------------
# SampleSet
# ----------------------------------------------------------------------
def test_sampleset_sorts_by_energy():
    ss = SampleSet([Sample((0,), 2.0), Sample((1,), -1.0)])
    assert ss.best_energy == -1.0
    assert ss.best.assignment == (1,)


def test_sampleset_merges_duplicates():
    ss = SampleSet([Sample((0, 1), 1.0), Sample((0, 1), 1.0, 3)])
    assert len(ss) == 1
    assert ss.best.num_occurrences == 4


def test_sampleset_success_probability():
    ss = SampleSet([Sample((0,), 0.0, 3), Sample((1,), 5.0, 1)])
    assert ss.success_probability(0.0) == pytest.approx(0.75)


def test_sampleset_rejects_empty():
    with pytest.raises(ValueError):
        SampleSet([])


def test_sampleset_energies_expanded():
    ss = SampleSet([Sample((0,), 1.0, 2), Sample((1,), 3.0)])
    assert sorted(ss.energies()) == [1.0, 1.0, 3.0]


# ----------------------------------------------------------------------
# Exact
# ----------------------------------------------------------------------
def test_all_assignments_lexicographic():
    rows = all_assignments(2)
    assert rows.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]


def test_all_assignments_limit():
    with pytest.raises(ValueError):
        all_assignments(30)


def test_exact_qubo_known_optimum():
    # min of x0 - 2 x1 + 3 x0 x1 is x = (0, 1) with energy -2.
    q = QUBO(2).add_linear(0, 1.0).add_linear(1, -2.0)
    q.add_quadratic(0, 1, 3.0)
    best = solve_qubo_exact(q)
    assert best.assignment == (0, 1)
    assert best.energy == pytest.approx(-2.0)


def test_exact_ising_ferromagnet():
    model = IsingModel(3, j={(0, 1): -1.0, (1, 2): -1.0})
    spins, energy = solve_ising_exact(model)
    assert energy == pytest.approx(-2.0)
    assert abs(spins.sum()) == 3  # all aligned


def test_qubo_spectrum_sorted_and_complete():
    q = QUBO(3).add_linear(0, 1.0)
    spectrum = qubo_spectrum(q)
    assert spectrum.size == 8
    assert (np.diff(spectrum) >= 0).all()


def test_ground_states_finds_degenerate_optima():
    # -Z0 Z1 in QUBO form has two ground states: 00 and 11.
    model = IsingModel(2, j={(0, 1): -1.0}).to_qubo()
    states = ground_states(model)
    assignments = {s.assignment for s in states}
    assert assignments == {(0, 0), (1, 1)}


# ----------------------------------------------------------------------
# Simulated annealing
# ----------------------------------------------------------------------
def test_sa_finds_optimum_of_small_qubo(frustrated_qubo):
    exact = solve_qubo_exact(frustrated_qubo)
    result = anneal_qubo(frustrated_qubo, num_sweeps=200, num_reads=10,
                         seed=0)
    assert result.best_energy == pytest.approx(exact.energy)


def test_sa_accepts_ising_directly():
    model = IsingModel.random(6, seed=1)
    solver = SimulatedAnnealingSolver(num_sweeps=100, num_reads=5, seed=2)
    result = solver.solve(model)
    _, exact_energy = solve_ising_exact(model)
    assert result.best_energy <= exact_energy + 2.0


def test_sa_deterministic_with_seed(frustrated_qubo):
    a = SimulatedAnnealingSolver(num_sweeps=50, num_reads=3, seed=9)
    b = SimulatedAnnealingSolver(num_sweeps=50, num_reads=3, seed=9)
    assert (a.solve(frustrated_qubo).best_energy
            == b.solve(frustrated_qubo).best_energy)


def test_sa_validates_args():
    with pytest.raises(ValueError):
        SimulatedAnnealingSolver(num_sweeps=0)
    with pytest.raises(ValueError):
        SimulatedAnnealingSolver(num_reads=0)


def test_sa_custom_schedule_length_checked(frustrated_qubo):
    solver = SimulatedAnnealingSolver(num_sweeps=10, beta_schedule=[1.0])
    with pytest.raises(ValueError):
        solver.solve(frustrated_qubo)


def test_auto_beta_schedule_is_increasing(frustrated_qubo):
    betas = auto_beta_schedule(frustrated_qubo.to_ising(), 50)
    assert len(betas) == 50
    assert betas[0] < betas[-1]
    assert betas[0] > 0


def test_auto_beta_schedule_scales_with_coefficients():
    small = IsingModel(2, j={(0, 1): 1.0})
    large = IsingModel(2, j={(0, 1): 1000.0})
    assert (auto_beta_schedule(large, 10)[0]
            < auto_beta_schedule(small, 10)[0])


def test_sa_penalized_onehot_problem():
    """SA respects one-hot penalties when weights dominate."""
    q = QUBO(3).add_linear(0, 5.0).add_linear(1, 1.0).add_linear(2, 3.0)
    q.add_penalty_exactly_one([0, 1, 2], weight=20.0)
    result = anneal_qubo(q, num_sweeps=100, num_reads=5, seed=3)
    assert result.best_assignment.tolist() == [0, 1, 0]


# ----------------------------------------------------------------------
# Simulated quantum annealing
# ----------------------------------------------------------------------
def test_sqa_finds_optimum_of_small_qubo(frustrated_qubo):
    exact = solve_qubo_exact(frustrated_qubo)
    solver = SimulatedQuantumAnnealingSolver(
        num_sweeps=200, num_reads=8, num_slices=10, seed=4
    )
    result = solver.solve(frustrated_qubo)
    assert result.best_energy <= exact.energy + 0.5


def test_sqa_validates_args():
    with pytest.raises(ValueError):
        SimulatedQuantumAnnealingSolver(num_slices=1)
    with pytest.raises(ValueError):
        SimulatedQuantumAnnealingSolver(beta=0.0)


def test_sqa_deterministic_with_seed(frustrated_qubo):
    make = lambda: SimulatedQuantumAnnealingSolver(
        num_sweeps=50, num_reads=3, num_slices=6, seed=11
    )
    assert (make().solve(frustrated_qubo).best_energy
            == make().solve(frustrated_qubo).best_energy)


def test_sqa_gamma_schedule_length_checked(frustrated_qubo):
    solver = SimulatedQuantumAnnealingSolver(
        num_sweeps=10, gamma_schedule=[1.0]
    )
    with pytest.raises(ValueError):
        solver.solve(frustrated_qubo)


# ----------------------------------------------------------------------
# Tabu search
# ----------------------------------------------------------------------
def test_tabu_finds_optimum_of_small_qubo(frustrated_qubo):
    exact = solve_qubo_exact(frustrated_qubo)
    solver = TabuSearchSolver(num_restarts=5, max_iterations=200, seed=5)
    result = solver.solve(frustrated_qubo)
    assert result.best_energy == pytest.approx(exact.energy)


def test_tabu_validates_args():
    with pytest.raises(ValueError):
        TabuSearchSolver(num_restarts=0)
    with pytest.raises(ValueError):
        TabuSearchSolver(max_iterations=0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_heuristics_never_beat_exact(seed):
    """Sanity invariant: no heuristic reports energy below the true
    global minimum."""
    rng = np.random.default_rng(seed)
    q = QUBO.from_matrix(rng.normal(size=(6, 6)))
    floor = solve_qubo_exact(q).energy
    sa = anneal_qubo(q, num_sweeps=60, num_reads=3, seed=seed)
    tabu = TabuSearchSolver(num_restarts=2, max_iterations=60,
                            seed=seed).solve(q)
    assert sa.best_energy >= floor - 1e-9
    assert tabu.best_energy >= floor - 1e-9


# ----------------------------------------------------------------------
# Read-vectorized sweeps (PR 2)
# ----------------------------------------------------------------------
def test_vectorized_sa_reaches_optimum_with_telemetry(frustrated_qubo):
    """Lock-step reads still find the ground state, and the sweep and
    accept/reject counters stay populated."""
    from repro import telemetry

    exact = solve_qubo_exact(frustrated_qubo)
    collector = telemetry.enable()
    try:
        solver = SimulatedAnnealingSolver(num_sweeps=200, num_reads=10,
                                          seed=0)
        result = solver.solve(frustrated_qubo)
        snapshot = collector.snapshot()
    finally:
        telemetry.disable()
    assert result.best_energy == pytest.approx(exact.energy)
    counters = snapshot["counters"]
    assert counters["annealing.sa.sweeps"] == 200 * 10
    assert counters["annealing.sa.reads"] == 10
    assert counters["annealing.sa.accepted_moves"] > 0
    assert (counters["annealing.sa.accepted_moves"]
            + counters["annealing.sa.rejected_moves"]
            == 200 * 10 * frustrated_qubo.num_variables)
    assert len(snapshot["series"]["annealing.sa.best_energy"]["values"]) == 10
    assert "annealing.sa.solve" in snapshot["spans"]


def test_vectorized_sa_returns_one_sample_per_read(frustrated_qubo):
    result = SimulatedAnnealingSolver(num_sweeps=60, num_reads=7,
                                      seed=1).solve(frustrated_qubo)
    assert sum(s.num_occurrences for s in result) == 7


def test_vectorized_sqa_reaches_optimum_with_telemetry(frustrated_qubo):
    from repro import telemetry

    exact = solve_qubo_exact(frustrated_qubo)
    collector = telemetry.enable()
    try:
        solver = SimulatedQuantumAnnealingSolver(
            num_sweeps=200, num_reads=8, num_slices=10, seed=4
        )
        result = solver.solve(frustrated_qubo)
        snapshot = collector.snapshot()
    finally:
        telemetry.disable()
    assert result.best_energy <= exact.energy + 0.5
    counters = snapshot["counters"]
    assert counters["annealing.sqa.sweeps"] == 200 * 8
    assert counters["annealing.sqa.accepted_local_moves"] > 0
    assert counters["annealing.sqa.energy_evaluations"] == 8 * 10
    assert len(snapshot["series"]["annealing.sqa.best_energy"]["values"]) == 8
