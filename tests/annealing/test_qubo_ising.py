"""Tests for QUBO/Ising models and their conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing import QUBO, IsingModel, bits_to_spins, spins_to_bits


def test_qubo_energy_basic():
    q = QUBO(2).add_linear(0, 1.0).add_quadratic(0, 1, -2.0).add_offset(0.5)
    assert q.energy([0, 0]) == pytest.approx(0.5)
    assert q.energy([1, 0]) == pytest.approx(1.5)
    assert q.energy([1, 1]) == pytest.approx(-0.5)


def test_qubo_quadratic_normalizes_key_order():
    q = QUBO(3)
    q.add_quadratic(2, 0, 1.0)
    q.add_quadratic(0, 2, 1.0)
    assert q.quadratic == {(0, 2): 2.0}


def test_qubo_diagonal_quadratic_is_linear():
    q = QUBO(2).add_quadratic(1, 1, 3.0)
    assert q.linear == {1: 3.0}


def test_qubo_energy_validates_assignment():
    q = QUBO(2)
    with pytest.raises(ValueError):
        q.energy([0])
    with pytest.raises(ValueError):
        q.energy([0, 2])


def test_qubo_variable_bounds():
    q = QUBO(2)
    with pytest.raises(ValueError):
        q.add_linear(2, 1.0)
    with pytest.raises(ValueError):
        q.add_quadratic(0, 5, 1.0)


def test_qubo_energies_vectorized_matches_scalar():
    rng = np.random.default_rng(0)
    q = QUBO.from_matrix(rng.normal(size=(5, 5)), offset=1.2)
    X = rng.integers(0, 2, size=(10, 5))
    vec = q.energies(X)
    scalar = [q.energy(x) for x in X]
    assert np.allclose(vec, scalar)


def test_qubo_from_matrix_symmetrizes():
    q = QUBO.from_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
    assert q.quadratic == {(0, 1): 3.0}


def test_qubo_from_matrix_rejects_non_square():
    with pytest.raises(ValueError):
        QUBO.from_matrix(np.ones((2, 3)))


def test_penalty_exactly_one_energies():
    q = QUBO(3).add_penalty_exactly_one([0, 1, 2], weight=2.0)
    assert q.energy([1, 0, 0]) == pytest.approx(0.0)
    assert q.energy([0, 0, 0]) == pytest.approx(2.0)
    assert q.energy([1, 1, 0]) == pytest.approx(2.0)
    assert q.energy([1, 1, 1]) == pytest.approx(8.0)


def test_penalty_at_most_one():
    q = QUBO(3).add_penalty_at_most_one([0, 1, 2], weight=1.5)
    assert q.energy([0, 0, 0]) == pytest.approx(0.0)
    assert q.energy([1, 0, 0]) == pytest.approx(0.0)
    assert q.energy([1, 1, 0]) == pytest.approx(1.5)
    assert q.energy([1, 1, 1]) == pytest.approx(4.5)


def test_penalty_equal():
    q = QUBO(2).add_penalty_equal(0, 1, weight=3.0)
    assert q.energy([0, 0]) == pytest.approx(0.0)
    assert q.energy([1, 1]) == pytest.approx(0.0)
    assert q.energy([1, 0]) == pytest.approx(3.0)


def test_penalty_implication():
    q = QUBO(2).add_penalty_implication(0, 1, weight=2.0)
    assert q.energy([1, 0]) == pytest.approx(2.0)
    assert q.energy([1, 1]) == pytest.approx(0.0)
    assert q.energy([0, 0]) == pytest.approx(0.0)


def test_penalty_rejects_negative_weight():
    with pytest.raises(ValueError):
        QUBO(2).add_penalty_exactly_one([0, 1], weight=-1.0)


def test_penalty_rejects_duplicate_variables():
    with pytest.raises(ValueError):
        QUBO(2).add_penalty_exactly_one([0, 0], weight=1.0)


def test_max_abs_coefficient():
    q = QUBO(2).add_linear(0, -3.0).add_quadratic(0, 1, 2.0)
    assert q.max_abs_coefficient() == pytest.approx(3.0)
    assert QUBO(2).max_abs_coefficient() == 0.0


# ----------------------------------------------------------------------
# Ising model
# ----------------------------------------------------------------------
def test_ising_energy():
    model = IsingModel(2, h={0: 0.5}, j={(0, 1): -1.0}, offset=2.0)
    assert model.energy([1, 1]) == pytest.approx(1.5)
    assert model.energy([-1, 1]) == pytest.approx(2.5)


def test_ising_validates_spins():
    model = IsingModel(2)
    with pytest.raises(ValueError):
        model.energy([0, 1])
    with pytest.raises(ValueError):
        model.energy([1])


def test_ising_rejects_self_coupling():
    with pytest.raises(ValueError):
        IsingModel(2, j={(1, 1): 1.0})


def test_ising_key_normalization():
    model = IsingModel(3, j={(2, 0): 1.0, (0, 2): 0.5})
    assert model.j == {(0, 2): 1.5}


def test_ising_energies_vectorized():
    model = IsingModel.random(5, seed=1)
    rng = np.random.default_rng(2)
    S = rng.choice((-1, 1), size=(8, 5))
    vec = model.energies(S)
    scalar = [model.energy(s) for s in S]
    assert np.allclose(vec, scalar)


def test_ising_random_plus_minus_one_couplings():
    model = IsingModel.random(6, density=1.0, seed=3)
    assert all(v in (-1.0, 1.0) for v in model.j.values())
    assert len(model.j) == 15


def test_spin_bit_maps_are_inverse():
    bits = np.array([0, 1, 1, 0])
    assert np.array_equal(spins_to_bits(bits_to_spins(bits)), bits)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_qubo_ising_roundtrip(seed):
    """QUBO -> Ising -> QUBO preserves energies on all assignments."""
    rng = np.random.default_rng(seed)
    q = QUBO.from_matrix(rng.normal(size=(4, 4)), offset=rng.normal())
    roundtrip = q.to_ising().to_qubo()
    for idx in range(16):
        bits = [(idx >> k) & 1 for k in range(4)]
        assert q.energy(bits) == pytest.approx(roundtrip.energy(bits))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_qubo_ising_same_energy(seed):
    """E_qubo(x) == E_ising(2x - 1) for the converted model."""
    rng = np.random.default_rng(seed)
    q = QUBO.from_matrix(rng.normal(size=(5, 5)))
    ising = q.to_ising()
    bits = rng.integers(0, 2, size=5)
    assert q.energy(bits) == pytest.approx(
        ising.energy(bits_to_spins(bits))
    )


def test_ising_to_pauli_sum_spectrum_matches():
    """The gate-model Hamiltonian has the same energy landscape."""
    from repro.annealing.qaoa import basis_energies

    model = IsingModel.random(3, field_scale=0.5, seed=4)
    ham = model.to_pauli_sum()
    diag = np.diag(ham.matrix()).real
    assert np.allclose(np.sort(diag), np.sort(basis_energies(model)))
