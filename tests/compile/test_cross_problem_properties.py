"""Hypothesis property test across problems and solvers (satellite).

For randomized instances of all five database formulations, ``solve``
with ``repair=True`` must return a feasible assignment under every
registered solver — the cross-problem contract of the compile layer.
Scale is deliberately tiny so the exact and QAOA backends stay cheap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import SolverConfig, available_solvers, solve
from repro.db import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    JoinOrderQUBO,
    MQOProblem,
    MQOQUBO,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    random_join_graph,
)
from repro.db.partitioning import PartitioningIsing, PartitioningProblem


def _smoke_problems(seed):
    """One tiny instance of each formulation, keyed by family name."""
    txsched = TransactionSchedulingProblem.random(
        3, num_objects=4, seed=seed
    )
    return {
        "join_order": JoinOrderQUBO(
            random_join_graph(3, "chain", seed=seed)
        ).compile(),
        "mqo": MQOQUBO(MQOProblem.random(2, 2, seed=seed)).compile(),
        "index_selection": IndexSelectionQUBO(
            IndexSelectionProblem.random(2, seed=seed)
        ).compile(),
        # num_slots = num_transactions guarantees a repairable colouring.
        "transaction_scheduling": TransactionSchedulingQUBO(
            txsched, txsched.num_transactions
        ).compile(),
        "partitioning": PartitioningIsing(
            PartitioningProblem.random(3, seed=seed)
        ).compile(),
    }


def _smoke_config(solver, seed):
    if solver == "qaoa":
        return SolverConfig(num_sweeps=8, num_reads=1, seed=seed,
                            options={"shots": 32})
    return SolverConfig(num_sweeps=25, num_reads=2, seed=seed)


@pytest.mark.parametrize("solver", sorted(available_solvers()))
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_solve_with_repair_is_feasible_for_all_problems(solver, seed):
    for name, problem in _smoke_problems(seed).items():
        result = solve(problem, solver=solver,
                       config=_smoke_config(solver, seed), repair=True)
        assert result.feasible, (
            f"{solver} on {name} (seed={seed}) returned an infeasible "
            f"solution: {result.solution!r}"
        )
        assert result.problem == name
        assert result.solver == solver
