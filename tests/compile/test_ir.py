"""Unit tests for the CompiledProblem IR and variable registry."""

import numpy as np
import pytest

from repro.compile import ProblemBuilder, VariableRegistry, check_bits


def test_registry_assigns_sequential_indices():
    registry = VariableRegistry()
    assert registry.add("x", 0, 0) == 0
    assert registry.add("x", 0, 1) == 1
    assert registry.add("slack", 0) == 2
    assert len(registry) == 3
    assert registry.index("x", 0, 1) == 1
    assert registry.name(2) == ("slack", 0)
    assert ("x", 0, 0) in registry


def test_registry_rejects_duplicates_and_unknowns():
    registry = VariableRegistry()
    registry.add("x", 0)
    with pytest.raises(ValueError):
        registry.add("x", 0)
    with pytest.raises(KeyError):
        registry.index("y", 1)
    with pytest.raises(IndexError):
        registry.name(5)


def test_registry_group_filters_by_prefix():
    registry = VariableRegistry()
    for q in range(2):
        for k in range(3):
            registry.add("x", q, k)
    registry.add("slack", 0)
    assert registry.group("x", 1) == [3, 4, 5]
    assert registry.group("slack") == [6]
    assert registry.group("x") == list(range(6))


def test_check_bits_validates_width():
    bits = check_bits([1, 0, 1], 3)
    assert isinstance(bits, np.ndarray)
    assert bits.tolist() == [1, 0, 1]
    with pytest.raises(ValueError, match="expected 4 bits, got 3"):
        check_bits([1, 0, 1], 4)


def test_compiled_problem_carries_hooks_and_metadata():
    builder = ProblemBuilder("toy", penalty_scale=2.0)
    a = builder.add_variable("x", 0)
    b = builder.add_variable("x", 1)
    builder.add_linear(a, 1.0).add_linear(b, -1.0)
    builder.exactly_one([a, b], 3.0)
    problem = builder.finish(
        decode=lambda bits: int(bits[1]),
        score=lambda choice: choice,
        feasible=lambda choice: choice in (0, 1),
        metadata={"extra": 7},
    )
    assert problem.name == "toy"
    assert problem.num_variables == 2
    assert problem.metadata["penalty_scale"] == 2.0
    assert problem.metadata["constraints"] == {"exactly_one": 1}
    assert problem.metadata["extra"] == 7
    assert problem.decode(np.array([0, 1])) == 1
    assert problem.feasible(1)
    assert problem.repair is None
