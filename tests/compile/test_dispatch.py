"""Unit tests for the solver registry and the ``solve`` front door."""

import numpy as np
import pytest

from repro.annealing import SimulatedAnnealingSolver
from repro.compile import (
    SolverConfig,
    available_solvers,
    make_solver,
    solve,
)
from repro.db import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    JoinOrderQUBO,
    MQOProblem,
    MQOQUBO,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    random_join_graph,
)
from repro.db.partitioning import PartitioningIsing, PartitioningProblem

SMOKE_CONFIG = SolverConfig(num_sweeps=50, num_reads=4, seed=7)


def _join_order_problem(seed=0):
    return JoinOrderQUBO(random_join_graph(3, "chain", seed=seed)).compile()


def _all_problems(seed=0):
    return [
        _join_order_problem(seed),
        MQOQUBO(MQOProblem.random(2, 2, seed=seed)).compile(),
        IndexSelectionQUBO(
            IndexSelectionProblem.random(3, seed=seed)
        ).compile(),
        TransactionSchedulingQUBO(
            TransactionSchedulingProblem.random(3, seed=seed), 3
        ).compile(),
        PartitioningIsing(
            PartitioningProblem.random(4, seed=seed)
        ).compile(),
    ]


def test_registry_lists_all_expected_solvers():
    names = available_solvers()
    assert set(names) == {"sa", "sqa", "tabu", "qaoa", "exact", "pt"}
    assert all(isinstance(d, str) and d for d in names.values())


def test_unknown_solver_raises_helpful_error():
    problem = _join_order_problem()
    with pytest.raises(ValueError) as excinfo:
        solve(problem, solver="annealotron")
    message = str(excinfo.value)
    assert "annealotron" in message
    for name in available_solvers():
        assert name in message
    with pytest.raises(ValueError):
        make_solver("annealotron")


def test_solver_config_validation():
    with pytest.raises(ValueError, match="num_sweeps"):
        SolverConfig(num_sweeps=0)
    with pytest.raises(ValueError, match="num_reads"):
        SolverConfig(num_reads=-3)
    with pytest.raises(ValueError, match="seed"):
        SolverConfig(seed=1.5)
    with pytest.raises(ValueError, match="options"):
        SolverConfig(options=[("a", 1)])
    with pytest.raises(ValueError, match="uniform knobs"):
        SolverConfig(options={"num_sweeps": 5})
    config = SolverConfig(num_sweeps=10, num_reads=2, seed=np.int64(3))
    assert config.to_dict()["seed"] == 3


@pytest.mark.parametrize("name", ["sa", "sqa", "tabu", "exact", "pt"])
@pytest.mark.parametrize("index", range(5))
def test_every_solver_solves_every_problem(name, index):
    """The acceptance matrix: all registered solvers run on all five
    formulations (QAOA is covered separately at smaller scale)."""
    problem = _all_problems()[index]
    result = solve(problem, solver=name, config=SMOKE_CONFIG)
    assert result.problem == problem.name
    assert result.solver == name
    assert result.feasible
    assert len(result.solutions) == len(result.samples)
    assert np.isfinite(result.energy)
    assert result.energies.min() == pytest.approx(result.energy)
    assert result.provenance["solver"] == name
    assert result.provenance["seed"] == 7
    assert result.provenance["num_variables"] == problem.num_variables


def test_qaoa_solves_compiled_problems():
    problem = MQOQUBO(MQOProblem.random(2, 2, seed=1)).compile()
    config = SolverConfig(num_sweeps=15, num_reads=1, seed=5,
                          options={"shots": 64})
    result = solve(problem, solver="qaoa", config=config)
    assert result.solver == "qaoa"
    assert result.feasible


def test_exact_matches_best_annealed_energy_on_small_problem():
    problem = _join_order_problem(seed=3)
    exact = solve(problem, solver="exact")
    annealed = solve(problem, solver="sa",
                     config=SolverConfig(num_sweeps=400, num_reads=20,
                                         seed=0))
    assert exact.energy <= annealed.energy + 1e-9


def test_same_seed_solves_are_identical():
    """Satellite: seeds thread uniformly, so two same-seed dispatches
    agree bit for bit."""
    config = SolverConfig(num_sweeps=80, num_reads=6, seed=123)
    for name in ("sa", "sqa", "tabu", "pt"):
        first = solve(_join_order_problem(seed=2), solver=name,
                      config=config)
        second = solve(_join_order_problem(seed=2), solver=name,
                       config=config)
        assert first.solution.order == second.solution.order
        assert first.energy == second.energy
        np.testing.assert_array_equal(first.energies, second.energies)
        assert [s.assignment for s in first.samples] == [
            s.assignment for s in second.samples
        ]


def test_different_seeds_usually_differ():
    problem = _join_order_problem(seed=2)
    a = solve(problem, solver="sa",
              config=SolverConfig(num_sweeps=5, num_reads=3, seed=0))
    b = solve(problem, solver="sa",
              config=SolverConfig(num_sweeps=5, num_reads=3, seed=1))
    assert (
        [s.assignment for s in a.samples]
        != [s.assignment for s in b.samples]
    )


def test_solver_instance_escape_hatch():
    problem = _join_order_problem()
    instance = SimulatedAnnealingSolver(num_sweeps=50, num_reads=4, seed=9)
    result = solve(problem, solver=instance)
    assert result.solver == "sa"  # taken from the class's solver_name
    assert result.feasible


def test_make_solver_binds_config():
    problem = _join_order_problem()
    run = make_solver("sa", SolverConfig(num_sweeps=50, num_reads=4,
                                         seed=11))
    samples = run(problem.model)
    direct = SimulatedAnnealingSolver(num_sweeps=50, num_reads=4,
                                      seed=11).solve(problem.model)
    assert [s.assignment for s in samples] == [
        s.assignment for s in direct
    ]


def test_repair_flag_applies_problem_repair_hook():
    problem = TransactionSchedulingQUBO(
        TransactionSchedulingProblem.random(5, num_objects=4, seed=8), 5
    ).compile()
    assert problem.repair is not None
    # A deliberately under-powered solver so raw decodes may conflict.
    weak = SolverConfig(num_sweeps=1, num_reads=1, seed=0)
    repaired = solve(problem, solver="sa", config=weak, repair=True)
    assert repaired.feasible


def test_invalid_solver_object_rejected():
    problem = _join_order_problem()
    with pytest.raises(ValueError, match="registered solvers"):
        solve(problem, solver=42)
