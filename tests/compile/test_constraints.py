"""Unit tests for the constraint primitives and the problem builder."""

import numpy as np
import pytest

from repro.annealing import QUBO
from repro.compile import (
    ProblemBuilder,
    analytic_penalty_weight,
    binary_slack_coefficients,
    validate_penalty_scale,
)
from repro.db import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    JoinOrderQUBO,
    MQOProblem,
    MQOQUBO,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    random_join_graph,
)
from repro.db.partitioning import PartitioningIsing, PartitioningProblem


def test_validate_penalty_scale_accepts_positive():
    assert validate_penalty_scale(0.25) == 0.25
    assert validate_penalty_scale(2) == 2.0


@pytest.mark.parametrize("bad", [0, 0.0, -1, -0.5])
def test_validate_penalty_scale_rejects_non_positive(bad):
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        validate_penalty_scale(bad)


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_every_formulation_rejects_non_positive_scale(bad):
    """Regression for the satellite: the centralized check fires from
    all five formulations, not just the one that first had it."""
    graph = random_join_graph(3, "chain", seed=0)
    mqo = MQOProblem.random(2, 2, seed=0)
    indexsel = IndexSelectionProblem.random(3, seed=0)
    txsched = TransactionSchedulingProblem.random(3, seed=0)
    partitioning = PartitioningProblem.random(3, seed=0)
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        JoinOrderQUBO(graph, penalty_scale=bad)
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        MQOQUBO(mqo, penalty_scale=bad)
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        IndexSelectionQUBO(indexsel, penalty_scale=bad)
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        TransactionSchedulingQUBO(txsched, 2, penalty_scale=bad)
    with pytest.raises(ValueError, match="penalty_scale must be positive"):
        PartitioningIsing(partitioning, penalty_scale=bad)


def test_analytic_penalty_weight_rule():
    assert analytic_penalty_weight(0.0) == 1.0
    assert analytic_penalty_weight(9.0) == 10.0
    assert analytic_penalty_weight(9.0, penalty_scale=0.5) == 5.0
    with pytest.raises(ValueError):
        analytic_penalty_weight(-1.0)


@pytest.mark.parametrize("bound", [1, 2, 3, 7, 10, 100])
def test_binary_slack_coefficients_cover_exact_range(bound):
    weights = binary_slack_coefficients(bound)
    reachable = {0}
    for w in weights:
        reachable |= {r + w for r in reachable}
    assert max(reachable) == bound
    assert reachable <= set(range(bound + 1))
    with pytest.raises(ValueError):
        binary_slack_coefficients(0)


def test_builder_exactly_one_matches_direct_penalty():
    builder = ProblemBuilder("toy")
    indices = [builder.add_variable("x", i) for i in range(3)]
    builder.exactly_one(indices, 5.0)
    compiled = builder.finish(
        decode=lambda bits: bits,
        score=lambda bits: 0.0,
        feasible=lambda bits: True,
    )
    direct = QUBO(3)
    direct.add_penalty_exactly_one(indices, 5.0)
    for bits in np.ndindex(2, 2, 2):
        assignment = np.array(bits)
        assert compiled.model.energy(assignment) == pytest.approx(
            direct.energy(assignment)
        )


def test_builder_implication_and_forbid_together_penalties():
    builder = ProblemBuilder("toy")
    u = builder.add_variable("u")
    v = builder.add_variable("v")
    builder.implication(u, v, 2.0)
    builder.forbid_together(u, v, 3.0)
    model = builder.finish(
        decode=lambda bits: bits,
        score=lambda bits: 0.0,
        feasible=lambda bits: True,
    ).model
    # u=1, v=0 violates the implication only.
    assert model.energy(np.array([1, 0])) == pytest.approx(2.0)
    # u=v=1 satisfies the implication but violates forbid_together.
    assert model.energy(np.array([1, 1])) == pytest.approx(3.0)
    assert model.energy(np.array([0, 0])) == pytest.approx(0.0)
    assert model.energy(np.array([0, 1])) == pytest.approx(0.0)


def test_builder_linear_leq_penalizes_only_overweight_sets():
    builder = ProblemBuilder("toy")
    items = [builder.add_variable("item", i) for i in range(2)]
    slack = builder.linear_leq(
        [(items[0], 2.0), (items[1], 3.0)], bound=3, weight=10.0
    )
    compiled = builder.finish(
        decode=lambda bits: bits,
        score=lambda bits: 0.0,
        feasible=lambda bits: True,
    )
    model = compiled.model
    n = compiled.num_variables
    assert len(slack) == model.num_variables - 2

    def min_energy(fixed_bits):
        best = None
        for mask in range(2 ** len(slack)):
            bits = list(fixed_bits)
            bits += [(mask >> k) & 1 for k in range(len(slack))]
            energy = model.energy(np.array(bits))
            best = energy if best is None else min(best, energy)
        return best

    assert n == 2 + len(slack)
    assert min_energy([0, 0]) == pytest.approx(0.0)
    assert min_energy([1, 0]) == pytest.approx(0.0)
    assert min_energy([0, 1]) == pytest.approx(0.0)
    # 2 + 3 = 5 > 3: no slack setting can cancel the penalty.
    assert min_energy([1, 1]) > 1.0


def test_builder_mode_guards():
    qubo_builder = ProblemBuilder("q", mode="qubo")
    qubo_builder.add_variable("x")
    with pytest.raises(ValueError, match="mode='ising'"):
        qubo_builder.add_field(0, 1.0)
    ising_builder = ProblemBuilder("i", mode="ising")
    ising_builder.add_variable("s")
    with pytest.raises(ValueError, match="mode='qubo'"):
        ising_builder.add_linear(0, 1.0)
    with pytest.raises(ValueError):
        ProblemBuilder("bad", mode="mixed")


def test_builder_ising_mode_accumulates_couplings():
    builder = ProblemBuilder("i", mode="ising")
    for i in range(3):
        builder.add_variable("s", i)
    builder.add_coupling(0, 1, -1.0)
    builder.add_coupling(1, 0, -0.5)
    builder.add_field(2, 0.25)
    model = builder.finish(
        decode=lambda bits: bits,
        score=lambda bits: 0.0,
        feasible=lambda bits: True,
    ).model
    assert model.j[(0, 1)] == pytest.approx(-1.5)
    assert model.h[2] == pytest.approx(0.25)


def test_builder_requires_variables():
    builder = ProblemBuilder("empty")
    with pytest.raises(ValueError, match="no variables"):
        builder.finish(decode=lambda b: b, score=lambda s: 0.0,
                       feasible=lambda s: True)
