"""Convergence diagnostics through the ``solve`` front door.

Every registered backend must emit the same uniform row schema into
``SolveResult.convergence`` when asked — explicitly via
``SolverConfig(convergence=True)``, or implicitly while an event
tracer is active.
"""

import pytest

from repro import telemetry
from repro.annealing import SimulatedAnnealingSolver
from repro.compile import SolverConfig, available_solvers, solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.telemetry.progress import PROGRESS_FIELDS

# 3 relations -> 9 QUBO variables, small enough for the statevector
# backends (qaoa/exact) that would be infeasible at tutorial scale.
SMOKE_CONFIG = SolverConfig(num_sweeps=40, num_reads=2, seed=3,
                            convergence=True)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.disable_tracing()
    yield
    telemetry.disable()
    telemetry.disable_tracing()


def _problem(seed=0):
    return JoinOrderQUBO(random_join_graph(3, "chain", seed=seed)).compile()


@pytest.mark.parametrize("name", sorted(available_solvers()))
def test_every_solver_emits_uniform_rows(name):
    result = solve(_problem(), solver=name, config=SMOKE_CONFIG)
    rows = result.convergence
    assert rows is not None and len(rows) >= 1
    for row in rows:
        assert tuple(row) == PROGRESS_FIELDS
        assert row["iteration"] >= 0
        assert row["best_energy"] is not None
    # best_energy is monotone non-increasing.
    bests = [row["best_energy"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(bests, bests[1:]))
    # Sample-space backends can never return a sample better than the
    # best energy seen mid-run (SA/SQA return *final* states, so the
    # traced best may be strictly lower).  QAOA rows carry optimizer
    # expectation values, which live on a different scale entirely.
    if name != "qaoa":
        assert bests[-1] <= result.energy + 1e-6
    assert result.provenance["convergence_rows"] == len(rows)


def test_convergence_off_by_default():
    config = SolverConfig(num_sweeps=40, num_reads=2, seed=3)
    result = solve(_problem(), solver="sa", config=config)
    assert result.convergence is None
    assert result.provenance["convergence_rows"] == 0


def test_convergence_false_wins_over_active_tracer():
    telemetry.enable_tracing()
    config = SolverConfig(num_sweeps=40, num_reads=2, seed=3,
                          convergence=False)
    result = solve(_problem(), solver="sa", config=config)
    assert result.convergence is None


def test_convergence_auto_on_under_tracing():
    tracer = telemetry.enable_tracing()
    config = SolverConfig(num_sweeps=40, num_reads=2, seed=3)
    result = solve(_problem(), solver="sa", config=config)
    assert result.convergence
    mirrored = [e for e in tracer.events()
                if e.get("cat") == "convergence"]
    assert len(mirrored) == len(result.convergence)


def test_convergence_does_not_change_results():
    config = SolverConfig(num_sweeps=40, num_reads=2, seed=3)
    plain = solve(_problem(), solver="sa", config=config)
    traced = solve(_problem(), solver="sa", config=SMOKE_CONFIG)
    assert traced.energy == plain.energy
    assert traced.samples.best_assignment.tolist() == \
        plain.samples.best_assignment.tolist()


def test_solver_instance_escape_hatch_gets_progress():
    instance = SimulatedAnnealingSolver(num_sweeps=40, num_reads=2, seed=3)
    result = solve(_problem(), solver=instance, config=SMOKE_CONFIG)
    assert result.convergence and len(result.convergence) >= 1
    # The temporary attachment is undone after the solve.
    assert instance.progress is None


def test_config_round_trips_and_validates_convergence():
    assert SolverConfig(convergence=True).to_dict()["convergence"] is True
    assert SolverConfig().to_dict()["convergence"] is None
    with pytest.raises(ValueError, match="convergence"):
        SolverConfig(convergence=1)
