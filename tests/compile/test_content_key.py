"""Regression tests for CompiledProblem.content_key — the digest the
solve service's result cache and request coalescer key on.

The contract: two compilations of the same instance hash equal (even
though their hook closures differ), the digest only sees canonical
term order and normalized float bytes, and it is stable across
interpreter runs regardless of ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.compile import CompiledProblem, ProblemBuilder, VariableRegistry
from repro.annealing import IsingModel, QUBO
from repro.db import JoinOrderQUBO, random_join_graph


def _registry(count):
    registry = VariableRegistry()
    for index in range(count):
        registry.add("x", index)
    return registry


def _wrap(model, name="toy"):
    return CompiledProblem(
        name=name,
        model=model,
        variables=_registry(model.num_variables
                            if isinstance(model, QUBO)
                            else model.num_spins),
        decode=lambda bits: bits,
        score=lambda solution: 0.0,
        feasible=lambda solution: True,
    )


def test_recompilation_hashes_equal_despite_distinct_hooks():
    graph = random_join_graph(5, "chain", seed=3)
    first = JoinOrderQUBO(graph).compile()
    second = JoinOrderQUBO(graph).compile()
    assert first.decode is not second.decode  # distinct closures...
    assert first.content_key() == second.content_key()  # ...same key


def test_term_insertion_order_is_canonicalized():
    forward = QUBO(3).add_linear(0, 1.5).add_quadratic(0, 2, -2.0) \
                     .add_quadratic(1, 2, 0.5)
    backward = QUBO(3).add_quadratic(2, 1, 0.5).add_quadratic(2, 0, -2.0) \
                      .add_linear(0, 1.5)
    assert _wrap(forward).content_key() == _wrap(backward).content_key()


def test_negative_zero_hashes_like_zero():
    plain = QUBO(2, offset=0.0).add_linear(0, 1.0)
    signed = QUBO(2, offset=-0.0).add_linear(0, 1.0)
    assert _wrap(plain).content_key() == _wrap(signed).content_key()


def test_explicit_zero_terms_hash_like_absent_terms():
    without = QUBO(2).add_linear(0, 1.0)
    with_zero = QUBO(2).add_linear(0, 1.0).add_quadratic(0, 1, 0.0)
    assert _wrap(without).content_key() == _wrap(with_zero).content_key()


def test_key_varies_with_every_semantic_input():
    base = _wrap(QUBO(2).add_linear(0, 1.0))
    renamed = _wrap(QUBO(2).add_linear(0, 1.0), name="other")
    coefficient = _wrap(QUBO(2).add_linear(0, 1.5))
    offset = _wrap(QUBO(2, offset=3.0).add_linear(0, 1.0))
    wider = _wrap(QUBO(3).add_linear(0, 1.0))
    keys = {problem.content_key()
            for problem in (base, renamed, coefficient, offset, wider)}
    assert len(keys) == 5


def test_model_kind_distinguishes_qubo_from_ising():
    qubo = _wrap(QUBO(2).add_linear(0, 1.0))
    ising = _wrap(IsingModel(2, h={0: 1.0}))
    assert qubo.content_key() != ising.content_key()


def test_metadata_is_excluded_from_the_key():
    builder = ProblemBuilder("toy")
    a = builder.add_variable("x", 0)
    builder.add_linear(a, 1.0)
    plain = builder.finish(decode=lambda bits: bits,
                           score=lambda s: 0.0,
                           feasible=lambda s: True)
    annotated = builder.finish(decode=lambda bits: bits,
                               score=lambda s: 0.0,
                               feasible=lambda s: True,
                               metadata={"note": "ignored"})
    assert plain.content_key() == annotated.content_key()


def test_key_is_stable_across_processes_and_hash_seeds():
    script = (
        "from repro.db import JoinOrderQUBO, random_join_graph;"
        "graph = random_join_graph(5, 'star', seed=11);"
        "print(JoinOrderQUBO(graph).compile().content_key())"
    )

    src = str(Path(__file__).resolve().parents[2] / "src")

    def run(hash_seed):
        env = {**os.environ, "PYTHONPATH": src,
               "PYTHONHASHSEED": hash_seed}
        return subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        ).stdout.strip()

    first, second = run("0"), run("4242")
    assert first == second
    assert len(first) == 64  # sha256 hexdigest
