"""The packed model buffer layout: exact round trips, insertion
order, version gating."""

import numpy as np
import pytest

from repro.annealing.ising import IsingModel
from repro.annealing.qubo import QUBO
from repro.compile.buffers import (
    BUFFER_LAYOUT_VERSION,
    pack_model,
    packed_nbytes,
    unpack_model,
    write_packed,
)
from repro.db import JoinOrderQUBO, random_join_graph


def roundtrip(model):
    meta, arrays = pack_model(model)
    buffer = bytearray(max(packed_nbytes(meta), 1))
    write_packed(meta, arrays, memoryview(buffer))
    return unpack_model(meta, memoryview(buffer))


def test_qubo_roundtrip_is_exact():
    model = QUBO(4, offset=1.25)
    model.add_linear(2, -0.75)
    model.add_linear(0, 3.5)
    model.add_quadratic(1, 3, 0.1)
    model.add_quadratic(0, 2, -2.25)
    clone = roundtrip(model)
    assert clone.num_variables == model.num_variables
    assert clone.offset == model.offset
    assert clone._coefficients == model._coefficients
    # Insertion order — not just dict equality — must survive, because
    # downstream float accumulation iterates in that order.
    assert (list(clone._coefficients.items())
            == list(model._coefficients.items()))


def test_ising_roundtrip_is_exact():
    model = IsingModel(3, offset=-0.5)
    model.h = {2: 0.25, 0: -1.0}
    model.j = {(0, 2): 0.125, (1, 2): -0.375}
    clone = roundtrip(model)
    assert clone.num_spins == model.num_spins
    assert clone.offset == model.offset
    assert list(clone.h.items()) == list(model.h.items())
    assert list(clone.j.items()) == list(model.j.items())


def test_roundtrip_preserves_energies_bit_for_bit():
    problem = JoinOrderQUBO(
        random_join_graph(5, "star", seed=3)).compile()
    model = problem.model
    clone = roundtrip(model)
    rng = np.random.default_rng(11)
    bits = rng.integers(0, 2, size=(16, model.num_variables))
    for row in bits:
        assert clone.energy(row) == model.energy(row)


def test_empty_model_roundtrip():
    clone = roundtrip(QUBO(3, offset=2.0))
    assert clone.num_variables == 3
    assert clone.offset == 2.0
    assert clone._coefficients == {}
    ising = roundtrip(IsingModel(2))
    assert ising.h == {} and ising.j == {}


def test_unpack_rejects_foreign_layout_version():
    meta, arrays = pack_model(QUBO(2))
    buffer = bytearray(max(packed_nbytes(meta), 1))
    write_packed(meta, arrays, memoryview(buffer))
    meta["layout_version"] = BUFFER_LAYOUT_VERSION + 1
    with pytest.raises(ValueError, match="layout"):
        unpack_model(meta, memoryview(buffer))


def test_pack_rejects_unknown_model_type():
    with pytest.raises(TypeError, match="pack_model supports"):
        pack_model(object())


def test_unpacked_model_owns_its_data():
    model = QUBO(2)
    model.add_linear(0, 1.5)
    meta, arrays = pack_model(model)
    buffer = bytearray(packed_nbytes(meta))
    write_packed(meta, arrays, memoryview(buffer))
    clone = unpack_model(meta, memoryview(buffer))
    buffer[:] = b"\x00" * len(buffer)  # segment closed / reused
    assert clone._coefficients == {(0, 0): 1.5}
