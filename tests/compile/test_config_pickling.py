"""Tests for SolverConfig's cross-process guarantees: the pickling
guard that fails fast before enqueue, and the convergence tri-state
that must be pinned parent-side before shipping to a worker."""

import pickle

import pytest

from repro.compile import SolverConfig
from repro.telemetry import disable_tracing, enable_tracing


def test_require_picklable_returns_self_for_plain_configs():
    config = SolverConfig(num_sweeps=100, num_reads=5, seed=3,
                          options={"beta_schedule": [0.1, 0.2]})
    assert config.require_picklable() is config


def test_require_picklable_names_the_offending_option_keys():
    config = SolverConfig(options={"hook": lambda: 0, "fine": 1.0})
    with pytest.raises(ValueError) as excinfo:
        config.require_picklable()
    message = str(excinfo.value)
    assert "unpicklable options" in message
    assert "'hook'" in message
    assert "'fine'" not in message


def test_config_pickle_round_trip_preserves_semantics():
    config = SolverConfig(num_sweeps=77, num_reads=3, seed=12,
                          convergence=True, options={"restarts": 2})
    restored = pickle.loads(pickle.dumps(config))
    assert restored.to_dict() == config.to_dict()
    assert restored.convergence_active() == config.convergence_active()


def test_resolve_convergence_keeps_explicit_settings():
    on = SolverConfig(convergence=True)
    off = SolverConfig(convergence=False)
    assert on.resolve_convergence() is on
    assert off.resolve_convergence() is off


def test_resolve_convergence_pins_auto_against_the_live_tracer():
    auto = SolverConfig(convergence=None)
    disable_tracing()
    try:
        assert auto.resolve_convergence().convergence is False
        enable_tracing()
        pinned = auto.resolve_convergence()
        assert pinned.convergence is True
        assert pinned is not auto  # a copy; the original stays tri-state
        assert auto.convergence is None
    finally:
        disable_tracing()
