"""``pipeline_service_parity``: warm-pool routing is bit-for-bit.

Routing a pipeline workload through a :class:`SolveService` warm pool
(PR 7's shared-memory dispatch + cross-job batch folding) must return
exactly the plans the in-process path produces — same orders, same
costs — with the routing visible in stage provenance.
"""

from repro.db.workloads import generate_join_workload
from repro.experiments.harness import run_pipeline
from repro.pipeline import JoinOrderFormulation, OptimizationPipeline
from repro.service import SolveService


def _solve_report(plan):
    return next(report for report in plan.provenance["stages"]
                if report["stage"] == "solve")


def test_pipeline_service_parity_workers_0_vs_2():
    workload = generate_join_workload(
        topologies=("chain", "star"), sizes=(4, 5),
        instances_per_cell=2, seed=0,
    )
    formulation = JoinOrderFormulation(polish=False)
    direct = run_pipeline(workload.graphs(), formulation, workers=0)
    pooled = run_pipeline(workload.graphs(), formulation, workers=2)
    assert len(direct) == len(pooled) == len(workload)
    for in_process, via_pool in zip(direct, pooled):
        assert in_process.status == via_pool.status == "ok"
        assert in_process.solution.order == via_pool.solution.order
        assert in_process.cost == via_pool.cost
        assert not _solve_report(in_process)["detail"].get(
            "via_service", False
        )
        assert _solve_report(via_pool)["detail"]["via_service"] is True


def test_pipeline_reuses_caller_provided_service():
    workload = generate_join_workload(
        topologies=("chain",), sizes=(4,), instances_per_cell=3, seed=1,
    )
    reference = OptimizationPipeline(
        "joinorder", solve="sa"
    ).optimize_workload(workload.graphs())
    with SolveService(max_workers=2, mode="process") as service:
        pipeline = OptimizationPipeline("joinorder", solve="sa",
                                        service=service)
        plans = pipeline.optimize_workload(workload.graphs())
        stats = service.stats()
    assert stats["pool"]["jobs_run"] >= len(workload)
    for got, want in zip(plans, reference):
        assert got.solution.order == want.solution.order
        assert got.cost == want.cost
        # The solver-side provenance records the service routing.
        assert got.provenance["solver"]["service"]["mode"] == "process"
