"""Pipeline parity and plan-assembly tests.

The load-bearing guarantee: every formulation routed through
``OptimizationPipeline`` produces bit-for-bit the same seeded solution
as the direct ``solve_*`` free function it refactors, because the
strategy dispatches the identical compiled problem at the identical
module default config.
"""

import json

import pytest

from repro.db.indexsel import (
    IndexSelectionProblem,
    solve_index_selection_annealing,
)
from repro.db.joinorder import solve_join_order_annealing
from repro.db.mqo import MQOProblem, solve_mqo_annealing
from repro.db.partitioning import PartitioningProblem, partition_annealing
from repro.db.txsched import (
    TransactionSchedulingProblem,
    minimum_slots_annealing,
    schedule_greedy_first_fit,
    solve_scheduling_annealing,
)
from repro.db.workloads import generate_join_workload, random_join_graph
from repro.pipeline import (
    OptimizationPipeline,
    TransactionSchedulingFormulation,
    available_formulations,
    validate_plan_document,
)


def test_registry_lists_all_five_formulations():
    assert sorted(available_formulations()) == [
        "indexsel", "joinorder", "mqo", "partitioning", "txsched",
    ]


def test_joinorder_parity_with_direct_solve():
    for seed in (0, 7, 21):
        graph = random_join_graph(5, "star", seed=seed)
        direct = solve_join_order_annealing(graph, polish=True)
        plan = OptimizationPipeline("joinorder").optimize(graph)
        assert plan.status == "ok"
        assert plan.solution.order == direct.order
        assert plan.cost == direct.cost


def test_mqo_parity_with_direct_solve():
    problem = MQOProblem.random(4, 3, seed=11)
    selection, cost = solve_mqo_annealing(problem)
    plan = OptimizationPipeline("mqo").optimize(problem)
    assert list(plan.solution) == list(selection)
    assert plan.cost == cost


def test_indexsel_parity_with_direct_solve():
    problem = IndexSelectionProblem.random(8, seed=3)
    selection, benefit = solve_index_selection_annealing(problem)
    plan = OptimizationPipeline("indexsel").optimize(problem)
    assert sorted(plan.solution) == sorted(selection)
    assert plan.estimates["benefit"] == benefit
    # Lower-is-better convention: cost is the negated benefit.
    assert plan.cost == -benefit


def test_txsched_fixed_slot_parity_with_direct_solve():
    problem = TransactionSchedulingProblem.random(
        8, num_objects=12, seed=5
    )
    for num_slots in (2, 3, 4):
        direct = solve_scheduling_annealing(problem, num_slots)
        plan = OptimizationPipeline(
            TransactionSchedulingFormulation(num_slots=num_slots)
        ).optimize(problem)
        assert list(plan.solution) == list(direct)


def test_txsched_minimum_slots_scan_parity():
    """The E11 scan (per-k pipelines, greedy fallback) reproduces
    ``minimum_slots_annealing`` exactly."""
    problem = TransactionSchedulingProblem.random(
        8, num_objects=12, seed=5
    )
    direct = minimum_slots_annealing(problem)
    greedy = schedule_greedy_first_fit(problem)
    annealed = greedy
    for k in range(1, problem.makespan(greedy) + 1):
        plan = OptimizationPipeline(
            TransactionSchedulingFormulation(num_slots=k)
        ).optimize(problem)
        if plan.feasible:
            annealed = plan.solution
            break
    assert list(annealed) == list(direct)


def test_partitioning_parity_with_direct_solve():
    problem = PartitioningProblem.random(10, seed=9)
    direct = partition_annealing(problem)
    plan = OptimizationPipeline("partitioning").optimize(problem)
    assert list(plan.solution) == list(direct)


@pytest.mark.parametrize("name,instance", [
    ("joinorder", random_join_graph(4, "chain", seed=1)),
    ("mqo", MQOProblem.random(3, 2, seed=1)),
    ("indexsel", IndexSelectionProblem.random(6, seed=1)),
    ("txsched",
     TransactionSchedulingProblem.random(6, num_objects=8, seed=1)),
    ("partitioning", PartitioningProblem.random(8, seed=1)),
])
def test_classical_arm_assembles_ok_plan(name, instance):
    plan = OptimizationPipeline(name, solve="classical").optimize(
        instance
    )
    assert plan.status == "ok"
    assert plan.solver == "classical"
    assert plan.feasible
    assert "cost" in plan.estimates
    # The formulation stage is skipped — no QUBO is compiled.
    stages = {report["stage"]: report
              for report in plan.provenance["stages"]}
    assert stages["formulation"]["status"] == "skipped"
    assert validate_plan_document(plan.to_dict()) == []


def test_plan_document_round_trips_through_json():
    graph = random_join_graph(4, "star", seed=2)
    plan = OptimizationPipeline("joinorder").optimize(graph)
    document = json.loads(plan.to_json())
    assert validate_plan_document(document) == []
    assert document["schema"] == "repro-pipeline/v1"
    assert document["formulation"] == "joinorder"
    assert document["status"] == "ok"
    stage_names = [report["stage"]
                   for report in document["provenance"]["stages"]]
    assert stage_names == ["pre_check", "formulation", "solve",
                           "assembly"]
    assert document["convergence_rows"] >= 0


def test_optimize_workload_matches_per_instance_optimize():
    workload = generate_join_workload(
        topologies=("chain", "star"), sizes=(4,),
        instances_per_cell=2, seed=0,
    )
    pipeline = OptimizationPipeline("joinorder")
    batch = pipeline.optimize_workload(workload.graphs())
    singles = [pipeline.optimize(graph) for graph in workload.graphs()]
    assert len(batch) == len(workload)
    for got, want in zip(batch, singles):
        assert got.solution.order == want.solution.order
        assert got.cost == want.cost


def test_workload_provenance_tags_each_plan():
    workload = generate_join_workload(
        topologies=("chain",), sizes=(4,), instances_per_cell=2, seed=0,
    )
    plans = OptimizationPipeline("joinorder").optimize_workload(
        workload.graphs(),
        provenance={"workload_key": workload.workload_key},
    )
    for index, plan in enumerate(plans):
        assert plan.provenance["workload_key"] == workload.workload_key
        assert plan.provenance["workload_index"] == index
