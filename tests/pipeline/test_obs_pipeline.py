"""Pipeline-layer observability: stage metrics, trace contexts, and
the end-to-end ``obs-report`` acceptance path.

The acceptance criterion for the correlated-observability stack: one
``trace_id`` minted at pipeline entry is queryable end-to-end —
``obs-report <trace_id>`` reconstructs queue wait, dispatch kind,
per-stage timings and convergence for a job that went through
``OptimizationPipeline`` + ``SolveService`` at ``workers=2``.
"""

import pytest

from repro.db.workloads import random_join_graph
from repro.pipeline import OptimizationPipeline
from repro.service import SolveService
from repro.telemetry import context as context_mod
from repro.telemetry import metrics as metrics_mod
from repro.telemetry import obs_report as obs_mod
from repro.telemetry import trace as trace_mod


@pytest.fixture(autouse=True)
def _clean_layers():
    yield
    context_mod.disable_context()
    metrics_mod.disable_metrics()
    trace_mod.disable_tracing()


def graphs(count=3, relations=5):
    return [random_join_graph(relations, "chain", seed=seed)
            for seed in range(count)]


def test_stage_histogram_labeled_by_stage_and_formulation():
    registry = metrics_mod.enable_metrics()
    plan = OptimizationPipeline("joinorder").optimize(graphs(1)[0])
    assert plan.status == "ok"
    entry = registry.snapshot()["histograms"]["pipeline_stage_seconds"]
    assert entry["labelnames"] == ["stage", "formulation"]
    observed = {series["labels"]["stage"] for series in entry["series"]}
    assert observed == {"pre_check", "formulation", "solve", "assembly"}
    for series in entry["series"]:
        assert series["labels"]["formulation"] == "joinorder"
        assert series["count"] == 1
        assert series["sum"] >= 0


def test_stage_histogram_counts_failed_stage_too():
    registry = metrics_mod.enable_metrics()
    plan = OptimizationPipeline("mqo").optimize(graphs(1)[0])
    assert plan.status != "ok"  # join graph is not an MQO instance
    entry = registry.snapshot()["histograms"]["pipeline_stage_seconds"]
    stages = {series["labels"]["stage"]: series["count"]
              for series in entry["series"]}
    # The failing run still accounts for the stages it reached.
    assert stages.get("pre_check", 0) >= 1 or \
        stages.get("formulation", 0) >= 1


def test_trace_id_in_provenance_only_when_context_enabled():
    graph = graphs(1)[0]
    off = OptimizationPipeline("joinorder").optimize(graph)
    assert "trace_id" not in off.provenance
    context_mod.enable_context()
    on = OptimizationPipeline("joinorder").optimize(graph)
    assert len(on.provenance["trace_id"]) == 16
    # Observability never touches the answer.
    assert on.solution.order == off.solution.order
    assert on.cost == off.cost


def test_workload_plans_get_distinct_trace_ids():
    context_mod.enable_context()
    plans = OptimizationPipeline("joinorder").optimize_workload(graphs(3))
    trace_ids = [plan.provenance["trace_id"] for plan in plans]
    assert len(set(trace_ids)) == 3


def test_obs_report_end_to_end_through_service(tmp_path, capsys):
    context_mod.enable_context()
    tracer = trace_mod.enable_tracing(sample_memory=False)
    with SolveService(max_workers=2) as service:
        pipeline = OptimizationPipeline("joinorder", service=service)
        plans = pipeline.optimize_workload(graphs(3))
    assert all(plan.status == "ok" for plan in plans)
    baseline = OptimizationPipeline("joinorder").optimize_workload(
        graphs(3))
    for plan, direct in zip(plans, baseline):
        assert plan.solution.order == direct.solution.order
        assert plan.cost == direct.cost

    trace_path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(trace_path))

    # Pipeline provenance and service provenance agree on the id.
    trace_id = plans[0].provenance["trace_id"]
    assert plans[0].provenance["solver"]["service"]["trace_id"] \
        == trace_id

    # The acceptance criterion: obs-report reconstructs the job's
    # whole journey from just the trace file and the trace_id.
    assert obs_mod.main([str(trace_path), trace_id]) == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id}" in out
    assert "queue wait:" in out
    assert "dispatch:" in out
    assert "pipeline stages:" in out
    for stage in ("pre_check", "formulation", "solve", "assembly"):
        assert stage in out
