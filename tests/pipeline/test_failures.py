"""Failure-path tests: rejection reasons, raising stages, unknown names.

The pipeline's contract under failure: nothing propagates out of
``optimize`` — a failing pre-check yields a ``rejected`` plan naming
every violated predicate, a raising formulation/solver yields an
``infeasible`` plan carrying the error in stage provenance, and
unknown strategy names raise immediately at construction listing the
registered alternatives.
"""

import dataclasses

import pytest

from repro.db.indexsel import IndexSelectionProblem
from repro.db.mqo import MQOProblem
from repro.db.workloads import random_join_graph
from repro.pipeline import (
    JoinOrderFormulation,
    OptimizationPipeline,
    PreCheck,
    validate_plan_document,
)


def test_wrong_instance_type_is_rejected_with_named_predicate():
    plan = OptimizationPipeline("joinorder").optimize(
        MQOProblem.random(3, 2, seed=0)
    )
    assert plan.status == "rejected"
    assert plan.solution is None and plan.cost is None
    report = plan.provenance["stages"][0]
    assert report["stage"] == "pre_check"
    assert report["status"] == "rejected"
    failures = report["detail"]["failures"]
    assert [f["check"] for f in failures] == ["joinorder.instance_type"]
    assert "expects a JoinGraph" in failures[0]["reason"]
    # A rejected plan is still a valid serializable document.
    assert validate_plan_document(plan.to_dict()) == []


def test_budget_infeasible_rejection_is_actionable():
    problem = IndexSelectionProblem.random(5, seed=0)
    assert min(problem.sizes) > 1
    starved = dataclasses.replace(problem,
                                  budget=min(problem.sizes) - 1)
    plan = OptimizationPipeline("indexsel").optimize(starved)
    assert plan.status == "rejected"
    failures = plan.provenance["stages"][0]["detail"]["failures"]
    assert [f["check"] for f in failures] == ["indexsel.budget_feasible"]
    assert "raise the budget" in failures[0]["reason"]


def test_max_variables_cap_rejects_large_instances():
    graph = random_join_graph(6, "chain", seed=0)
    plan = OptimizationPipeline(
        JoinOrderFormulation(max_variables=10)
    ).optimize(graph)
    assert plan.status == "rejected"
    failures = plan.provenance["stages"][0]["detail"]["failures"]
    assert [f["check"] for f in failures] == ["joinorder.max_variables"]


def test_rejection_lists_every_failing_predicate():
    """All predicates run even after the first failure."""
    always = PreCheck().add(
        "custom.always_fails", lambda instance: "nope"
    )
    plan = OptimizationPipeline(
        JoinOrderFormulation(max_variables=10), pre_check=always
    ).optimize(random_join_graph(6, "chain", seed=0))
    assert plan.status == "rejected"
    failures = plan.provenance["stages"][0]["detail"]["failures"]
    assert {f["check"] for f in failures} == {
        "joinorder.max_variables", "custom.always_fails",
    }


def test_raising_formulation_marks_plan_infeasible_with_provenance():
    class BrokenFormulation(JoinOrderFormulation):
        name = "broken"

        def compile(self, graph):
            raise RuntimeError("compiler exploded")

    plan = OptimizationPipeline(BrokenFormulation()).optimize(
        random_join_graph(4, "chain", seed=0)
    )
    assert plan.status == "infeasible"
    report = plan.provenance["stages"][-1]
    assert report["stage"] == "formulation"
    assert report["status"] == "error"
    assert report["detail"]["error_type"] == "RuntimeError"
    assert "compiler exploded" in report["detail"]["error"]
    assert validate_plan_document(plan.to_dict()) == []


def test_raising_predicate_becomes_a_failure_not_an_exception():
    def bad_predicate(instance):
        raise ValueError("predicate bug")

    plan = OptimizationPipeline(
        "joinorder",
        pre_check=PreCheck().add("custom.buggy", bad_predicate),
    ).optimize(random_join_graph(4, "chain", seed=0))
    assert plan.status == "rejected"
    failures = plan.provenance["stages"][0]["detail"]["failures"]
    assert failures[0]["check"] == "custom.buggy"
    assert "check raised ValueError" in failures[0]["reason"]


def test_unknown_formulation_name_lists_alternatives():
    with pytest.raises(ValueError) as excinfo:
        OptimizationPipeline("nonesuch")
    message = str(excinfo.value)
    assert "unknown formulation 'nonesuch'" in message
    for name in ("indexsel", "joinorder", "mqo", "partitioning",
                 "txsched"):
        assert name in message


def test_unknown_solver_name_lists_alternatives():
    with pytest.raises(ValueError) as excinfo:
        OptimizationPipeline("joinorder", solve="nonesuch")
    message = str(excinfo.value)
    assert "unknown solver 'nonesuch'" in message
    assert "sa" in message
    assert "classical" in message
