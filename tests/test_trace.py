"""Tests for repro.telemetry.trace: the event tracer and its exports."""

import json
import threading
import time
from collections import defaultdict

import numpy as np
import pytest

from repro import telemetry
from repro.quantum import Circuit, StatevectorSimulator
from repro.quantum.statevector import apply_matrix
from repro.telemetry.progress import (
    MAX_PROGRESS_ROWS,
    PROGRESS_FIELDS,
    ProgressTrace,
)
from repro.telemetry.trace import Tracer


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing and telemetry off."""
    telemetry.disable()
    telemetry.disable_tracing()
    yield
    telemetry.disable()
    telemetry.disable_tracing()


# -- enable/disable ----------------------------------------------------
def test_disabled_by_default():
    assert telemetry.get_tracer() is None
    assert not telemetry.is_tracing()
    telemetry.trace_instant("x")  # safe no-op while disabled


def test_enable_disable_cycle():
    tracer = telemetry.enable_tracing()
    assert telemetry.is_tracing()
    assert telemetry.get_tracer() is tracer
    telemetry.trace_instant("marker")
    assert tracer.event_count == 1
    telemetry.disable_tracing()
    assert telemetry.get_tracer() is None
    telemetry.trace_instant("dropped")
    assert tracer.event_count == 1


# -- event recording ---------------------------------------------------
def test_begin_end_pairing():
    tracer = Tracer(sample_memory=False)
    with tracer.span("outer"):
        with tracer.span("inner", category="custom"):
            tracer.instant("tick")
    events = tracer.events()
    phases = [(e["ph"], e["name"]) for e in events]
    assert phases == [
        ("B", "outer"), ("B", "inner"), ("I", "tick"),
        ("E", "inner"), ("E", "outer"),
    ]
    inner = [e for e in events if e["name"] == "inner"]
    assert all(e["cat"] == "custom" for e in inner)
    tick = next(e for e in events if e["ph"] == "I")
    assert tick["s"] == "t"


def test_complete_event_has_duration():
    tracer = Tracer(sample_memory=False)
    start = tracer.timestamp_us()
    time.sleep(0.002)
    tracer.complete("work", start, category="gate", args={"qubits": [0]})
    (event,) = tracer.events()
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(start)
    assert event["dur"] >= 1_000.0  # at least 1ms in microseconds
    assert event["args"] == {"qubits": [0]}


def test_ring_buffer_bounds_memory_and_counts_drops():
    tracer = Tracer(max_events=10, sample_memory=False)
    for index in range(25):
        tracer.instant(f"e{index}")
    assert tracer.event_count == 10
    assert tracer.dropped_events == 15
    names = [e["name"] for e in tracer.events()]
    assert names == [f"e{i}" for i in range(15, 25)]  # oldest dropped
    document = tracer.to_chrome_trace()
    assert document["metadata"]["dropped_events"] == 15
    tracer.clear()
    assert tracer.event_count == 0
    assert tracer.dropped_events == 0


def test_counter_events():
    tracer = Tracer(sample_memory=False)
    tracer.counter("load", {"queue": 3.0})
    (event,) = tracer.events()
    assert event["ph"] == "C"
    assert event["args"] == {"queue": 3.0}


# -- exports -----------------------------------------------------------
def test_chrome_trace_structure_and_monotonic_ts(tmp_path):
    tracer = Tracer(sample_memory=False)
    with tracer.span("run"):
        for index in range(5):
            tracer.instant(f"step{index}")
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path), metadata={"run": "test"})
    document = json.loads(path.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert document["metadata"]["run"] == "test"
    events = document["traceEvents"]
    assert events[0]["ph"] == "M"  # process_name metadata first
    payload = [e for e in events if e["ph"] != "M"]
    timestamps = [e["ts"] for e in payload]
    assert timestamps == sorted(timestamps)
    for event in payload:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)


def test_jsonl_export_round_trips():
    tracer = Tracer(sample_memory=False)
    tracer.instant("a")
    tracer.instant("b", args={"k": 1})
    lines = tracer.to_jsonl().splitlines()
    parsed = [json.loads(line) for line in lines]
    assert [p["name"] for p in parsed] == ["a", "b"]
    assert parsed[1]["args"] == {"k": 1}


def test_memory_counter_events_at_span_boundaries():
    tracer = Tracer(sample_memory=True)
    with tracer.span("outer"):
        pass
    memory = [e for e in tracer.events() if e["name"] == "memory"]
    assert memory, "expected at least one memory sample"
    assert memory[0]["ph"] == "C"
    assert memory[0]["args"]["peak_rss_kb"] > 0


def test_memory_sampling_is_throttled():
    tracer = Tracer(sample_memory=True)
    for _ in range(200):  # hammer span boundaries back to back
        with tracer.span("tight"):
            pass
    memory = [e for e in tracer.events() if e["name"] == "memory"]
    # 400 boundaries in well under a second can produce only a handful
    # of samples at one-per-millisecond throttling.
    assert len(memory) < 100


# -- collector span mirroring ------------------------------------------
def test_collector_spans_mirror_onto_timeline():
    collector = telemetry.enable()
    tracer = telemetry.enable_tracing(sample_memory=False)
    with collector.span("experiment"):
        with collector.span("solver"):
            pass
    phases = [(e["ph"], e["name"]) for e in tracer.events()]
    assert phases == [
        ("B", "experiment"), ("B", "solver"),
        ("E", "solver"), ("E", "experiment"),
    ]
    begin = next(e for e in tracer.events() if e["name"] == "solver"
                 and e["ph"] == "B")
    assert begin["args"]["path"] == "experiment/solver"


def test_disable_between_enter_and_exit_keeps_pairs():
    collector = telemetry.enable()
    tracer = telemetry.enable_tracing(sample_memory=False)
    handle = collector.span("pinned")
    handle.__enter__()
    telemetry.disable_tracing()  # mid-span disable
    handle.__exit__(None, None, None)
    phases = [e["ph"] for e in tracer.events()]
    assert phases == ["B", "E"]  # the pinned tracer still got the E


def test_telemetry_span_tracer_only():
    tracer = telemetry.enable_tracing(sample_memory=False)
    assert telemetry.get_collector() is None
    with telemetry.span("bare"):
        pass
    phases = [(e["ph"], e["name"]) for e in tracer.events()]
    assert phases == [("B", "bare"), ("E", "bare")]


# -- simulator gate events ---------------------------------------------
def test_simulator_emits_per_gate_events():
    tracer = telemetry.enable_tracing(sample_memory=False)
    qc = Circuit(2).h(0).cx(0, 1)
    StatevectorSimulator(seed=0).run(qc)
    gates = [e for e in tracer.events() if e["cat"] == "gate"]
    assert [g["name"] for g in gates] == ["gate.h", "gate.cx"]
    assert gates[1]["args"]["qubits"] == [0, 1]
    assert all(g["ph"] == "X" for g in gates)


def test_run_batch_emits_per_position_events():
    tracer = telemetry.enable_tracing(sample_memory=False)
    circuits = [Circuit(2).h(0).rz(0.1 * i, 1) for i in range(4)]
    StatevectorSimulator(seed=0).run_batch(circuits)
    batched = [e for e in tracer.events() if e["cat"] == "gate_batch"]
    assert [b["name"] for b in batched] == ["gate_batch.h",
                                           "gate_batch.rz"]
    assert all(b["args"]["batch"] == 4 for b in batched)


def test_simulator_results_identical_with_tracing():
    qc = Circuit(3).h(0).cx(0, 1).rzz(0.4, 1, 2)
    plain = StatevectorSimulator(seed=0).run(qc)
    telemetry.enable_tracing(sample_memory=False)
    traced = StatevectorSimulator(seed=0).run(qc)
    np.testing.assert_array_equal(plain, traced)


# -- ProgressTrace -----------------------------------------------------
def test_progress_trace_uniform_rows():
    progress = ProgressTrace(label="sa")
    progress.record(iteration=0, best_energy=1.5)
    progress.record(iteration=1, best_energy=1.0, current_energy=1.2,
                    acceptance_rate=0.5, schedule_value=0.1)
    rows = progress.rows()
    assert len(progress) == 2
    assert all(set(row) == set(PROGRESS_FIELDS) for row in rows)
    assert rows[0]["acceptance_rate"] is None
    assert rows[1]["schedule_value"] == 0.1
    assert progress.best_energy == 1.0


def test_progress_trace_bounded():
    progress = ProgressTrace(max_rows=5)
    for index in range(9):
        progress.record(iteration=index, best_energy=-float(index))
    assert len(progress) == 5
    assert progress.truncated == 4


def test_progress_trace_mirrors_instant_events():
    tracer = telemetry.enable_tracing(sample_memory=False)
    progress = ProgressTrace(label="sa")
    progress.record(iteration=0, best_energy=-1.0)
    (event,) = tracer.events()
    assert event["name"] == "convergence.sa"
    assert event["cat"] == "convergence"
    assert event["args"]["best_energy"] == -1.0


# -- thread isolation (satellite) --------------------------------------
def test_concurrent_spans_stay_consistent():
    """Span events from many threads interleave without corruption:
    every thread's B/E sequence is properly nested and the export is
    globally ts-sorted."""
    tracer = telemetry.enable_tracing(sample_memory=False)
    collector = telemetry.enable()
    errors = []

    def worker(worker_id):
        try:
            for index in range(50):
                with collector.span(f"w{worker_id}"):
                    with collector.span("inner"):
                        pass
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    events = tracer.events()
    assert len(events) == 4 * 50 * 4  # 2 spans x (B+E) per iteration
    timestamps = [e["ts"] for e in events]
    assert timestamps == sorted(timestamps)
    per_thread = defaultdict(list)
    for event in events:
        per_thread[event["tid"]].append(event)
    # Thread idents may be reused by non-overlapping threads, so there
    # are between 1 and 4 distinct tids; nesting must hold for each.
    assert 1 <= len(per_thread) <= 4
    for thread_events in per_thread.values():
        stack = []
        for event in thread_events:
            if event["ph"] == "B":
                stack.append(event["name"])
            elif event["ph"] == "E":
                assert stack.pop() == event["name"]
        assert not stack


def test_concurrent_enable_disable_never_crashes():
    """Flipping tracing on/off while other threads emit events must
    never raise — the pinned-reference pattern guarantees it."""
    collector = telemetry.enable()
    errors = []
    stop = threading.Event()

    def toggler():
        try:
            while not stop.is_set():
                telemetry.enable_tracing(sample_memory=False)
                telemetry.disable_tracing()
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def emitter():
        try:
            while not stop.is_set():
                with collector.span("work"):
                    telemetry.trace_instant("tick")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=toggler),
               threading.Thread(target=emitter),
               threading.Thread(target=emitter)]
    for thread in threads:
        thread.start()
    time.sleep(0.2)
    stop.set()
    for thread in threads:
        thread.join()
    assert not errors


# -- disabled overhead (satellite) -------------------------------------
def test_disabled_tracer_overhead_is_small():
    """With tracing (and telemetry) disabled the instrumented simulator
    must stay close to a raw apply loop — same budget as the collector
    overhead guard in test_telemetry.py."""
    qc = Circuit(6)
    for layer in range(6):
        for q in range(6):
            qc.ry(0.3 * (layer + 1), q)
        for q in range(5):
            qc.cx(q, q + 1)
    sim = StatevectorSimulator(seed=0)
    n = qc.num_qubits

    def raw_run():
        state = np.zeros(2 ** n, dtype=complex)
        state[0] = 1.0
        for inst in qc.instructions:
            state = apply_matrix(state, inst.matrix(), inst.qubits, n)
        return state

    def timed(function, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            function()
            best = min(best, time.perf_counter() - start)
        return best

    raw_run()
    sim.run(qc)
    assert telemetry.get_tracer() is None
    assert telemetry.get_collector() is None
    baseline = timed(raw_run)
    instrumented = timed(lambda: sim.run(qc))
    assert instrumented <= baseline * 1.5 + 1e-3


def test_progress_rows_capped_constant():
    assert MAX_PROGRESS_ROWS == 10_000
