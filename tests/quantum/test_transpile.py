"""Tests for the circuit optimization passes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    Circuit,
    Parameter,
    StatevectorSimulator,
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
    random_layered_circuit,
    remove_identities,
)

SIM = StatevectorSimulator()


def _equivalent(a: Circuit, b: Circuit) -> bool:
    return np.allclose(SIM.run(a), SIM.run(b), atol=1e-10)


# ----------------------------------------------------------------------
# remove_identities
# ----------------------------------------------------------------------
def test_removes_identity_gates():
    qc = Circuit(2).i(0).h(1).i(1)
    out = remove_identities(qc)
    assert [inst.name for inst in out] == ["h"]


def test_removes_zero_angle_rotations():
    qc = Circuit(1).rx(0.0, 0).ry(0.5, 0).rz(2 * math.pi, 0)
    out = remove_identities(qc)
    assert [inst.name for inst in out] == ["ry"]


def test_keeps_symbolic_rotations():
    qc = Circuit(1).rx(Parameter("t"), 0)
    assert len(remove_identities(qc)) == 1


# ----------------------------------------------------------------------
# merge_rotations
# ----------------------------------------------------------------------
def test_merges_adjacent_same_axis_rotations():
    qc = Circuit(1).rx(0.3, 0).rx(0.4, 0)
    out = merge_rotations(qc)
    assert len(out) == 1
    assert out.instructions[0].params[0] == pytest.approx(0.7)


def test_merge_drops_full_period():
    qc = Circuit(1).rx(math.pi, 0).rx(math.pi, 0)
    assert len(merge_rotations(qc)) == 0


def test_merge_respects_axis_boundaries():
    qc = Circuit(1).rx(0.3, 0).ry(0.4, 0).rx(0.2, 0)
    assert len(merge_rotations(qc)) == 3


def test_merge_respects_qubit_boundaries():
    qc = Circuit(2).rx(0.3, 0).rx(0.4, 1)
    assert len(merge_rotations(qc)) == 2


def test_merge_chains_through_runs():
    qc = Circuit(1).rz(0.1, 0).rz(0.2, 0).rz(0.3, 0)
    out = merge_rotations(qc)
    assert len(out) == 1
    assert out.instructions[0].params[0] == pytest.approx(0.6)


def test_merge_two_qubit_rotations():
    qc = Circuit(2).rzz(0.3, 0, 1).rzz(0.4, 0, 1)
    out = merge_rotations(qc)
    assert len(out) == 1
    assert out.instructions[0].params[0] == pytest.approx(0.7)


def test_merge_symbolic_acts_as_barrier():
    theta = Parameter("t")
    qc = Circuit(1).rx(0.3, 0).rx(theta, 0).rx(0.4, 0)
    assert len(merge_rotations(qc)) == 3


# ----------------------------------------------------------------------
# cancel_adjacent_inverses
# ----------------------------------------------------------------------
def test_cancels_adjacent_hadamards():
    qc = Circuit(1).h(0).h(0)
    assert len(cancel_adjacent_inverses(qc)) == 0


def test_cancellation_cascades():
    qc = Circuit(1).h(0).x(0).x(0).h(0)
    assert len(cancel_adjacent_inverses(qc)) == 0


def test_cancels_cnot_pairs():
    qc = Circuit(2).cx(0, 1).cx(0, 1)
    assert len(cancel_adjacent_inverses(qc)) == 0


def test_does_not_cancel_reversed_cnot():
    qc = Circuit(2).cx(0, 1).cx(1, 0)
    assert len(cancel_adjacent_inverses(qc)) == 2


def test_conservative_with_interleaving_gate():
    qc = Circuit(2).h(0).x(1).h(0)
    # x on qubit 1 commutes with h on 0, but the pass is conservative.
    assert len(cancel_adjacent_inverses(qc)) == 3


# ----------------------------------------------------------------------
# optimize_circuit (pipeline)
# ----------------------------------------------------------------------
def test_pipeline_shrinks_and_preserves_semantics():
    qc = Circuit(2)
    qc.h(0).h(0).rx(0.3, 1).rx(-0.3, 1).i(0).x(0).x(0)
    qc.cx(0, 1).cx(0, 1).ry(0.5, 0)
    out = optimize_circuit(qc)
    assert len(out) == 1
    assert _equivalent(qc, out)


def test_pipeline_rejects_zero_passes():
    with pytest.raises(ValueError):
        optimize_circuit(Circuit(1), passes=0)


def test_pipeline_idempotent():
    qc = Circuit(2).h(0).rx(0.2, 0).rx(0.2, 0).cx(0, 1)
    once = optimize_circuit(qc)
    twice = optimize_circuit(once)
    assert [i.name for i in once] == [i.name for i in twice]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_property_optimization_preserves_unitary(seed):
    qc = random_layered_circuit(3, 4, seed=seed)
    out = optimize_circuit(qc)
    assert _equivalent(qc, out)
    assert len(out) <= len(qc)
