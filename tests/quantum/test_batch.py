"""Tests for the batched execution engine.

The load-bearing property: every batched path is numerically identical
(within 1e-10, usually exact) to the sequential per-circuit path it
replaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.quantum import (
    Circuit,
    StatevectorSimulator,
    apply_diagonal_batch,
    apply_matrix,
    apply_matrix_batch,
    random_layered_circuit,
)
from repro.quantum.gates import (
    DIAGONAL_GATES,
    GATE_ARITY,
    GATE_NUM_PARAMS,
    batch_gate_diagonal,
    batch_gate_matrix,
    gate_diagonal,
    gate_matrix,
)

SIM = StatevectorSimulator(seed=3)


def random_states(batch, num_qubits, seed):
    rng = np.random.default_rng(seed)
    raw = (rng.normal(size=(batch, 2 ** num_qubits))
           + 1j * rng.normal(size=(batch, 2 ** num_qubits)))
    return raw / np.linalg.norm(raw, axis=1, keepdims=True)


def iqp_like_circuit(params):
    """Structurally fixed circuit mixing diagonal and dense gates."""
    qc = Circuit(4)
    for q in range(4):
        qc.h(q)
    for q in range(4):
        qc.rz(float(params[q]), q)
    qc.rzz(float(params[0] * params[1]), 0, 1)
    qc.rzz(float(params[2] * params[3]), 2, 3)
    qc.ry(float(params[1]), 2)
    qc.cx(0, 3)
    qc.crz(float(params[2]), 3, 1)
    qc.cp(float(params[3]), 1, 0)
    qc.u3(float(params[0]), float(params[1]), float(params[2]), 3)
    return qc


# ----------------------------------------------------------------------
# Gate-level helpers
# ----------------------------------------------------------------------
def test_gate_matrix_is_cached_and_read_only():
    a = gate_matrix("rx", [0.3])
    b = gate_matrix("rx", [0.3])
    assert a is b
    with pytest.raises(ValueError):
        a[0, 0] = 2.0


def test_diagonal_gates_really_are_diagonal():
    rng = np.random.default_rng(0)
    for name in sorted(DIAGONAL_GATES):
        params = rng.uniform(-3, 3, size=GATE_NUM_PARAMS[name])
        matrix = gate_matrix(name, params)
        assert np.allclose(matrix, np.diag(np.diagonal(matrix))), name
        assert np.allclose(gate_diagonal(name, params),
                           np.diagonal(matrix)), name


def test_gate_diagonal_none_for_dense_gates():
    assert gate_diagonal("h") is None
    assert gate_diagonal("rx", [0.1]) is None


def test_batch_gate_diagonal_matches_scalar():
    thetas = np.array([-1.3, 0.0, 0.7, 2.9])
    for name in ("rz", "p", "cp", "crz", "rzz"):
        stacked = batch_gate_diagonal(name, thetas)
        assert stacked.shape == (4, 2 ** GATE_ARITY[name])
        for row, theta in zip(stacked, thetas):
            assert np.allclose(row, gate_diagonal(name, [theta])), name


def test_batch_gate_matrix_matches_scalar():
    thetas = np.array([[-0.4], [1.1], [2.2]])
    for name in ("rx", "ry", "rz", "rxx", "crx", "p"):
        stacked = batch_gate_matrix(name, thetas)
        for row, theta in zip(stacked, thetas[:, 0]):
            assert np.allclose(row, gate_matrix(name, [theta])), name


# ----------------------------------------------------------------------
# apply_matrix_batch / apply_diagonal_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("qubits", [(0,), (2,), (0, 1), (2, 0), (1, 3)])
def test_apply_matrix_batch_matches_sequential(qubits):
    states = random_states(5, 4, seed=1)
    matrix = gate_matrix("rxx", [0.8]) if len(qubits) == 2 \
        else gate_matrix("ry", [0.8])
    batched = apply_matrix_batch(states, matrix, qubits, 4)
    for row_in, row_out in zip(states, batched):
        assert np.allclose(row_out, apply_matrix(row_in, matrix, qubits, 4),
                           atol=1e-12)


def test_apply_matrix_batch_per_element_stack():
    states = random_states(3, 3, seed=2)
    thetas = np.array([[0.1], [0.9], [-2.0]])
    stack = batch_gate_matrix("ry", thetas)
    batched = apply_matrix_batch(states, stack, (1,), 3)
    for row_in, row_out, theta in zip(states, batched, thetas[:, 0]):
        expected = apply_matrix(row_in, gate_matrix("ry", [theta]), (1,), 3)
        assert np.allclose(row_out, expected, atol=1e-12)


@pytest.mark.parametrize("qubits", [(1,), (2, 0), (0, 2)])
def test_apply_diagonal_batch_matches_dense(qubits):
    states = random_states(4, 3, seed=3)
    name = "rz" if len(qubits) == 1 else "rzz"
    thetas = np.array([0.3, -1.1, 2.2, 0.0])
    diag = batch_gate_diagonal(name, thetas)
    batched = apply_diagonal_batch(states, diag, qubits, 3)
    for row_in, row_out, theta in zip(states, batched, thetas):
        expected = apply_matrix(row_in, gate_matrix(name, [theta]),
                                qubits, 3)
        assert np.allclose(row_out, expected, atol=1e-12)


def test_apply_batch_validates_shapes():
    states = random_states(2, 2, seed=4)
    with pytest.raises(ValueError):
        apply_matrix_batch(states[0], gate_matrix("h"), (0,), 2)
    with pytest.raises(ValueError):
        apply_matrix_batch(states, np.zeros((3, 2, 2)), (0,), 2)
    with pytest.raises(ValueError):
        apply_diagonal_batch(states, np.zeros((3, 2)), (0,), 2)


# ----------------------------------------------------------------------
# run_batch
# ----------------------------------------------------------------------
def test_run_batch_matches_sequential_runs():
    rng = np.random.default_rng(5)
    circuits = [iqp_like_circuit(rng.normal(size=4)) for _ in range(8)]
    batched = SIM.run_batch(circuits)
    sequential = np.stack([SIM.run(c) for c in circuits])
    assert np.abs(batched - sequential).max() < 1e-10


def test_run_batch_shared_parameters_use_one_matrix():
    circuits = [iqp_like_circuit([0.1, 0.2, 0.3, 0.4]) for _ in range(3)]
    batched = SIM.run_batch(circuits)
    assert np.abs(batched - batched[0]).max() < 1e-12


def test_run_batch_heterogeneous_fallback():
    circuits = [Circuit(2).h(0).cx(0, 1), Circuit(2).x(1),
                Circuit(2).h(1).rz(0.4, 1)]
    batched = SIM.run_batch(circuits)
    for row, circuit in zip(batched, circuits):
        assert np.allclose(row, SIM.run(circuit), atol=1e-12)


def test_run_batch_initial_states():
    circuits = [Circuit(2).ry(t, 0) for t in (0.3, 1.2)]
    initial = random_states(2, 2, seed=6)
    batched = SIM.run_batch(circuits, initial_states=initial)
    for row_in, row_out, circuit in zip(initial, batched, circuits):
        assert np.allclose(row_out, SIM.run(circuit, initial_state=row_in),
                           atol=1e-12)


def test_run_batch_validates_inputs():
    with pytest.raises(ValueError):
        SIM.run_batch([])
    with pytest.raises(ValueError):
        SIM.run_batch([Circuit(1).h(0), Circuit(2).h(0)])
    with pytest.raises(ValueError):
        SIM.run_batch([Circuit(1).h(0)],
                      initial_states=np.zeros((2, 2), dtype=complex))
    from repro.quantum import Parameter
    theta = Parameter("theta")
    symbolic = [Circuit(1).ry(theta, 0), Circuit(1).ry(theta, 0)]
    with pytest.raises(ValueError):
        SIM.run_batch(symbolic)


def test_run_batch_telemetry_counters():
    circuits = [iqp_like_circuit([0.1 * k] * 4) for k in range(4)]
    collector = telemetry.enable()
    try:
        SIM.run_batch(circuits)
        snapshot = collector.snapshot()
    finally:
        telemetry.disable()
    gates_per_circuit = len(circuits[0].instructions)
    assert snapshot["counters"]["quantum.circuit_evaluations"] == 4
    assert (snapshot["counters"]["quantum.gate_applications"]
            == 4 * gates_per_circuit)
    assert snapshot["counters"]["quantum.gate.h"] == 16
    assert "quantum.run_batch" in snapshot["spans"]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       num_qubits=st.integers(min_value=1, max_value=4),
       batch=st.integers(min_value=1, max_value=6))
def test_property_run_batch_equals_run(seed, num_qubits, batch):
    """Random layered circuits, randomly re-parameterized per element."""
    rng = np.random.default_rng(seed)
    template = random_layered_circuit(num_qubits, depth=3, seed=seed)
    circuits = []
    for _ in range(batch):
        circuit = Circuit(num_qubits)
        for inst in template.instructions:
            params = tuple(
                float(rng.uniform(-np.pi, np.pi))
                for _ in inst.params
            )
            circuit.append(inst.name, inst.qubits, params)
        circuits.append(circuit)
    batched = SIM.run_batch(circuits)
    sequential = np.stack([SIM.run(c) for c in circuits])
    assert np.abs(batched - sequential).max() < 1e-10
