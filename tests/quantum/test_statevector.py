"""Unit + property tests for the statevector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    Circuit,
    StatevectorSimulator,
    apply_matrix,
    basis_state,
    fidelity,
    marginal_probabilities,
    random_layered_circuit,
    zero_state,
)
from repro.quantum.gates import CNOT, HADAMARD


SIM = StatevectorSimulator(seed=7)


def test_zero_state():
    state = zero_state(3)
    assert state[0] == 1.0 and np.allclose(state[1:], 0)


def test_zero_state_rejects_nonpositive():
    with pytest.raises(ValueError):
        zero_state(0)


def test_basis_state_big_endian():
    # |10> on 2 qubits -> index 2
    state = basis_state(2, [1, 0])
    assert state[2] == 1.0


def test_basis_state_validates():
    with pytest.raises(ValueError):
        basis_state(2, [1])
    with pytest.raises(ValueError):
        basis_state(1, [2])


def test_hadamard_makes_plus_state():
    state = SIM.run(Circuit(1).h(0))
    assert np.allclose(state, np.ones(2) / math.sqrt(2))


def test_bell_state():
    state = SIM.run(Circuit(2).h(0).cx(0, 1))
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / math.sqrt(2)
    assert np.allclose(state, expected)


def test_x_on_each_qubit_position():
    # X on qubit 0 of 3 flips the most significant bit.
    state = SIM.run(Circuit(3).x(0))
    assert state[0b100] == 1.0
    state = SIM.run(Circuit(3).x(2))
    assert state[0b001] == 1.0


def test_cx_control_target_order():
    # control=1, target=0 acting on |01> (qubit1 = 1) flips qubit 0.
    qc = Circuit(2).x(1).cx(1, 0)
    state = SIM.run(qc)
    assert state[0b11] == pytest.approx(1.0)


def test_ghz_state():
    qc = Circuit(4).h(0)
    for q in range(3):
        qc.cx(q, q + 1)
    probs = SIM.probabilities(qc)
    assert probs[0] == pytest.approx(0.5)
    assert probs[-1] == pytest.approx(0.5)
    assert probs[1:-1].sum() == pytest.approx(0.0, abs=1e-12)


def test_initial_state_override():
    initial = basis_state(1, [1])
    state = SIM.run(Circuit(1).x(0), initial_state=initial)
    assert state[0] == pytest.approx(1.0)


def test_initial_state_wrong_shape():
    with pytest.raises(ValueError):
        SIM.run(Circuit(2).h(0), initial_state=np.ones(2))


def test_apply_matrix_matches_kron_single_qubit():
    rng = np.random.default_rng(0)
    state = rng.normal(size=4) + 1j * rng.normal(size=4)
    state /= np.linalg.norm(state)
    via_apply = apply_matrix(state, HADAMARD, (1,), 2)
    via_kron = np.kron(np.eye(2), HADAMARD) @ state
    assert np.allclose(via_apply, via_kron)


def test_apply_matrix_matches_kron_two_qubit():
    rng = np.random.default_rng(1)
    state = rng.normal(size=8) + 1j * rng.normal(size=8)
    state /= np.linalg.norm(state)
    via_apply = apply_matrix(state, CNOT, (0, 1), 3)
    via_kron = np.kron(CNOT, np.eye(2)) @ state
    assert np.allclose(via_apply, via_kron)


def test_apply_matrix_nonadjacent_qubits():
    # CX with control=2, target=0 on |001> -> |101>
    state = basis_state(3, [0, 0, 1])
    out = apply_matrix(state, CNOT, (2, 0), 3)
    assert out[0b101] == pytest.approx(1.0)


def test_sample_counts_distribution():
    qc = Circuit(1).h(0)
    counts = StatevectorSimulator(seed=11).sample_counts(qc, shots=4000)
    assert set(counts) <= {"0", "1"}
    assert abs(counts.get("0", 0) - 2000) < 200


def test_sample_counts_rejects_zero_shots():
    with pytest.raises(ValueError):
        SIM.sample_counts(Circuit(1).h(0), shots=0)


def test_fidelity_identical_states():
    state = zero_state(2)
    assert fidelity(state, state) == pytest.approx(1.0)


def test_fidelity_orthogonal_states():
    assert fidelity(basis_state(1, [0]), basis_state(1, [1])) == pytest.approx(0.0)


def test_fidelity_shape_mismatch():
    with pytest.raises(ValueError):
        fidelity(zero_state(1), zero_state(2))


def test_marginal_probabilities_bell():
    state = SIM.run(Circuit(2).h(0).cx(0, 1))
    marg = marginal_probabilities(state, [0])
    assert np.allclose(marg, [0.5, 0.5])


def test_marginal_probabilities_order():
    # |10>: qubit0=1, qubit1=0. Marginal over (1, 0) should read (0, 1).
    state = basis_state(2, [1, 0])
    marg = marginal_probabilities(state, [1, 0])
    assert marg[0b01] == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    num_qubits=st.integers(min_value=1, max_value=5),
    depth=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_norm_preserved(num_qubits, depth, seed):
    """Unitary evolution preserves the 2-norm of any circuit output."""
    qc = random_layered_circuit(num_qubits, depth, seed=seed)
    state = StatevectorSimulator().run(qc)
    assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    num_qubits=st.integers(min_value=1, max_value=4),
    depth=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_inverse_roundtrip(num_qubits, depth, seed):
    """circuit + inverse returns to |0...0> for random bound circuits."""
    qc = random_layered_circuit(num_qubits, depth, seed=seed)
    state = StatevectorSimulator().run(qc.compose(qc.inverse()))
    assert fidelity(state, zero_state(num_qubits)) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_probabilities_sum_to_one(seed):
    qc = random_layered_circuit(3, 3, seed=seed)
    probs = StatevectorSimulator().probabilities(qc)
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs >= -1e-12).all()


def test_marginal_probabilities_out_of_order_regression():
    """Out-of-order and repeated qubit arguments (PR-2 regression)."""
    qc = Circuit(3).h(0).cx(0, 1).x(2)
    state = SIM.run(qc)
    forward = marginal_probabilities(state, [0, 2])
    swapped = marginal_probabilities(state, [2, 0])
    # Swapping the requested order permutes the same distribution.
    assert forward.sum() == pytest.approx(1.0)
    assert sorted(forward) == pytest.approx(sorted(swapped))
    # |q0 q2> vs |q2 q0>: entry (a, b) maps to entry (b, a).
    assert forward.reshape(2, 2).T == pytest.approx(swapped.reshape(2, 2))


def test_marginal_probabilities_rejects_duplicates():
    state = SIM.run(Circuit(2).h(0))
    with pytest.raises(ValueError):
        marginal_probabilities(state, [0, 0])


def test_marginal_probabilities_rejects_out_of_range():
    state = SIM.run(Circuit(2).h(0))
    with pytest.raises(ValueError):
        marginal_probabilities(state, [2])


def test_sample_counts_totals_and_keys():
    qc = Circuit(3).h(0).cx(0, 1)
    counts = SIM.sample_counts(qc, shots=256)
    assert sum(counts.values()) == 256
    assert all(len(key) == 3 and set(key) <= {"0", "1"} for key in counts)
    assert all(isinstance(value, int) and value > 0
               for value in counts.values())
    # Bell pair on qubits 0-1: only 00x and 11x outcomes appear.
    assert set(counts) <= {"000", "110"}
