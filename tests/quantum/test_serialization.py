"""Tests for QASM-subset circuit serialization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    Circuit,
    Parameter,
    StatevectorSimulator,
    circuit_from_qasm,
    circuit_to_qasm,
    random_layered_circuit,
)

SIM = StatevectorSimulator()


def test_roundtrip_preserves_semantics():
    qc = Circuit(3).h(0).cx(0, 1).rzz(0.4, 1, 2).t(2).swap(0, 2)
    back = circuit_from_qasm(circuit_to_qasm(qc))
    assert np.allclose(SIM.run(qc), SIM.run(back))


def test_roundtrip_multi_parameter_gate():
    qc = Circuit(1).u3(0.1, 0.2, 0.3, 0)
    back = circuit_from_qasm(circuit_to_qasm(qc))
    assert np.allclose(SIM.run(qc), SIM.run(back))


def test_serialize_rejects_symbolic_parameters():
    qc = Circuit(1).rx(Parameter("theta"), 0)
    with pytest.raises(ValueError):
        circuit_to_qasm(qc)


def test_parse_accepts_pi_shorthands():
    text = "qreg q[1];\nrx(pi/2) q[0];\nrz(-pi) q[0];\n"
    qc = circuit_from_qasm(text)
    assert qc.instructions[0].params[0] == pytest.approx(math.pi / 2)
    assert qc.instructions[1].params[0] == pytest.approx(-math.pi)


def test_parse_ignores_comments_and_blanks():
    text = """
// a comment
qreg q[2];

h q[0];   // trailing comment
cx q[0], q[1];
"""
    qc = circuit_from_qasm(text)
    assert [i.name for i in qc] == ["h", "cx"]


def test_parse_errors_are_located():
    with pytest.raises(ValueError, match="line 2"):
        circuit_from_qasm("qreg q[1];\nwobble q[0];")
    with pytest.raises(ValueError, match="qreg"):
        circuit_from_qasm("h q[0];")
    with pytest.raises(ValueError, match="duplicate"):
        circuit_from_qasm("qreg q[1];\nqreg q[1];")
    with pytest.raises(ValueError):
        circuit_from_qasm("")


def test_parse_validates_parameter_count():
    with pytest.raises(ValueError, match="parameter"):
        circuit_from_qasm("qreg q[1];\nrx q[0];")
    with pytest.raises(ValueError, match="parameter"):
        circuit_from_qasm("qreg q[1];\nh(0.3) q[0];")


def test_parse_bad_parameter_token():
    with pytest.raises(ValueError, match="bad parameter"):
        circuit_from_qasm("qreg q[1];\nrx(two) q[0];")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_property_random_circuits_roundtrip(seed):
    qc = random_layered_circuit(3, 3, seed=seed)
    back = circuit_from_qasm(circuit_to_qasm(qc))
    assert np.allclose(SIM.run(qc), SIM.run(back), atol=1e-12)
