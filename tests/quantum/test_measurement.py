"""Unit tests for shot-based estimation."""

import numpy as np
import pytest

from repro.quantum import Circuit, PauliString, PauliSum, expectation_with_shots
from repro.quantum.measurement import (
    counts_to_probabilities,
    sample_bit_expectation,
)


def test_counts_to_probabilities():
    probs = counts_to_probabilities({"00": 75, "11": 25})
    assert probs["00"] == pytest.approx(0.75)
    assert probs["11"] == pytest.approx(0.25)


def test_counts_to_probabilities_empty():
    with pytest.raises(ValueError):
        counts_to_probabilities({})


def test_shot_expectation_z_converges():
    rng = np.random.default_rng(5)
    value = expectation_with_shots(
        Circuit(1).ry(0.8, 0), PauliString("Z"), shots=20_000, rng=rng
    )
    assert value == pytest.approx(np.cos(0.8), abs=0.03)


def test_shot_expectation_x_basis_rotation():
    rng = np.random.default_rng(6)
    value = expectation_with_shots(
        Circuit(1).h(0), PauliString("X"), shots=5_000, rng=rng
    )
    assert value == pytest.approx(1.0, abs=0.02)


def test_shot_expectation_y_basis_rotation():
    rng = np.random.default_rng(7)
    qc = Circuit(1).h(0).s(0)  # |+i>
    value = expectation_with_shots(qc, PauliString("Y"), shots=5_000, rng=rng)
    assert value == pytest.approx(1.0, abs=0.02)


def test_shot_expectation_sum_with_identity():
    rng = np.random.default_rng(8)
    obs = PauliSum([PauliString("I", 2.0), PauliString("Z", 1.0)])
    value = expectation_with_shots(Circuit(1), obs, shots=1_000, rng=rng)
    assert value == pytest.approx(3.0, abs=0.01)


def test_shot_expectation_empty_observable():
    assert expectation_with_shots(Circuit(1), PauliSum(), shots=10) == 0.0


def test_shot_expectation_rejects_zero_shots():
    with pytest.raises(ValueError):
        expectation_with_shots(Circuit(1), PauliString("Z"), shots=0)


def test_sample_bit_expectation():
    assert sample_bit_expectation({"00": 10}, 0) == pytest.approx(1.0)
    assert sample_bit_expectation({"10": 10}, 0) == pytest.approx(-1.0)
    assert sample_bit_expectation({"10": 5, "00": 5}, 0) == pytest.approx(0.0)
