"""Tests for quantum state tomography."""

import numpy as np
import pytest

from repro.quantum import (
    Circuit,
    StatevectorSimulator,
    project_to_physical,
    reconstruction_error,
    state_tomography,
)
from repro.quantum.density import density_from_statevector

SIM = StatevectorSimulator()


def _true_density(circuit: Circuit) -> np.ndarray:
    return density_from_statevector(SIM.run(circuit))


def test_exact_tomography_of_bell_state():
    qc = Circuit(2).h(0).cx(0, 1)
    result = state_tomography(qc)
    assert reconstruction_error(result, _true_density(qc)) < 1e-9
    assert result.purity() == pytest.approx(1.0)


def test_exact_tomography_single_qubit():
    qc = Circuit(1).ry(0.7, 0)
    result = state_tomography(qc)
    assert result.fidelity_with_state(SIM.run(qc)) == pytest.approx(1.0)
    assert result.num_settings == 3


def test_exact_tomography_three_qubits():
    qc = Circuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.4, 2)
    result = state_tomography(qc)
    assert reconstruction_error(result, _true_density(qc)) < 1e-9


def test_shot_tomography_converges():
    qc = Circuit(2).h(0).cx(0, 1)
    true_rho = _true_density(qc)
    coarse = state_tomography(qc, shots_per_setting=50, seed=0)
    fine = state_tomography(qc, shots_per_setting=2000, seed=0)
    assert (reconstruction_error(fine, true_rho)
            < reconstruction_error(coarse, true_rho))
    assert fine.fidelity_with_state(SIM.run(qc)) > 0.97


def test_shot_tomography_is_physical():
    qc = Circuit(2).h(0).cx(0, 1)
    result = state_tomography(qc, shots_per_setting=20, seed=1)
    rho = result.density_matrix
    eigenvalues = np.linalg.eigvalsh(rho)
    assert eigenvalues.min() >= -1e-12
    assert np.trace(rho).real == pytest.approx(1.0)
    assert np.allclose(rho, rho.conj().T)


def test_density_matrix_reproduces_probabilities():
    qc = Circuit(2).ry(0.9, 0).cx(0, 1)
    result = state_tomography(qc)
    probabilities = np.real(np.diag(result.density_matrix))
    expected = np.abs(SIM.run(qc)) ** 2
    assert np.allclose(probabilities, expected, atol=1e-9)


def test_qubit_limit_enforced():
    with pytest.raises(ValueError):
        state_tomography(Circuit(5))


def test_project_to_physical_fixes_negativity():
    unphysical = np.diag([1.2, -0.2]).astype(complex)
    projected = project_to_physical(unphysical)
    eigenvalues = np.linalg.eigvalsh(projected)
    assert eigenvalues.min() >= 0
    assert np.trace(projected).real == pytest.approx(1.0)


def test_project_to_physical_degenerate_input():
    projected = project_to_physical(np.zeros((2, 2), dtype=complex))
    assert np.allclose(projected, np.eye(2) / 2)


def test_settings_count_matches_pauli_space():
    result = state_tomography(Circuit(2).h(0))
    assert result.num_settings == 4 ** 2 - 1
