"""Unit tests for the circuit IR: builders, parameters, transformations."""


import numpy as np
import pytest

from repro.quantum import Circuit, Parameter, StatevectorSimulator, zero_state
from repro.quantum.circuit import ParameterExpression, parameter_vector


def test_builder_chaining():
    qc = Circuit(2).h(0).cx(0, 1)
    assert len(qc) == 2
    assert qc.instructions[0].name == "h"
    assert qc.instructions[1].qubits == (0, 1)


def test_requires_positive_qubits():
    with pytest.raises(ValueError):
        Circuit(0)


def test_append_validates_qubit_range():
    qc = Circuit(2)
    with pytest.raises(ValueError):
        qc.x(2)
    with pytest.raises(ValueError):
        qc.x(-1)


def test_append_rejects_duplicate_qubits():
    with pytest.raises(ValueError):
        Circuit(2).cx(1, 1)


def test_append_rejects_unknown_gate():
    with pytest.raises(KeyError):
        Circuit(1).append("nope", [0])


def test_append_validates_param_count():
    with pytest.raises(ValueError):
        Circuit(1).append("rx", [0], [])


def test_parameters_in_first_appearance_order():
    a, b = Parameter("a"), Parameter("b")
    qc = Circuit(2).rx(b, 0).ry(a, 1).rz(b, 0)
    assert qc.parameters == [b, a]
    assert qc.num_parameters == 2


def test_parameters_identity_not_name():
    p1, p2 = Parameter("theta"), Parameter("theta")
    qc = Circuit(1).rx(p1, 0).ry(p2, 0)
    assert qc.num_parameters == 2


def test_bind_full():
    theta = Parameter("theta")
    qc = Circuit(1).rx(theta, 0)
    bound = qc.bind({theta: 0.5})
    assert bound.num_parameters == 0
    assert bound.instructions[0].params == (0.5,)


def test_bind_partial_keeps_other_symbolic():
    a, b = Parameter("a"), Parameter("b")
    qc = Circuit(1).rx(a, 0).ry(b, 0)
    partially = qc.bind({a: 1.0})
    assert partially.num_parameters == 1
    assert partially.parameters == [b]


def test_bind_does_not_mutate_original():
    theta = Parameter("theta")
    qc = Circuit(1).rx(theta, 0)
    qc.bind({theta: 0.5})
    assert qc.num_parameters == 1


def test_bind_values_positional():
    a, b = Parameter("a"), Parameter("b")
    qc = Circuit(1).rx(a, 0).ry(b, 0)
    bound = qc.bind_values([0.1, 0.2])
    assert bound.instructions[0].params == (0.1,)
    assert bound.instructions[1].params == (0.2,)


def test_bind_values_wrong_length():
    qc = Circuit(1).rx(Parameter("a"), 0)
    with pytest.raises(ValueError):
        qc.bind_values([0.1, 0.2])


def test_parameter_expression_scaling():
    theta = Parameter("theta")
    qc = Circuit(1).rx(2.0 * theta, 0)
    bound = qc.bind({theta: 0.25})
    assert bound.instructions[0].params == (0.5,)


def test_parameter_expression_offset_and_negation():
    theta = Parameter("theta")
    expr = -(theta * 3.0) + 1.0
    assert isinstance(expr, ParameterExpression)
    assert expr.bind(2.0) == pytest.approx(-5.0)


def test_depth_parallel_gates():
    qc = Circuit(3).h(0).h(1).h(2)
    assert qc.depth() == 1


def test_depth_sequential_dependency():
    qc = Circuit(2).h(0).cx(0, 1).h(1)
    assert qc.depth() == 3


def test_count_ops():
    qc = Circuit(2).h(0).h(1).cx(0, 1)
    assert qc.count_ops() == {"h": 2, "cx": 1}


def test_compose_runs_sequentially():
    first = Circuit(2).h(0)
    second = Circuit(2).cx(0, 1)
    combined = first.compose(second)
    assert [i.name for i in combined] == ["h", "cx"]
    assert len(first) == 1  # original untouched


def test_compose_rejects_larger_circuit():
    with pytest.raises(ValueError):
        Circuit(1).compose(Circuit(2))


def test_inverse_undoes_bound_circuit():
    qc = Circuit(3)
    qc.h(0).rx(0.7, 1).cx(0, 1).rz(1.3, 2).t(0).s(2).rzz(0.4, 0, 2)
    sim = StatevectorSimulator()
    roundtrip = sim.run(qc.compose(qc.inverse()))
    assert np.allclose(roundtrip, zero_state(3))


def test_inverse_negates_rotation():
    qc = Circuit(1).rx(0.7, 0)
    assert qc.inverse().instructions[0].params == (-0.7,)


def test_inverse_of_t_is_tdg():
    qc = Circuit(1).t(0)
    assert qc.inverse().instructions[0].name == "tdg"


def test_inverse_symbolic_rotation():
    theta = Parameter("theta")
    inv = Circuit(1).rx(theta, 0).inverse()
    bound = inv.bind({theta: 0.3})
    assert bound.instructions[0].params[0] == pytest.approx(-0.3)


def test_inverse_u3_roundtrip():
    qc = Circuit(1).u3(0.3, 0.5, 0.9, 0)
    sim = StatevectorSimulator()
    final = sim.run(qc.compose(qc.inverse()))
    assert np.allclose(final, zero_state(1))


def test_instruction_matrix_requires_bound():
    theta = Parameter("theta")
    qc = Circuit(1).rx(theta, 0)
    with pytest.raises(ValueError):
        qc.instructions[0].matrix()


def test_parameter_vector_names():
    params = parameter_vector("w", 3)
    assert [p.name for p in params] == ["w[0]", "w[1]", "w[2]"]
    assert len({id(p) for p in params}) == 3


def test_draw_contains_gates():
    text = Circuit(2).h(0).cx(0, 1).draw()
    assert "h" in text and "cx" in text


def test_copy_is_independent():
    qc = Circuit(1).h(0)
    clone = qc.copy()
    clone.x(0)
    assert len(qc) == 1 and len(clone) == 2
