"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.quantum import gates


ALL_FIXED = sorted(gates.FIXED_GATES)
ALL_PARAMETRIC = sorted(gates.PARAMETRIC_GATES)


@pytest.mark.parametrize("name", ALL_FIXED)
def test_fixed_gates_are_unitary(name):
    assert gates.is_unitary(gates.FIXED_GATES[name])


@pytest.mark.parametrize("name", ALL_PARAMETRIC)
@pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 5.1])
def test_parametric_gates_are_unitary(name, theta):
    nparams = gates.GATE_NUM_PARAMS[name]
    matrix = gates.PARAMETRIC_GATES[name](*([theta] * nparams))
    assert gates.is_unitary(matrix)


@pytest.mark.parametrize("name", ["rx", "ry", "rz", "rxx", "ryy", "rzz"])
def test_rotations_at_zero_are_identity(name):
    matrix = gates.PARAMETRIC_GATES[name](0.0)
    assert np.allclose(matrix, np.eye(matrix.shape[0]))


def test_rx_pi_is_x_up_to_phase():
    matrix = gates.rx_matrix(math.pi)
    assert np.allclose(matrix, -1j * gates.PAULI_X)


def test_ry_pi_is_y_up_to_phase():
    assert np.allclose(gates.ry_matrix(math.pi), -1j * gates.PAULI_Y)


def test_rz_pi_is_z_up_to_phase():
    assert np.allclose(gates.rz_matrix(math.pi), -1j * gates.PAULI_Z)


def test_hadamard_squares_to_identity():
    assert np.allclose(gates.HADAMARD @ gates.HADAMARD, np.eye(2))


def test_s_gate_squares_to_z():
    assert np.allclose(gates.S_GATE @ gates.S_GATE, gates.PAULI_Z)


def test_t_gate_squares_to_s():
    assert np.allclose(gates.T_GATE @ gates.T_GATE, gates.S_GATE)


def test_sx_squares_to_x():
    assert np.allclose(gates.SX_GATE @ gates.SX_GATE, gates.PAULI_X)


def test_cnot_flips_target_when_control_set():
    state = np.zeros(4)
    state[2] = 1.0  # |10>
    assert np.allclose(gates.CNOT @ state, np.eye(4)[3])  # -> |11>


def test_cnot_leaves_target_when_control_clear():
    state = np.eye(4)[1]  # |01>
    assert np.allclose(gates.CNOT @ state, state)


def test_toffoli_truth_table():
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                idx = (a << 2) | (b << 1) | c
                out = gates.TOFFOLI @ np.eye(8)[idx]
                expected = (a << 2) | (b << 1) | (c ^ (a & b))
                assert np.allclose(out, np.eye(8)[expected])


def test_fredkin_swaps_when_control_set():
    # |1 1 0> -> |1 0 1>
    out = gates.FREDKIN @ np.eye(8)[0b110]
    assert np.allclose(out, np.eye(8)[0b101])


def test_swap_matrix():
    assert np.allclose(gates.SWAP @ np.eye(4)[1], np.eye(4)[2])


def test_controlled_builds_cnot_from_x():
    assert np.allclose(gates.controlled(gates.PAULI_X), gates.CNOT)


def test_controlled_two_controls_builds_toffoli():
    assert np.allclose(
        gates.controlled(gates.PAULI_X, num_controls=2), gates.TOFFOLI
    )


def test_controlled_rejects_zero_controls():
    with pytest.raises(ValueError):
        gates.controlled(gates.PAULI_X, num_controls=0)


def test_rzz_diagonal_phases():
    theta = 0.7
    matrix = gates.rzz_matrix(theta)
    phases = np.exp(-1j * theta / 2 * np.array([1, -1, -1, 1]))
    assert np.allclose(np.diag(matrix), phases)


def test_cphase_matrix():
    lam = 1.2
    matrix = gates.cphase_matrix(lam)
    assert np.allclose(np.diag(matrix), [1, 1, 1, np.exp(1j * lam)])


def test_u3_reduces_to_ry():
    theta = 0.9
    assert np.allclose(gates.u3_matrix(theta, 0, 0), gates.ry_matrix(theta))


def test_gate_matrix_resolves_fixed():
    assert np.allclose(gates.gate_matrix("h"), gates.HADAMARD)


def test_gate_matrix_resolves_parametric():
    assert np.allclose(gates.gate_matrix("rx", [0.4]), gates.rx_matrix(0.4))


def test_gate_matrix_unknown_name():
    with pytest.raises(KeyError):
        gates.gate_matrix("frobnicate")


def test_gate_matrix_wrong_param_count():
    with pytest.raises(ValueError):
        gates.gate_matrix("rx", [0.1, 0.2])
    with pytest.raises(ValueError):
        gates.gate_matrix("h", [0.1])


def test_is_unitary_rejects_non_square():
    assert not gates.is_unitary(np.ones((2, 3)))


def test_is_unitary_rejects_non_unitary():
    assert not gates.is_unitary(np.array([[1, 1], [0, 1]], dtype=complex))


def test_arity_table_consistent_with_matrices():
    for name in ALL_FIXED:
        dim = gates.FIXED_GATES[name].shape[0]
        assert dim == 2 ** gates.GATE_ARITY[name]
    for name in ALL_PARAMETRIC:
        nparams = gates.GATE_NUM_PARAMS[name]
        matrix = gates.PARAMETRIC_GATES[name](*([0.3] * nparams))
        assert matrix.shape[0] == 2 ** gates.GATE_ARITY[name]
