"""Unit tests for noise channels and the density-matrix simulator."""

import numpy as np
import pytest

from repro.quantum import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    PauliString,
    StatevectorSimulator,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    phase_flip_channel,
    purity,
    von_neumann_entropy,
)
from repro.quantum.density import density_from_statevector, zero_density
from repro.quantum.noise import is_valid_channel, two_qubit_depolarizing_channel


@pytest.mark.parametrize("factory", [
    depolarizing_channel,
    bit_flip_channel,
    phase_flip_channel,
    amplitude_damping_channel,
    phase_damping_channel,
    two_qubit_depolarizing_channel,
])
@pytest.mark.parametrize("p", [0.0, 0.05, 0.5, 1.0])
def test_channels_satisfy_completeness(factory, p):
    assert is_valid_channel(factory(p))


@pytest.mark.parametrize("factory", [depolarizing_channel, bit_flip_channel])
def test_channels_reject_bad_probability(factory):
    with pytest.raises(ValueError):
        factory(-0.1)
    with pytest.raises(ValueError):
        factory(1.1)


def test_noiseless_density_matches_statevector():
    qc = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
    rho = DensityMatrixSimulator().run(qc)
    psi = StatevectorSimulator().run(qc)
    assert np.allclose(rho, density_from_statevector(psi))


def test_noiseless_run_is_pure():
    qc = Circuit(2).h(0).cx(0, 1)
    rho = DensityMatrixSimulator().run(qc)
    assert purity(rho) == pytest.approx(1.0)


def test_depolarizing_reduces_purity():
    noise = NoiseModel.depolarizing(p1=0.1, p2=0.1)
    qc = Circuit(2).h(0).cx(0, 1)
    rho = DensityMatrixSimulator(noise_model=noise).run(qc)
    assert purity(rho) < 1.0
    assert np.trace(rho).real == pytest.approx(1.0)


def test_full_depolarizing_gives_maximally_mixed():
    noise = NoiseModel(single_qubit=depolarizing_channel(1.0))
    rho = DensityMatrixSimulator(noise_model=noise).run(Circuit(1).h(0))
    assert np.allclose(rho, np.eye(2) / 2)


def test_amplitude_damping_fixes_ground_state():
    noise = NoiseModel(single_qubit=amplitude_damping_channel(1.0))
    rho = DensityMatrixSimulator(noise_model=noise).run(Circuit(1).x(0))
    assert rho[0, 0].real == pytest.approx(1.0)


def test_bit_flip_expectation():
    p = 0.2
    noise = NoiseModel(single_qubit=bit_flip_channel(p))
    sim = DensityMatrixSimulator(noise_model=noise)
    # i gate triggers the channel once on |0>.
    value = sim.expectation(Circuit(1).i(0), PauliString("Z"))
    assert value == pytest.approx(1.0 - 2.0 * p)


def test_noise_model_validates_channels():
    with pytest.raises(ValueError):
        NoiseModel(single_qubit=[np.eye(2) * 2.0])
    with pytest.raises(ValueError):
        NoiseModel(readout_error=1.5)


def test_noise_model_channel_for_arity():
    noise = NoiseModel.depolarizing(p1=0.01)
    assert noise.channel_for(1) is not None
    assert noise.channel_for(2) is not None
    assert noise.channel_for(3) is None


def test_readout_error_flips_distribution():
    noise = NoiseModel(readout_error=1.0)
    sim = DensityMatrixSimulator(noise_model=noise)
    probs = sim.probabilities(Circuit(1).i(0))
    assert probs[1] == pytest.approx(1.0)


def test_sample_counts_shapes():
    sim = DensityMatrixSimulator(
        noise_model=NoiseModel.depolarizing(0.05), seed=3
    )
    counts = sim.sample_counts(Circuit(2).h(0).cx(0, 1), shots=200)
    assert sum(counts.values()) == 200
    assert all(len(k) == 2 for k in counts)


def test_sample_counts_rejects_zero_shots():
    with pytest.raises(ValueError):
        DensityMatrixSimulator().sample_counts(Circuit(1), shots=0)


def test_run_rejects_bad_initial_density():
    with pytest.raises(ValueError):
        DensityMatrixSimulator().run(Circuit(2).h(0), np.eye(2))


def test_expectation_matches_statevector_when_noiseless():
    qc = Circuit(2).h(0).cx(0, 1).ry(0.4, 0)
    obs = PauliString("ZZ")
    dm = DensityMatrixSimulator().expectation(qc, obs)
    sv = StatevectorSimulator().expectation(qc, obs)
    assert dm == pytest.approx(sv)


def test_purity_and_entropy_of_mixed_state():
    rho = np.eye(2) / 2
    assert purity(rho) == pytest.approx(0.5)
    assert von_neumann_entropy(rho) == pytest.approx(1.0)


def test_entropy_of_pure_state_is_zero():
    assert von_neumann_entropy(zero_density(2)) == pytest.approx(0.0, abs=1e-9)
