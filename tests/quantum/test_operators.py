"""Unit tests for Pauli observables."""

import numpy as np
import pytest

from repro.quantum import (
    Circuit,
    PauliString,
    PauliSum,
    StatevectorSimulator,
    ising_hamiltonian,
    single_z,
    zz,
)

SIM = StatevectorSimulator()


def test_label_validation():
    with pytest.raises(ValueError):
        PauliString("XQ")
    with pytest.raises(ValueError):
        PauliString("")


def test_identity_detection():
    assert PauliString("II").is_identity
    assert not PauliString("IZ").is_identity


def test_support():
    assert PauliString("IXZI").support() == (1, 2)


def test_matrix_single_z():
    assert np.allclose(PauliString("Z").matrix(), np.diag([1, -1]))


def test_matrix_tensor_order():
    # "ZI" means Z on qubit 0 (most significant): diag(1,1,-1,-1).
    assert np.allclose(np.diag(PauliString("ZI").matrix()), [1, 1, -1, -1])
    assert np.allclose(np.diag(PauliString("IZ").matrix()), [1, -1, 1, -1])


def test_coefficient_scaling():
    scaled = 2.5 * PauliString("X")
    assert scaled.coefficient == 2.5
    assert np.allclose(scaled.matrix(), 2.5 * PauliString("X").matrix())


def test_expectation_z_on_zero_state():
    assert SIM.expectation(Circuit(1), PauliString("Z")) == pytest.approx(1.0)


def test_expectation_z_on_one_state():
    assert SIM.expectation(Circuit(1).x(0), PauliString("Z")) == pytest.approx(-1.0)


def test_expectation_x_on_plus_state():
    assert SIM.expectation(Circuit(1).h(0), PauliString("X")) == pytest.approx(1.0)


def test_expectation_y():
    # S H |0> is the +i eigenstate of Y... actually H then S gives |+i>.
    qc = Circuit(1).h(0).s(0)
    assert SIM.expectation(qc, PauliString("Y")) == pytest.approx(1.0)


def test_expectation_zz_on_bell_state():
    qc = Circuit(2).h(0).cx(0, 1)
    assert SIM.expectation(qc, PauliString("ZZ")) == pytest.approx(1.0)
    assert SIM.expectation(qc, PauliString("XX")) == pytest.approx(1.0)
    assert SIM.expectation(qc, PauliString("IZ")) == pytest.approx(0.0)


def test_apply_matches_matrix():
    rng = np.random.default_rng(3)
    state = rng.normal(size=8) + 1j * rng.normal(size=8)
    state /= np.linalg.norm(state)
    term = PauliString("XYZ", 0.7)
    assert np.allclose(term.apply(state), term.matrix() @ state)


def test_pauli_sum_qubit_mismatch():
    with pytest.raises(ValueError):
        PauliSum([PauliString("Z"), PauliString("ZZ")])
    with pytest.raises(ValueError):
        PauliSum([PauliString("Z")]).add(PauliString("ZZ"))


def test_pauli_sum_expectation_linear():
    obs = PauliSum([PauliString("Z", 2.0), PauliString("X", 3.0)])
    assert SIM.expectation(Circuit(1), obs) == pytest.approx(2.0)
    assert SIM.expectation(Circuit(1).h(0), obs) == pytest.approx(3.0)


def test_pauli_sum_arithmetic():
    a = PauliSum([PauliString("Z")])
    b = PauliSum([PauliString("X")])
    combined = (a + b) * 2.0
    assert len(combined) == 2
    assert combined.terms[0].coefficient == 2.0


def test_simplify_merges_and_drops():
    total = PauliSum([
        PauliString("Z", 1.0),
        PauliString("Z", 2.0),
        PauliString("X", 1e-15),
    ]).simplify()
    assert len(total) == 1
    assert total.terms[0].coefficient == pytest.approx(3.0)


def test_single_z_and_zz_helpers():
    assert single_z(1, 3).label == "IZI"
    assert zz(0, 2, 3).label == "ZIZ"
    with pytest.raises(ValueError):
        zz(1, 1, 3)


def test_expectation_from_counts_diagonal():
    obs = PauliSum([PauliString("ZI", 1.0), PauliString("IZ", 1.0)])
    counts = {"00": 50, "11": 50}
    assert obs.expectation_from_counts(counts) == pytest.approx(0.0)
    counts = {"00": 100}
    assert obs.expectation_from_counts(counts) == pytest.approx(2.0)


def test_expectation_from_counts_rejects_offdiagonal():
    obs = PauliSum([PauliString("XI")])
    with pytest.raises(ValueError):
        obs.expectation_from_counts({"00": 1})


def test_expectation_from_counts_rejects_empty():
    obs = PauliSum([PauliString("ZI")])
    with pytest.raises(ValueError):
        obs.expectation_from_counts({})


def test_ising_hamiltonian_groundstate():
    # H = -Z0 Z1: ground states are |00> and |11> with energy -1.
    ham = ising_hamiltonian({}, {(0, 1): -1.0}, num_qubits=2)
    matrix = ham.matrix()
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert eigenvalues[0] == pytest.approx(-1.0)


def test_ising_hamiltonian_constant_term():
    ham = ising_hamiltonian({0: 0.5}, {}, num_qubits=1, constant=2.0)
    assert SIM.expectation(Circuit(1), ham) == pytest.approx(2.5)


def test_ising_hamiltonian_skips_zero_coefficients():
    ham = ising_hamiltonian({0: 0.0}, {(0, 1): 0.0}, num_qubits=2)
    assert len(ham) == 0
