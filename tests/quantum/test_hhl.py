"""Tests for the HHL linear-system solver."""

import numpy as np
import pytest

from repro.quantum import classical_reference, hhl_solve


@pytest.fixture(scope="module")
def well_conditioned_2x2():
    # Eigenvalues 1 and 2 — exactly representable with 3 clock bits
    # under the default evolution time.
    return np.array([[1.5, 0.5], [0.5, 1.5]])


def test_hhl_matches_classical_solution(well_conditioned_2x2):
    b = np.array([1.0, 0.0])
    result = hhl_solve(well_conditioned_2x2, b, num_clock_bits=3)
    assert result.fidelity_with(
        classical_reference(well_conditioned_2x2, b)
    ) > 0.995


def test_hhl_larger_system_high_fidelity():
    rng = np.random.default_rng(0)
    m = rng.normal(size=(4, 4))
    a = m @ m.T + 4.0 * np.eye(4)
    b = rng.normal(size=4)
    result = hhl_solve(a, b, num_clock_bits=6)
    assert result.fidelity_with(classical_reference(a, b)) > 0.999


def test_hhl_fidelity_improves_with_clock_bits():
    rng = np.random.default_rng(1)
    m = rng.normal(size=(2, 2))
    a = m @ m.T + 2.0 * np.eye(2)
    b = np.array([0.3, 0.9])
    coarse = hhl_solve(a, b, num_clock_bits=2)
    fine = hhl_solve(a, b, num_clock_bits=6)
    reference = classical_reference(a, b)
    assert fine.fidelity_with(reference) >= (
        coarse.fidelity_with(reference) - 1e-6
    )
    assert fine.fidelity_with(reference) > 0.99


def test_hhl_success_probability_positive(well_conditioned_2x2):
    result = hhl_solve(well_conditioned_2x2, np.array([0.6, 0.8]),
                       num_clock_bits=3)
    assert 0.0 < result.success_probability <= 1.0


def test_hhl_identity_returns_b():
    b = np.array([0.6, 0.8])
    result = hhl_solve(np.eye(2), b, num_clock_bits=3)
    assert result.fidelity_with(b) > 0.99


def test_hhl_diagonal_matrix_inverts_spectrum():
    a = np.diag([1.0, 4.0])
    b = np.array([1.0, 1.0])
    result = hhl_solve(a, b, num_clock_bits=4)
    # x = (1, 1/4): amplitude of component 0 should dominate 4:1.
    ratio = abs(result.solution[0]) / abs(result.solution[1])
    assert ratio == pytest.approx(4.0, rel=0.15)


def test_hhl_validations():
    with pytest.raises(ValueError):
        hhl_solve(np.ones((2, 3)), np.ones(2))
    with pytest.raises(ValueError):
        hhl_solve(np.array([[0, 1], [0, 0]]), np.ones(2))  # not Hermitian
    with pytest.raises(ValueError):
        hhl_solve(np.eye(3), np.ones(3))  # not a power of two
    with pytest.raises(ValueError):
        hhl_solve(np.eye(2), np.ones(3))  # rhs mismatch
    with pytest.raises(ValueError):
        hhl_solve(np.eye(2), np.zeros(2))  # zero rhs
    with pytest.raises(ValueError):
        hhl_solve(-np.eye(2), np.ones(2))  # not positive definite
    with pytest.raises(ValueError):
        hhl_solve(np.eye(2), np.ones(2), num_clock_bits=0)


def test_classical_reference_is_normalized():
    a = np.diag([2.0, 5.0])
    reference = classical_reference(a, np.array([1.0, 1.0]))
    assert np.linalg.norm(reference) == pytest.approx(1.0)
