"""Tests for QFT, Grover search and quantum phase estimation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import (
    StatevectorSimulator,
    grover_minimum_search,
    grover_search,
    grover_search_predicate,
    inverse_qft_circuit,
    optimal_iterations,
    phase_estimation,
    phase_from_eigenvalue,
    qft_circuit,
    qft_matrix,
    zero_state,
)
from repro.quantum.grover import (
    counts_from_grover,
    diffusion_matrix,
    phase_oracle_matrix,
)

SIM = StatevectorSimulator()


# ----------------------------------------------------------------------
# QFT
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_qft_circuit_matches_dft_matrix(n):
    reference = qft_matrix(n)
    for j in range(2 ** n):
        column = SIM.run(
            qft_circuit(n),
            initial_state=np.eye(2 ** n)[j].astype(complex),
        )
        assert np.allclose(column, reference[:, j], atol=1e-9)


def test_qft_of_zero_state_is_uniform():
    state = SIM.run(qft_circuit(3))
    assert np.allclose(state, np.full(8, 1 / math.sqrt(8)))


def test_inverse_qft_undoes_qft():
    circuit = qft_circuit(3).compose(inverse_qft_circuit(3))
    assert np.allclose(SIM.run(circuit), zero_state(3))


def test_qft_matrix_is_unitary():
    f = qft_matrix(3)
    assert np.allclose(f @ f.conj().T, np.eye(8), atol=1e-12)


def test_qft_rejects_zero_qubits():
    with pytest.raises(ValueError):
        qft_circuit(0)


# ----------------------------------------------------------------------
# Grover
# ----------------------------------------------------------------------
def test_oracle_flips_marked_phases():
    oracle = phase_oracle_matrix(2, [1, 3])
    assert np.allclose(np.diag(oracle), [1, -1, 1, -1])


def test_oracle_rejects_out_of_range():
    with pytest.raises(ValueError):
        phase_oracle_matrix(2, [4])


def test_diffusion_is_unitary_and_reflects():
    d = diffusion_matrix(2)
    assert np.allclose(d @ d.conj().T, np.eye(4), atol=1e-12)
    uniform = np.full(4, 0.5)
    assert np.allclose(d @ uniform, uniform)


def test_optimal_iterations_single_marked():
    # N=16, M=1 -> ~3 iterations.
    assert optimal_iterations(4, 1) == 3


def test_optimal_iterations_majority_marked_is_zero():
    """M >= N/2 rotations can overshoot to zero success; measure
    the uniform superposition directly instead."""
    assert optimal_iterations(4, 8) == 0
    assert optimal_iterations(4, 12) == 0


def test_optimal_iterations_validations():
    with pytest.raises(ValueError):
        optimal_iterations(2, 0)
    with pytest.raises(ValueError):
        optimal_iterations(2, 4)


def test_grover_amplifies_single_target():
    result = grover_search(4, [5])
    assert result.success_probability > 0.9
    assert result.top_state == 5


def test_grover_multiple_targets():
    result = grover_search(4, [3, 12])
    assert result.success_probability > 0.9
    assert result.top_state in (3, 12)


def test_grover_zero_iterations_is_uniform():
    result = grover_search(3, [0], iterations=0)
    assert result.success_probability == pytest.approx(1 / 8)


def test_grover_quadratic_iteration_scaling():
    """Iterations grow ~sqrt(N): doubling qubits (4x states) doubles
    the optimal count."""
    assert optimal_iterations(8, 1) >= 1.8 * optimal_iterations(6, 1)


def test_grover_predicate_interface():
    result = grover_search_predicate(4, lambda i: i % 7 == 0 and i > 0)
    assert result.top_state in (7, 14)


def test_grover_predicate_rejects_empty():
    with pytest.raises(ValueError):
        grover_search_predicate(3, lambda i: False)


def test_grover_counts_sampling():
    result = grover_search(3, [6])
    counts = counts_from_grover(result, shots=200, seed=0)
    assert sum(counts.values()) == 200
    assert counts.get("110", 0) > 150


def test_minimum_search_finds_argmin():
    values = np.random.default_rng(0).normal(size=13)
    hits = sum(
        grover_minimum_search(values, seed=s) == int(np.argmin(values))
        for s in range(10)
    )
    assert hits >= 8


def test_minimum_search_non_power_of_two():
    values = [5.0, 2.0, 9.0]
    assert grover_minimum_search(values, seed=1) == 1


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_grover_beats_uniform_sampling(n, seed):
    rng = np.random.default_rng(seed)
    target = int(rng.integers(2 ** n))
    result = grover_search(n, [target])
    assert result.success_probability > 1 / 2 ** n


# ----------------------------------------------------------------------
# Phase estimation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num, den", [(1, 2), (1, 4), (3, 8), (5, 8)])
def test_qpe_exact_dyadic_phases(num, den):
    phi = num / den
    unitary = np.diag([1.0, np.exp(2j * math.pi * phi)])
    result = phase_estimation(unitary, np.array([0, 1], dtype=complex),
                              num_bits=3)
    assert result.estimated_phase == pytest.approx(phi)
    assert result.distribution.max() == pytest.approx(1.0, abs=1e-9)


def test_qpe_non_dyadic_phase_within_resolution():
    phi = 0.3
    unitary = np.diag([1.0, np.exp(2j * math.pi * phi)])
    result = phase_estimation(unitary, np.array([0, 1], dtype=complex),
                              num_bits=5)
    assert abs(result.estimated_phase - phi) < 1 / 2 ** 5


def test_qpe_two_qubit_unitary():
    # CZ has eigenvalue -1 (phase 1/2) on |11>.
    cz = np.diag([1.0, 1.0, 1.0, -1.0])
    eigenstate = np.zeros(4, dtype=complex)
    eigenstate[3] = 1.0
    result = phase_estimation(cz, eigenstate, num_bits=3)
    assert result.estimated_phase == pytest.approx(0.5)


def test_qpe_counts_concentrate():
    unitary = np.diag([1.0, np.exp(2j * math.pi * 0.25)])
    result = phase_estimation(unitary, np.array([0, 1], dtype=complex),
                              num_bits=3)
    counts = result.counts(100, seed=0)
    assert counts.get("010", 0) == 100  # 0.25 * 8 = 2 = 010


def test_qpe_validations():
    unitary = np.diag([1.0, 1.0])
    with pytest.raises(ValueError):
        phase_estimation(np.ones((2, 3)), np.array([1, 0]), 2)
    with pytest.raises(ValueError):
        phase_estimation(unitary, np.array([1, 0, 0]), 2)
    with pytest.raises(ValueError):
        phase_estimation(unitary, np.array([1, 0]), 0)


def test_phase_from_eigenvalue_wraps():
    assert phase_from_eigenvalue(np.exp(2j * math.pi * 0.7)) == (
        pytest.approx(0.7)
    )
    assert phase_from_eigenvalue(1.0) == pytest.approx(0.0)
    assert phase_from_eigenvalue(-1.0) == pytest.approx(0.5)
