"""Tests for error mitigation (ZNE and readout correction)."""

import numpy as np
import pytest

from repro.quantum import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    Parameter,
    PauliString,
    ReadoutMitigator,
    StatevectorSimulator,
    fold_circuit,
    zero_noise_extrapolation,
)


@pytest.fixture(scope="module")
def test_circuit():
    return Circuit(2).h(0).cx(0, 1).ry(0.4, 0)


@pytest.fixture(scope="module")
def observable():
    return PauliString("ZZ")


# ----------------------------------------------------------------------
# Folding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scale", [1.0, 1.5, 2.0, 3.0, 5.0])
def test_folding_preserves_unitary(test_circuit, scale):
    sim = StatevectorSimulator()
    folded = fold_circuit(test_circuit, scale)
    assert np.allclose(sim.run(folded), sim.run(test_circuit))


def test_folding_scales_gate_count(test_circuit):
    base = len(test_circuit)
    tripled = fold_circuit(test_circuit, 3.0)
    assert len(tripled) == 3 * base


def test_partial_fold_increases_gate_count(test_circuit):
    base = len(test_circuit)
    partial = fold_circuit(test_circuit, 1.5)
    assert base < len(partial) < 3 * base


def test_folding_validations(test_circuit):
    with pytest.raises(ValueError):
        fold_circuit(test_circuit, 0.5)
    symbolic = Circuit(1).rx(Parameter("t"), 0)
    with pytest.raises(ValueError):
        fold_circuit(symbolic, 2.0)


def test_folding_empty_circuit():
    assert len(fold_circuit(Circuit(1), 3.0)) == 0


# ----------------------------------------------------------------------
# Zero-noise extrapolation
# ----------------------------------------------------------------------
def test_zne_improves_over_noisy_value(test_circuit, observable):
    ideal = StatevectorSimulator().expectation(test_circuit, observable)
    noise = NoiseModel.depolarizing(0.02)
    result = zero_noise_extrapolation(
        test_circuit, observable, noise,
        scale_factors=(1.0, 2.0, 3.0), order=1,
    )
    assert abs(result.mitigated_value - ideal) < abs(
        result.noisy_value - ideal
    )


def test_zne_higher_order_helps_more():
    """On a deeper circuit with odd-integer folds (exact whole folds,
    no partial-fold rounding) quadratic extrapolation tracks the
    exponential decay better than linear."""
    circuit = Circuit(2)
    for _ in range(3):
        circuit.h(0).cx(0, 1).ry(0.3, 0).rz(0.2, 1)
    observable = PauliString("ZZ")
    ideal = StatevectorSimulator().expectation(circuit, observable)
    noise = NoiseModel.depolarizing(0.01)
    linear = zero_noise_extrapolation(
        circuit, observable, noise,
        scale_factors=(1.0, 3.0, 5.0), order=1,
    )
    quadratic = zero_noise_extrapolation(
        circuit, observable, noise,
        scale_factors=(1.0, 3.0, 5.0), order=2,
    )
    assert (abs(quadratic.mitigated_value - ideal)
            <= abs(linear.mitigated_value - ideal) + 0.02)
    assert (abs(quadratic.mitigated_value - ideal)
            < abs(quadratic.measured_values[0] - ideal))


def test_zne_measured_values_decay_with_scale(test_circuit, observable):
    noise = NoiseModel.depolarizing(0.03)
    result = zero_noise_extrapolation(
        test_circuit, observable, noise, scale_factors=(1.0, 2.0, 3.0)
    )
    values = result.measured_values
    assert abs(values[0]) > abs(values[-1])


def test_zne_noiseless_is_exact(test_circuit, observable):
    ideal = StatevectorSimulator().expectation(test_circuit, observable)
    clean = NoiseModel.depolarizing(0.0)
    result = zero_noise_extrapolation(
        test_circuit, observable, clean, scale_factors=(1.0, 2.0)
    )
    assert result.mitigated_value == pytest.approx(ideal, abs=1e-9)


def test_zne_validations(test_circuit, observable):
    noise = NoiseModel.depolarizing(0.01)
    with pytest.raises(ValueError):
        zero_noise_extrapolation(test_circuit, observable, noise,
                                 scale_factors=(1.0,), order=1)
    with pytest.raises(ValueError):
        zero_noise_extrapolation(test_circuit, observable, noise,
                                 scale_factors=(0.5, 2.0))


# ----------------------------------------------------------------------
# Readout mitigation
# ----------------------------------------------------------------------
def test_confusion_matrix_structure():
    mitigator = ReadoutMitigator(1, NoiseModel(readout_error=0.1))
    matrix = mitigator.confusion_matrix
    assert matrix.shape == (2, 2)
    assert matrix[0, 0] == pytest.approx(0.9)
    assert matrix[1, 0] == pytest.approx(0.1)
    assert np.allclose(matrix.sum(axis=0), 1.0)


def test_correction_recovers_basis_state():
    noise = NoiseModel(readout_error=0.08)
    mitigator = ReadoutMitigator(2, noise)
    simulator = DensityMatrixSimulator(noise_model=noise)
    measured = simulator.probabilities(Circuit(2).x(0).i(1))
    corrected = mitigator.correct_probabilities(measured)
    assert corrected[0b10] == pytest.approx(1.0, abs=1e-9)


def test_correction_of_counts_dict():
    noise = NoiseModel(readout_error=0.05)
    mitigator = ReadoutMitigator(1, noise)
    corrected = mitigator.correct_counts({"0": 95, "1": 5})
    assert corrected[0] == pytest.approx(1.0, abs=1e-9)


def test_corrected_distribution_is_valid():
    mitigator = ReadoutMitigator(2, NoiseModel(readout_error=0.2))
    rng = np.random.default_rng(0)
    raw = rng.dirichlet(np.ones(4))
    corrected = mitigator.correct_probabilities(raw)
    assert corrected.sum() == pytest.approx(1.0)
    assert (corrected >= 0).all()


def test_readout_mitigator_validations():
    with pytest.raises(ValueError):
        ReadoutMitigator(0, NoiseModel())
    with pytest.raises(ValueError):
        ReadoutMitigator(7, NoiseModel())
    mitigator = ReadoutMitigator(1, NoiseModel())
    with pytest.raises(ValueError):
        mitigator.correct_probabilities(np.ones(3))
    with pytest.raises(ValueError):
        mitigator.correct_counts({})
