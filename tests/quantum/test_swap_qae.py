"""Tests for the swap test and amplitude estimation."""

import math

import pytest

from repro.quantum import (
    Circuit,
    amplitude_estimation,
    classical_sample_estimate,
    swap_test_circuit,
    swap_test_overlap,
)


# ----------------------------------------------------------------------
# Swap test
# ----------------------------------------------------------------------
def test_swap_test_identical_states():
    a = Circuit(1).ry(0.9, 0)
    assert swap_test_overlap(a, a) == pytest.approx(1.0)


def test_swap_test_orthogonal_states():
    a = Circuit(1)
    b = Circuit(1).x(0)
    assert swap_test_overlap(a, b) == pytest.approx(0.0, abs=1e-9)


def test_swap_test_matches_analytic_overlap():
    a = Circuit(1).ry(0.8, 0)
    b = Circuit(1).ry(1.4, 0)
    expected = math.cos((1.4 - 0.8) / 2) ** 2
    assert swap_test_overlap(a, b) == pytest.approx(expected)


def test_swap_test_two_qubit_states():
    bell = Circuit(2).h(0).cx(0, 1)
    product = Circuit(2).h(0).h(1)
    # |<bell|++>|^2 = |(1 + 1) / (sqrt2 * 2)|^2 = 1/2.
    assert swap_test_overlap(bell, product) == pytest.approx(0.5)


def test_swap_test_shots_converge():
    a = Circuit(1).ry(0.5, 0)
    b = Circuit(1).ry(2.0, 0)
    exact = swap_test_overlap(a, b)
    noisy = swap_test_overlap(a, b, shots=40_000, seed=0)
    assert noisy == pytest.approx(exact, abs=0.02)


def test_swap_test_circuit_structure():
    qc = swap_test_circuit(Circuit(2).h(0), Circuit(2).x(1))
    assert qc.num_qubits == 5
    assert qc.count_ops()["cswap"] == 2
    assert qc.count_ops()["h"] == 3  # prep H + two ancilla H


def test_swap_test_register_mismatch():
    with pytest.raises(ValueError):
        swap_test_circuit(Circuit(1), Circuit(2))


def test_swap_test_rejects_zero_shots():
    with pytest.raises(ValueError):
        swap_test_overlap(Circuit(1), Circuit(1), shots=0)


# ----------------------------------------------------------------------
# Amplitude estimation
# ----------------------------------------------------------------------
def test_qae_single_qubit_amplitude():
    target = 0.3
    theta = 2 * math.asin(math.sqrt(target))
    result = amplitude_estimation(Circuit(1).ry(theta, 0), [1],
                                  num_eval_qubits=6)
    assert result.true_amplitude == pytest.approx(target)
    assert result.error < math.pi / 2 ** 5  # within grid resolution


def test_qae_error_shrinks_with_eval_qubits():
    theta = 2 * math.asin(math.sqrt(0.3))
    prep = Circuit(1).ry(theta, 0)
    coarse = amplitude_estimation(prep, [1], num_eval_qubits=3)
    fine = amplitude_estimation(prep, [1], num_eval_qubits=6)
    assert fine.error <= coarse.error + 1e-9


def test_qae_exact_on_grid_amplitude():
    # a = sin^2(pi / 4) = 0.5 sits exactly on the 3-bit phase grid.
    theta = 2 * math.asin(math.sqrt(0.5))
    result = amplitude_estimation(Circuit(1).ry(theta, 0), [1],
                                  num_eval_qubits=3)
    assert result.estimate == pytest.approx(0.5, abs=1e-6)


def test_qae_multi_qubit_uniform():
    prep = Circuit(3).h(0).h(1).h(2)
    result = amplitude_estimation(prep, [0, 1], num_eval_qubits=6)
    assert result.true_amplitude == pytest.approx(0.25)
    assert result.error < 0.05


def test_qae_grover_call_accounting():
    result = amplitude_estimation(Circuit(1).h(0), [1],
                                  num_eval_qubits=4)
    assert result.grover_calls == 15


def test_qae_validations():
    with pytest.raises(ValueError):
        amplitude_estimation(Circuit(1).h(0), [], num_eval_qubits=3)
    with pytest.raises(ValueError):
        amplitude_estimation(Circuit(1).h(0), [5], num_eval_qubits=3)
    with pytest.raises(ValueError):
        amplitude_estimation(Circuit(1).h(0), [1], num_eval_qubits=0)


def test_classical_sampling_baseline_unbiased():
    theta = 2 * math.asin(math.sqrt(0.3))
    prep = Circuit(1).ry(theta, 0)
    estimate = classical_sample_estimate(prep, [1], shots=50_000, seed=2)
    assert estimate == pytest.approx(0.3, abs=0.02)


def test_classical_sampling_rejects_zero_shots():
    with pytest.raises(ValueError):
        classical_sample_estimate(Circuit(1), [0], shots=0)


# ----------------------------------------------------------------------
# Quantum counting
# ----------------------------------------------------------------------
def test_quantum_counting_accuracy():
    from repro.quantum import quantum_counting

    for marked in ([3], [1, 5, 9], list(range(6))):
        estimate = quantum_counting(4, marked, num_eval_qubits=7)
        assert estimate == pytest.approx(len(marked), abs=0.5)


def test_quantum_counting_rejects_empty():
    from repro.quantum import quantum_counting

    with pytest.raises(ValueError):
        quantum_counting(3, [])
