"""Multiple-query optimization on a simulated annealer.

Reproduces the Trummer-Koch workflow — the first database problem ever
run on quantum annealing hardware: a batch of queries with alternative
plans and cross-query sharing opportunities is compiled into a QUBO,
solved by exhaustive search, greedy hill climbing and simulated
annealing, and compared.

Run with::

    python examples/multiple_query_optimization.py
"""

from repro.db import (
    MQOProblem,
    MQOQUBO,
    solve_mqo_annealing,
    solve_mqo_exhaustive,
    solve_mqo_greedy,
)


def main() -> None:
    problem = MQOProblem.random(
        num_queries=7, plans_per_query=3,
        sharing_probability=0.35, seed=21,
    )
    print(f"{problem.num_queries} queries x 3 plans "
          f"= {3 ** problem.num_queries:,} plan combinations, "
          f"{len(problem.savings)} sharing opportunities\n")

    compiler = MQOQUBO(problem)
    qubo = compiler.build()
    print(f"QUBO: {qubo.num_variables} variables, penalty weight "
          f"{compiler.penalty_weight():.1f}\n")

    selection, cost = solve_mqo_exhaustive(problem)
    print(f"exhaustive optimum:  cost {cost:8.1f}  plans {selection}")

    selection, cost_greedy = solve_mqo_greedy(problem)
    print(f"greedy hill climb:   cost {cost_greedy:8.1f}  "
          f"plans {selection}  ({cost_greedy / cost:.3f}x)")

    selection, cost_annealed = solve_mqo_annealing(problem)
    print(f"simulated annealing: cost {cost_annealed:8.1f}  "
          f"plans {selection}  ({cost_annealed / cost:.3f}x)")


if __name__ == "__main__":
    main()
