"""Learned cardinality estimation on correlated data.

Builds a synthetic table whose columns are strongly correlated — the
regime where the classical histogram estimator's independence
assumption fails — then compares four estimators by q-error:

* per-column histograms (the classical optimizer default),
* linear regression on log-cardinality,
* a small MLP,
* a variational quantum regressor.

Run with::

    python examples/cardinality_estimation.py
"""

import numpy as np

from repro.baselines import MLP, LinearRegression
from repro.db import (
    evaluate_q_errors,
    histogram_estimates,
    make_cardinality_dataset,
)
from repro.qml import AngleEncoding, VariationalRegressor


def main() -> None:
    dataset = make_cardinality_dataset(
        num_rows=1500, num_queries=120, correlation=0.9, seed=5
    )
    print(f"table: {dataset.table.num_rows} rows, columns "
          f"{dataset.column_order} (correlation 0.9)")
    print(f"workload: {len(dataset.queries)} conjunctive range queries\n")

    rng = np.random.default_rng(5)
    order = rng.permutation(len(dataset.queries))
    cut = int(0.7 * order.size)
    train, test = order[:cut], order[cut:]
    features = dataset.features
    labels = dataset.log_cardinalities
    truths = dataset.cardinalities[test]

    def report(name, estimates):
        summary = evaluate_q_errors(estimates, truths)
        print(f"{name:<12} median q-error {summary['median']:6.2f}   "
              f"p90 {summary['p90']:7.2f}   max {summary['max']:8.2f}")

    report("histogram", histogram_estimates(dataset)[test])

    linear = LinearRegression().fit(features[train], labels[train])
    report("linear", np.expm1(np.clip(linear.predict(features[test]),
                                      0, 30)))

    mlp = MLP(hidden=(32, 16), task="regression", max_iter=400,
              learning_rate=0.01, seed=5)
    mlp.fit(features[train], labels[train])
    report("mlp", np.expm1(np.clip(mlp.predict(features[test]), 0, 30)))

    print("training the variational quantum regressor "
          "(4 qubits, a minute or so)...")
    vqc = VariationalRegressor(
        AngleEncoding(features.shape[1], scaling=1.5),
        num_layers=2, epochs=30, batch_size=24, seed=5,
    )
    vqc.fit(features[train], labels[train])
    report("vqc", np.expm1(np.clip(vqc.predict(features[test]), 0, 30)))


if __name__ == "__main__":
    main()
