"""Minor embedding: running a dense problem on sparse hardware.

Physical annealers expose a sparse Chimera lattice, so a dense logical
problem (here: a fully connected 6-spin glass) must be minor-embedded:
logical variables become chains of physical qubits. This example walks
the whole hardware pipeline — embed, compile with a chain-strength
coupling, anneal the physical model, majority-vote back — and compares
against solving the logical model directly.

Run with::

    python examples/embedded_annealing.py
"""

from repro.annealing import (
    EmbeddedSolver,
    IsingModel,
    SimulatedAnnealingSolver,
    chimera_graph,
    embed_ising,
    find_embedding,
    solve_ising_exact,
)


def main() -> None:
    hardware = chimera_graph(2, 2, shore=4)
    print(f"hardware: 2x2 Chimera, {hardware.number_of_nodes()} qubits, "
          f"{hardware.number_of_edges()} couplers")

    model = IsingModel.random(6, density=1.0, field_scale=0.4, seed=3)
    print(f"logical problem: K6 spin glass, {len(model.j)} couplings "
          f"(needs all-to-all connectivity)\n")

    embedding = find_embedding(list(model.j), hardware, seed=0)
    print("embedding chains (logical variable -> physical qubits):")
    for variable in sorted(embedding.chains):
        chain = embedding.chains[variable]
        print(f"  {variable}: {chain}")
    print(f"physical qubits used: {embedding.num_physical_qubits}, "
          f"longest chain: {embedding.max_chain_length()}\n")

    physical = embed_ising(model, embedding, hardware)
    print(f"compiled physical model: {physical.num_spins} spins, "
          f"{len(physical.j)} couplings (chains bound "
          f"ferromagnetically)\n")

    solver = EmbeddedSolver(
        SimulatedAnnealingSolver(num_sweeps=500, num_reads=30, seed=1),
        hardware, seed=0,
    )
    embedded_result = solver.solve(model)

    direct_result = SimulatedAnnealingSolver(
        num_sweeps=500, num_reads=30, seed=2
    ).solve(model)
    _, exact_energy = solve_ising_exact(model)

    print(f"exact ground energy:        {exact_energy:.4f}")
    print(f"direct (all-to-all) anneal: {direct_result.best_energy:.4f}")
    print(f"embedded hardware anneal:   {embedded_result.best_energy:.4f}")
    print(f"chain-break fraction:       "
          f"{solver.last_chain_break_fraction:.3f}")


if __name__ == "__main__":
    main()
