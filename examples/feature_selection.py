"""QUBO feature selection for a learned database component.

Builds a dataset whose features include informative signals, a
redundant near-copy and pure noise — the situation a cardinality or
cost model faces when fed overlapping statistics — then selects k
features three ways: exact enumeration, greedy mRMR and the
quantum-annealing QUBO route, and shows the selection's effect on a
downstream classifier.

Run with::

    python examples/feature_selection.py
"""

import numpy as np

from repro.baselines import LogisticRegression
from repro.qml import (
    FeatureSelectionProblem,
    FeatureSelectionQUBO,
    select_features_annealing,
    select_features_exact,
    select_features_greedy,
)


def main() -> None:
    rng = np.random.default_rng(9)
    n = 800
    informative = rng.normal(size=(n, 3))
    labels = (informative.sum(axis=1) > 0).astype(int)
    copies = informative[:, :2] + rng.normal(scale=0.15, size=(n, 2))
    noise = rng.normal(size=(n, 7))
    X = np.column_stack([informative, copies, noise])
    names = ([f"signal{i}" for i in range(3)]
             + [f"copy{i}" for i in range(2)]
             + [f"noise{i}" for i in range(7)])
    print(f"dataset: {n} rows, {X.shape[1]} features "
          "(3 signals, 2 redundant copies, 7 noise)\n")

    problem = FeatureSelectionProblem.from_data(X, labels, num_selected=3)
    print("relevance I(f; y):")
    for name, value in zip(names, problem.relevance):
        print(f"  {name:<8} {value:.3f}")
    print()

    compiler = FeatureSelectionQUBO(problem)
    print(f"QUBO: {compiler.build().num_variables} variables, "
          f"cardinality penalty weight {compiler.penalty_weight():.2f}\n")

    def show(label, selection, value):
        chosen = ", ".join(names[i] for i in selection)
        clf = LogisticRegression(max_iter=300).fit(X[:, selection], labels)
        accuracy = clf.score(X[:, selection], labels)
        print(f"{label:<10} {{{chosen}}}  objective {value:.3f}  "
              f"downstream accuracy {accuracy:.3f}")

    show("exact:", *select_features_exact(problem))
    show("greedy:", *select_features_greedy(problem))
    show("annealed:", *select_features_annealing(problem))

    all_features = LogisticRegression(max_iter=300).fit(X, labels)
    print(f"\nall 12 features baseline accuracy: "
          f"{all_features.score(X, labels):.3f}")


if __name__ == "__main__":
    main()
