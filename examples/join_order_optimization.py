"""Join-order optimization: exact DP vs greedy vs quantum-annealing QUBO.

Generates a star-topology join query (a fact table joined to several
dimensions), then optimizes it three ways and compares plan costs under
the C_out cost model:

* dynamic programming over relation subsets (exact, exponential),
* Greedy Operator Ordering (polynomial heuristic),
* QUBO + simulated annealing — the route a quantum annealer would take,
  as presented in the SIGMOD tutorial.

Run with::

    python examples/join_order_optimization.py
"""

from repro.annealing import SimulatedAnnealingSolver
from repro.db import (
    JoinOrderQUBO,
    dp_optimal,
    greedy_goo,
    random_join_graph,
    solve_join_order_annealing,
)


def main() -> None:
    graph = random_join_graph(
        7, topology="star",
        min_cardinality=100, max_cardinality=1_000_000,
        seed=42,
    )
    names = [f"dim{i}" if i else "fact" for i in range(7)]
    print("Query graph: star join over 7 relations")
    for i, card in enumerate(graph.cardinalities):
        print(f"  {names[i]}: {card:,.0f} rows")
    print()

    # 1. Exact DP (bushy trees).
    dp_tree, dp_cost = dp_optimal(graph, bushy=True)
    print(f"DP optimal plan   (cost {dp_cost:,.0f}):")
    print(f"  {dp_tree.display(names)}")

    # 2. Greedy Operator Ordering.
    greedy_tree, greedy_cost = greedy_goo(graph)
    print(f"Greedy GOO plan   (cost {greedy_cost:,.0f}, "
          f"{greedy_cost / dp_cost:.2f}x optimal):")
    print(f"  {greedy_tree.display(names)}")

    # 3. QUBO + simulated annealing (the quantum-annealer route).
    formulation = JoinOrderQUBO(graph)
    qubo = formulation.build()
    print(f"\nQUBO encoding: {qubo.num_variables} binary variables "
          f"({graph.num_relations}x{graph.num_relations} one-hot), "
          f"penalty weight {formulation.penalty_weight():.1f}")
    decoded = solve_join_order_annealing(
        graph,
        solver=SimulatedAnnealingSolver(num_sweeps=600, num_reads=30,
                                        seed=7),
    )
    order_names = " -> ".join(names[r] for r in decoded.order)
    print(f"Annealed plan     (cost {decoded.cost:,.0f}, "
          f"{decoded.cost / dp_cost:.2f}x optimal, "
          f"one-hot valid: {decoded.valid}):")
    print(f"  left-deep order: {order_names}")


if __name__ == "__main__":
    main()
