"""Quickstart: the three layers of the library in ~60 lines.

1. Gate-model simulation: build and run a Bell circuit.
2. Quantum machine learning: train a variational classifier.
3. Annealing for database optimization: solve a tiny QUBO.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.annealing import QUBO, anneal_qubo, solve_qubo_exact
from repro.datasets import make_moons, minmax_scale, train_test_split
from repro.qml import AngleEncoding, VariationalClassifier
from repro.quantum import Circuit, PauliString, StatevectorSimulator


def bell_circuit() -> None:
    """Simulate a Bell pair and verify its correlations."""
    print("=== 1. Gate-model simulation ===")
    qc = Circuit(2).h(0).cx(0, 1)
    sim = StatevectorSimulator(seed=7)
    counts = sim.sample_counts(qc, shots=1000)
    print(f"Bell-state samples over 1000 shots: {counts}")
    zz = sim.expectation(qc, PauliString("ZZ"))
    print(f"<ZZ> = {zz:+.3f} (perfect correlation is +1)\n")


def variational_classifier() -> None:
    """Train a VQC on the two-moons task."""
    print("=== 2. Variational quantum classifier ===")
    X, y = make_moons(80, noise=0.1, seed=1)
    X = minmax_scale(X)
    X_train, X_test, y_train, y_test = train_test_split(X, y, 0.3, seed=1)
    clf = VariationalClassifier(
        AngleEncoding(2, scaling=np.pi, entangle=True),
        num_layers=3, epochs=40, seed=1,
    )
    clf.fit(X_train, y_train)
    print(f"train accuracy: {clf.score(X_train, y_train):.2f}")
    print(f"test accuracy:  {clf.score(X_test, y_test):.2f}")
    print(f"loss went {clf.loss_history_[0]:.3f} -> "
          f"{clf.loss_history_[-1]:.3f} over {clf.epochs} epochs\n")


def annealed_qubo() -> None:
    """Formulate and anneal a miniature assignment QUBO."""
    print("=== 3. QUBO + simulated annealing ===")
    # Pick exactly one of three options, preferring the cheapest.
    qubo = QUBO(3)
    for option, cost in enumerate([5.0, 1.0, 3.0]):
        qubo.add_linear(option, cost)
    qubo.add_penalty_exactly_one([0, 1, 2], weight=20.0)
    annealed = anneal_qubo(qubo, num_sweeps=100, num_reads=10, seed=2)
    exact = solve_qubo_exact(qubo)
    print(f"annealed solution: {annealed.best_assignment} "
          f"energy {annealed.best_energy:.1f}")
    print(f"exact solution:    {np.asarray(exact.assignment)} "
          f"energy {exact.energy:.1f}")


if __name__ == "__main__":
    bell_circuit()
    variational_classifier()
    annealed_qubo()
