"""Optimize a join query and actually execute the plan.

The full database loop: build a star schema with real (synthetic)
data, derive optimizer statistics, compile the query to a join graph,
optimize it four ways (exact DP, greedy, annealed QUBO, Q-learning),
then *run* the winning plans through the hash-join executor and
compare estimated against measured intermediate sizes.

Run with::

    python examples/optimize_and_execute.py
"""

from repro.db import (
    EquiJoinPredicate,
    HashJoinExecutor,
    PhysicalQuery,
    dp_optimal,
    greedy_goo,
    left_deep_tree,
    make_star_schema,
    solve_join_order_annealing,
    solve_join_order_rl,
    validate_cost_model,
)


def main() -> None:
    catalog = make_star_schema(
        fact_rows=5000, dimension_rows=(100, 50, 20), seed=7
    )
    query = PhysicalQuery(
        catalog=catalog,
        tables=["fact", "dim0", "dim1", "dim2"],
        predicates=[
            EquiJoinPredicate("fact", "fk0", "dim0", "id"),
            EquiJoinPredicate("fact", "fk1", "dim1", "id"),
            EquiJoinPredicate("fact", "fk2", "dim2", "id"),
        ],
    )
    graph = query.to_join_graph()
    print("statistics-derived join graph:")
    for name, card in zip(query.tables, graph.cardinalities):
        print(f"  {name}: {card:,.0f} rows")
    print()

    executor = HashJoinExecutor(query)

    dp_tree, dp_estimate = dp_optimal(graph)
    greedy_tree, greedy_estimate = greedy_goo(graph)
    annealed = solve_join_order_annealing(graph)
    rl_order, rl_estimate = solve_join_order_rl(graph, episodes=1200,
                                                seed=7)

    plans = [
        ("DP (bushy)", dp_tree, dp_estimate),
        ("greedy GOO", greedy_tree, greedy_estimate),
        ("annealed QUBO", left_deep_tree(annealed.order), annealed.cost),
        ("Q-learning", left_deep_tree(rl_order), rl_estimate),
    ]
    print(f"{'optimizer':<15} {'estimated C_out':>16} "
          f"{'measured C_out':>15} {'rows':>6}")
    for name, tree, estimate in plans:
        result = executor.execute(tree)
        print(f"{name:<15} {estimate:>16,.0f} "
              f"{result.actual_cost:>15,.0f} {result.row_count:>6}")
    print()

    print("cost-model validation on the DP plan (per join node):")
    for record in validate_cost_model(query, dp_tree):
        print(f"  {int(record['num_relations'])} relations: "
              f"estimated {record['estimated']:,.0f}, "
              f"actual {record['actual']:,.0f}, "
              f"q-error {record['q_error']:.2f}")


if __name__ == "__main__":
    main()
