"""Transaction scheduling via conflict-graph colouring QUBO.

Generates a batch of transactions with random read/write sets, builds
the conflict graph, and schedules them into conflict-free batches
three ways: FCFS, greedy graph colouring, and the annealed QUBO
colouring the quantum-database literature proposes.

Run with::

    python examples/transaction_scheduling.py
"""

from repro.db import (
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    minimum_slots_annealing,
    schedule_fcfs,
    schedule_greedy_first_fit,
)


def describe(problem, label, schedule):
    slots = problem.makespan(schedule)
    violations = problem.num_conflict_violations(schedule)
    print(f"{label:<22} {slots} batches, {violations} conflicts")
    by_slot = {}
    for transaction, slot in enumerate(schedule):
        by_slot.setdefault(slot, []).append(f"T{transaction}")
    for slot in sorted(by_slot):
        print(f"    batch {slot}: {', '.join(by_slot[slot])}")


def main() -> None:
    problem = TransactionSchedulingProblem.random(
        num_transactions=12, num_objects=9,
        operations_per_transaction=4, seed=11,
    )
    print(f"{problem.num_transactions} transactions, "
          f"{len(problem.conflicts)} conflicting pairs")
    for t, txn in enumerate(problem.transactions):
        reads = ",".join(sorted(txn.reads)) or "-"
        writes = ",".join(sorted(txn.writes)) or "-"
        print(f"  T{t}: reads {{{reads}}} writes {{{writes}}}")
    print()

    describe(problem, "FCFS:", schedule_fcfs(problem))
    print()
    describe(problem, "greedy colouring:",
             schedule_greedy_first_fit(problem))
    print()

    greedy_slots = problem.makespan(schedule_greedy_first_fit(problem))
    compiler = TransactionSchedulingQUBO(problem, greedy_slots)
    print(f"QUBO at k={greedy_slots} slots: "
          f"{compiler.build().num_variables} variables, penalty "
          f"{compiler.penalty_weight():.2f}")
    annealed = minimum_slots_annealing(problem)
    describe(problem, "annealed colouring:", annealed)


if __name__ == "__main__":
    main()
