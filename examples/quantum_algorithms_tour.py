"""A tour of the quantum algorithm primitives behind the tutorial.

Four foundations demos, each solving a miniature problem the tutorial
connects to database research:

* Grover search — finding a record in an unstructured table,
* Dürr–Høyer minimum finding — picking the cheapest join order,
* quantum phase estimation — the engine of eigenvalue algorithms,
* HHL — solving a linear system (the quantum SVM/least-squares core).

Run with::

    python examples/quantum_algorithms_tour.py
"""

import math

import numpy as np

from repro.db import exhaustive_left_deep, random_join_graph, solve_join_order_grover
from repro.quantum import (
    classical_reference,
    grover_search,
    hhl_solve,
    optimal_iterations,
    phase_estimation,
)


def grover_demo() -> None:
    print("=== Grover search ===")
    # 16 'records', one matching the query predicate.
    result = grover_search(4, marked=[11])
    print(f"16 records, 1 match: {result.iterations} oracle calls "
          f"(classically ~8 on average)")
    print(f"success probability {result.success_probability:.3f}, "
          f"top readout state {result.top_state} (wanted 11)")
    print(f"scaling check: 1-in-64 needs "
          f"{optimal_iterations(6, 1)} calls, "
          f"1-in-256 needs {optimal_iterations(8, 1)}\n")


def minimum_finding_demo() -> None:
    print("=== Durr-Hoyer minimum finding: cheapest join order ===")
    graph = random_join_graph(5, "cycle", seed=13)
    order, cost = solve_join_order_grover(graph, seed=0)
    _, best = exhaustive_left_deep(graph)
    print(f"120 candidate left-deep orders")
    print(f"grover-found order {order} cost {cost:,.0f}")
    print(f"exhaustive optimum cost      {best:,.0f} "
          f"(match: {abs(cost - best) < 1e-6})\n")


def phase_estimation_demo() -> None:
    print("=== Quantum phase estimation ===")
    phi = 5 / 16
    unitary = np.diag([1.0, np.exp(2j * math.pi * phi)])
    result = phase_estimation(unitary, np.array([0, 1], dtype=complex),
                              num_bits=4)
    print(f"hidden eigenphase {phi}, estimated "
          f"{result.estimated_phase} with 4 counting qubits\n")


def hhl_demo() -> None:
    print("=== HHL linear-system solver ===")
    a = np.array([[1.5, 0.5], [0.5, 1.5]])  # eigenvalues 1 and 2
    b = np.array([1.0, 0.0])
    result = hhl_solve(a, b, num_clock_bits=3)
    reference = classical_reference(a, b)
    print(f"A = [[1.5, 0.5], [0.5, 1.5]], b = [1, 0]")
    print(f"|x> amplitudes (quantum):  "
          f"{np.round(result.solution.real, 4)}")
    print(f"A^-1 b normalized (numpy): {np.round(reference.real, 4)}")
    print(f"fidelity {result.fidelity_with(reference):.4f}, "
          f"postselection probability "
          f"{result.success_probability:.3f}")


if __name__ == "__main__":
    grover_demo()
    minimum_finding_demo()
    phase_estimation_demo()
    hhl_demo()
