"""The NISQ toolbox: noise, characterization, and error mitigation.

Walks the near-term-hardware reality the tutorial warns about, on this
library's own simulators:

1. how gate noise corrupts an expectation value,
2. state tomography — measuring what the device actually prepared,
3. zero-noise extrapolation — recovering the ideal value by noise
   amplification and extrapolation,
4. readout-error correction via confusion-matrix inversion.

Run with::

    python examples/nisq_toolbox.py
"""


from repro.quantum import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    PauliString,
    ReadoutMitigator,
    StatevectorSimulator,
    state_tomography,
    zero_noise_extrapolation,
)


def main() -> None:
    circuit = Circuit(2)
    for _ in range(3):
        circuit.h(0).cx(0, 1).ry(0.3, 0).rz(0.2, 1)
    observable = PauliString("ZZ")
    ideal = StatevectorSimulator().expectation(circuit, observable)

    print("=== 1. Noise corrupts the signal ===")
    print(f"ideal <ZZ> = {ideal:+.4f}")
    for rate in (0.005, 0.01, 0.02):
        noise = NoiseModel.depolarizing(rate)
        noisy = DensityMatrixSimulator(noise_model=noise).expectation(
            circuit, observable
        )
        print(f"  depolarizing p={rate}: <ZZ> = {noisy:+.4f} "
              f"(error {abs(noisy - ideal):.4f})")
    print()

    print("=== 2. State tomography ===")
    bell = Circuit(2).h(0).cx(0, 1)
    result = state_tomography(bell, shots_per_setting=500, seed=1)
    fidelity = result.fidelity_with_state(
        StatevectorSimulator().run(bell)
    )
    print(f"reconstructed the Bell state from "
          f"{result.num_settings} Pauli settings x "
          f"{result.shots_per_setting} shots: fidelity {fidelity:.4f}, "
          f"purity {result.purity():.4f}\n")

    print("=== 3. Zero-noise extrapolation ===")
    noise = NoiseModel.depolarizing(0.01)
    zne = zero_noise_extrapolation(
        circuit, observable, noise,
        scale_factors=(1.0, 3.0, 5.0), order=2,
    )
    print(f"measured at noise scales {zne.scale_factors}: "
          f"{[f'{v:+.4f}' for v in zne.measured_values]}")
    print(f"raw error {abs(zne.noisy_value - ideal):.4f} -> "
          f"mitigated error {abs(zne.mitigated_value - ideal):.4f}\n")

    print("=== 4. Readout-error correction ===")
    readout_noise = NoiseModel(readout_error=0.08)
    mitigator = ReadoutMitigator(2, readout_noise)
    simulator = DensityMatrixSimulator(noise_model=readout_noise, seed=2)
    counts = simulator.sample_counts(Circuit(2).x(0).i(1), shots=4000)
    print(f"raw counts for prepared |10>: {dict(sorted(counts.items()))}")
    corrected = mitigator.correct_counts(counts)
    print(f"corrected P(10) = {corrected[0b10]:.3f} "
          f"(raw was {counts.get('10', 0) / 4000:.3f})")


if __name__ == "__main__":
    main()
