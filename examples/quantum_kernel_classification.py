"""Quantum-kernel classification on data linear kernels cannot split.

Builds a fidelity quantum kernel over an IQP feature map and compares
it against linear and RBF kernel SVMs on two tasks:

* concentric circles (nonlinear but RBF-friendly), and
* the parity problem (the classic linear-kernel killer).

Also reports kernel-target alignment, the cheap a-priori predictor of
kernel usefulness the tutorial highlights.

Run with::

    python examples/quantum_kernel_classification.py
"""

import numpy as np

from repro.baselines import SVM, median_heuristic_gamma
from repro.datasets import make_circles, make_parity, minmax_scale, train_test_split
from repro.qml import (
    FidelityQuantumKernel,
    IQPEncoding,
    QuantumKernelClassifier,
    kernel_target_alignment,
)


def evaluate(name, X, y, seed=0):
    X_train, X_test, y_train, y_test = train_test_split(X, y, 0.3,
                                                        seed=seed)
    print(f"--- {name} ({X.shape[0]} points, {X.shape[1]} features) ---")

    linear = SVM(kernel="linear", C=5.0, seed=seed).fit(X_train, y_train)
    print(f"linear-kernel SVM:   {linear.score(X_test, y_test):.2f}")

    rbf = SVM(kernel="rbf", gamma=median_heuristic_gamma(X_train),
              C=5.0, seed=seed).fit(X_train, y_train)
    print(f"RBF-kernel SVM:      {rbf.score(X_test, y_test):.2f}")

    kernel = FidelityQuantumKernel(IQPEncoding(X.shape[1], depth=2))
    clf = QuantumKernelClassifier(kernel=kernel, C=5.0, seed=seed)
    clf.fit(X_train, y_train)
    alignment = kernel_target_alignment(kernel(X_train), y_train)
    print(f"quantum IQP kernel:  {clf.score(X_test, y_test):.2f} "
          f"(train alignment {alignment:.3f})")
    print()


def main() -> None:
    X, y = make_circles(90, noise=0.05, seed=3)
    evaluate("concentric circles", minmax_scale(X, 0, np.pi), y)

    X, y = make_parity(4, n_samples=96, seed=3)
    evaluate("4-bit parity", X * np.pi, y)


if __name__ == "__main__":
    main()
