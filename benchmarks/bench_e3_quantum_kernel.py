"""E3 — quantum fidelity kernels separate what linear kernels cannot."""

from repro.experiments import run_experiment


def test_e3_quantum_kernel(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E3", depths=(1, 2), n_samples=64, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    parity = next(r for r in result.rows if r["dataset"] == "parity")
    # Shape: on parity the linear kernel is near chance while the IQP
    # quantum kernel separates the classes.
    assert parity["svm_linear"] <= 0.75
    best_quantum = max(parity["qkernel_d1"], parity["qkernel_d2"])
    assert best_quantum >= parity["svm_linear"] + 0.15
    circles = next(r for r in result.rows if r["dataset"] == "circles")
    assert max(circles["qkernel_d1"], circles["qkernel_d2"]) >= 0.8
