"""E15 — learned (RL) join ordering matches the other families."""

from repro.experiments import run_experiment


def test_e15_rl_join_order(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E15", topologies=("chain", "star"),
                               num_relations=5, instances_per_cell=2,
                               episodes=1200, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: the Q-learner converges into the same near-optimal
        # band as greedy and annealing on small queries.
        assert row["rl_vs_optimal"] < 1.5
        assert row["annealed_vs_optimal"] < 1.5
