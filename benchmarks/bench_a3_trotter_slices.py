"""A3 — SQA Trotter-slice ablation: more imaginary-time resolution,
better tunnelling, then saturation."""

from repro.experiments import run_experiment


def test_a3_trotter_slices(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("A3", slice_counts=(2, 10, 20),
                               cluster_size=6, num_reads=20,
                               num_sweeps=250, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    hits = result.column("hit_rate")
    # Shape: hit rate rises substantially from P=2 to P=20.
    assert hits[-1] > hits[0]
    assert hits[-1] >= 0.7
