"""E5 — data encoding choice drives VQC accuracy at a fixed budget."""

from repro.experiments import run_experiment


def test_e5_encodings(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E5", n_train=50, n_test=30, epochs=18,
                               seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    by_name = {row["encoding"]: row for row in result.rows}
    richer = max(
        by_name["angle+entangle"]["test_accuracy"],
        by_name["reuploading"]["test_accuracy"],
        by_name["amplitude"]["test_accuracy"],
    )
    # Shape: at a fixed budget, at least one richer encoding beats the
    # plain product-state angle map.
    assert richer >= by_name["angle"]["test_accuracy"]
    assert richer >= 0.6
