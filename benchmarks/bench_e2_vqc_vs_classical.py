"""E2 — VQC classifiers reach parity with classical baselines."""

from repro.experiments import run_experiment


def test_e2_vqc_vs_classical(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E2", datasets=("moons", "xor"),
                               n_samples=70, epochs=18, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: the VQC clears the nonlinear tasks well above chance
        # and lands in the same band as the kernel/NN baselines.
        assert row["vqc"] >= 0.7
        assert row["vqc"] >= row["logistic"] - 0.15
        assert row["svm_rbf"] >= 0.7
