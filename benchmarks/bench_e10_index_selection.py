"""E10 — index selection: QUBO+SA recovers (near-)optimal benefit."""

from repro.experiments import run_experiment


def test_e10_index_selection(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E10", candidate_counts=(10, 14),
                               instances_per_cell=2, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: both methods recover most of the optimal benefit;
        # the annealed route is at least competitive with greedy.
        assert row["annealed_fraction_of_optimum"] >= 0.85
        assert row["greedy_fraction_of_optimum"] >= 0.8
        assert (row["annealed_fraction_of_optimum"]
                >= row["greedy_fraction_of_optimum"] - 0.05)
