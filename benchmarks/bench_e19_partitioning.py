"""E19 — annealed balanced min-cut partitioning vs Kernighan-Lin."""

from repro.experiments import run_experiment


def test_e19_partitioning(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E19", fragment_counts=(8, 12),
                               instances_per_cell=2, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: the annealer matches the exact balanced optimum on
        # both metrics, and keeps shards better size-balanced than KL.
        assert row["annealed_cut"] <= row["exact_cut"] * 1.1 + 1e-9
        assert (row["annealed_imbalance"]
                <= row["kl_imbalance"] + 0.02)
