"""A1 — penalty-weight ablation: the analytic rule sits in the
sweet spot between broken encodings and wasted dynamic range."""

from repro.experiments import run_experiment


def test_a1_penalty_weights(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("A1", scales=(0.01, 0.25, 1.0, 8.0),
                               num_relations=5, instances=3, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    by_scale = {row["penalty_scale"]: row for row in result.rows}
    # Shape: far-too-small weights break the one-hot encodings; the
    # analytic weight (scale 1.0) yields fully valid reads and
    # near-optimal cost.
    assert by_scale[0.01]["valid_read_fraction"] < 0.5
    assert by_scale[1.0]["valid_read_fraction"] == 1.0
    assert by_scale[1.0]["cost_vs_optimal"] < 1.2
