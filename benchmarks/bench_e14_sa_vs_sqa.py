"""E14 — simulated quantum annealing beats thermal SA on tall, thin
energy barriers (weak-strong cluster instances)."""

from repro.experiments import run_experiment


def test_e14_sa_vs_sqa(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E14", cluster_sizes=(3, 5, 7),
                               num_reads=25, num_sweeps=300,
                               trotter_slices=(20,), seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    sa = result.column("sa_hit_rate")
    sqa = result.column("sqa_hit_rate_P20")
    # Shape: the crossover — SA weakens as the barrier grows while
    # SQA's worldline moves keep tunnelling; on the tallest barrier
    # SQA clearly wins.
    assert sqa[-1] > sa[-1]
    assert sqa[-1] >= 0.7
    assert sa[-1] <= sa[0] + 0.1
