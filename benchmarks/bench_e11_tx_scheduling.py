"""E11 — transaction scheduling: annealed colouring needs no more
batches than list-scheduling baselines."""

from repro.experiments import run_experiment


def test_e11_tx_scheduling(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E11", transaction_counts=(8, 12),
                               conflict_levels=(8, 16), seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        assert row["annealed_valid"]
        assert row["annealed_slots"] <= row["greedy_slots"]
        assert row["annealed_slots"] <= row["fcfs_slots"]
    # Shape: denser conflicts (fewer objects) need at least as many
    # slots at equal transaction count.
    for count in (8, 12):
        dense = next(r for r in result.rows
                     if r["transactions"] == count and r["objects"] == 8)
        sparse = next(r for r in result.rows
                      if r["transactions"] == count and r["objects"] == 16)
        assert dense["annealed_slots"] >= sparse["annealed_slots"] - 1
