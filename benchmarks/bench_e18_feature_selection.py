"""E18 — QUBO feature selection recovers (near-)optimal subsets."""

from repro.experiments import run_experiment


def test_e18_feature_selection(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E18", feature_counts=(8, 12),
                               instances_per_cell=2, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: both methods recover most of the exact mRMR objective;
        # the annealed route stays in the same band as greedy.
        assert row["annealed_fraction_of_optimum"] >= 0.9
        assert row["greedy_fraction_of_optimum"] >= 0.85
