"""E1 — statevector simulation cost grows exponentially with qubits."""

from repro.experiments import run_experiment


def test_e1_simulator_scaling(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E1", qubit_range=range(4, 15, 2),
                               depth=10, repeats=2),
        rounds=1, iterations=1,
    )
    show_table(result)
    seconds = result.column("seconds_per_run")
    # Shape: the largest circuit is far more expensive than the
    # smallest. Below ~12 qubits Python per-gate overhead dominates;
    # from 12 -> 14 the 2**n state takes over, so the final
    # two-qubit step costs noticeably more than linear growth would.
    assert seconds[-1] > 5 * seconds[0]
    assert result.column("ratio_to_previous")[-1] > 1.5
