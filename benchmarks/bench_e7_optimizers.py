"""E7 — SPSA matches/beats gradient methods at equal circuit budget."""

from repro.experiments import run_experiment


def test_e7_optimizers(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E7", shots=128, eval_budget=600, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    by_name = {row["optimizer"]: row for row in result.rows}
    # Shape: every optimizer reaches the low-energy region, SPSA takes
    # far more steps for the same budget and is not worse than plain GD.
    assert by_name["spsa"]["steps"] > 5 * by_name["gd"]["steps"]
    assert by_name["spsa"]["final_energy"] <= -0.8
    assert (by_name["spsa"]["final_energy"]
            <= by_name["gd"]["final_energy"] + 0.1)
