"""E8 — join ordering: annealed QUBO tracks the DP optimum."""

from repro.experiments import run_experiment


def test_e8_join_order(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "E8", topologies=("chain", "star", "cycle"),
            sizes=(4, 6, 8), instances_per_cell=2, seed=0,
        ),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        # Shape: both heuristics stay within a small factor of the
        # optimum; the annealer never degrades to random-order costs
        # (which are orders of magnitude off on these instances).
        assert row["annealed_vs_dp"] < 5.0
        assert row["greedy_vs_dp"] < 5.0
    # Shape: DP cost explodes with size while SA's budget is flat.
    dp_small = [r["dp_seconds"] for r in result.rows if r["relations"] == 4]
    dp_large = [r["dp_seconds"] for r in result.rows if r["relations"] == 8]
    assert max(dp_large) > max(dp_small)
