"""E16 — amplitude estimation beats Monte Carlo at equal oracle budget."""

from repro.experiments import run_experiment


def test_e16_amplitude_estimation(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E16", eval_qubit_range=(2, 4, 6),
                               mc_trials=100, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    rows = result.rows
    # Shape: at the largest budget QAE's error is several times below
    # the Monte Carlo RMS error, and QAE improves from the smallest
    # budget to the largest.
    assert rows[-1]["qae_error"] < 0.5 * rows[-1]["mc_rms_error"]
    assert rows[-1]["qae_error"] < rows[0]["qae_error"]
