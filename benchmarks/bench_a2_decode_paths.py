"""A2 — join-order decode-path ablation: annealer signal vs polish."""

from repro.experiments import run_experiment


def test_a2_decode_paths(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("A2", num_relations=7, instances=4,
                               seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    cells = {
        (row["topology"], row["decode_path"]): row["cost_vs_optimal"]
        for row in result.rows
    }
    # Shape: polishing never hurts, and on the hard (cycle) topology
    # the annealer-seeded polish beats 2-opt from a random start —
    # the annealer output carries real signal.
    for topology in ("star", "cycle"):
        assert (cells[(topology, "repair_plus_polish")]
                <= cells[(topology, "repair_only")] + 1e-9)
    assert (cells[("cycle", "repair_plus_polish")]
            <= cells[("cycle", "polish_of_random")] + 0.05)
