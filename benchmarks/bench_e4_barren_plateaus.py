"""E4 — gradient variance decays exponentially with qubit count."""

from repro.experiments import run_experiment


def test_e4_barren_plateaus(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4", qubit_range=(2, 4, 6, 8),
                               depth=4, num_samples=40, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    variances = result.column("gradient_variance")
    # Shape: monotone-ish decay, large-to-small by a sizable factor.
    assert variances[-1] < variances[0] / 2
    assert "decay rate" in result.notes
