"""E9 — multiple-query optimization: annealing tracks the optimum as
the exhaustive plan space explodes."""

from repro.experiments import run_experiment


def test_e9_mqo(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E9", query_counts=(3, 5, 7),
                               instances_per_cell=2, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    for row in result.rows:
        assert row["annealed_vs_exact"] < 1.2
        assert row["greedy_vs_exact"] >= 1.0 - 1e-9
    # Shape: exhaustive enumeration time grows with the plan space.
    times = result.column("exhaustive_seconds")
    assert times[-1] > times[0]
    spaces = result.column("plan_space")
    assert spaces[-1] / spaces[0] > 50
