"""E13 — learned cardinality estimation on correlated columns."""

from repro.experiments import run_experiment


def test_e13_cardinality(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E13", num_rows=1500, num_queries=120,
                               correlation=0.9, epochs=30, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    by_name = {row["estimator"]: row for row in result.rows}
    # Shape: the MLP beats the independence-assumption histogram on the
    # tail, and the VQC regressor lands in the learned-estimator band
    # (same order of magnitude as the linear model), not at histogram-
    # blowup levels.
    assert (by_name["mlp(log)"]["p90_q_error"]
            < by_name["histogram"]["p90_q_error"])
    assert (by_name["mlp(log)"]["median_q_error"]
            < by_name["histogram"]["median_q_error"])
    assert (by_name["vqc(log)"]["median_q_error"]
            < 4 * by_name["linear(log)"]["median_q_error"])
