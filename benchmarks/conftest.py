"""Shared benchmark configuration.

Each ``bench_e*.py`` regenerates one DESIGN.md experiment through
``repro.experiments.run_experiment`` at a benchmark-friendly scale,
prints the same table the full experiment produces (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserts the *shape* of
the result — who wins, and roughly by how much — mirroring the
tutorial's qualitative claims.

Every benchmark runs with telemetry enabled (a fresh collector per
test), and the session writes the collected per-test metrics to a
``BENCH_*.json`` trajectory file — the format future PRs diff against
to spot perf regressions. Set ``REPRO_BENCH_JSON`` to choose the
output path (default: ``BENCH_telemetry.json`` at the repo root); set
it to ``0`` to skip writing.
"""

import json
import os
import time

import pytest

from repro import telemetry
from repro.experiments import format_table

_BENCH_RUNS = []


@pytest.fixture
def show_table():
    """Print an ExperimentResult table after the benchmark body."""

    def render(result):
        print()
        print(format_table(result))
        return result

    return render


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Fresh collector per benchmark; snapshot recorded at teardown."""
    collector = telemetry.enable()
    started = time.perf_counter()
    yield collector
    elapsed = time.perf_counter() - started
    snapshot = collector.snapshot()
    telemetry.disable()
    if snapshot["counters"] or snapshot["spans"]:
        _BENCH_RUNS.append({
            "test": request.node.nodeid,
            "duration_seconds": elapsed,
            **snapshot,
        })


def pytest_sessionfinish(session, exitstatus):
    target = os.environ.get("REPRO_BENCH_JSON", "")
    if target == "0" or not _BENCH_RUNS:
        return
    if not target:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        target = os.path.join(repo_root, "BENCH_telemetry.json")
    document = {
        "schema": "repro-bench/v1",
        "provenance": telemetry.collect_provenance("benchmarks").to_dict(),
        "runs": _BENCH_RUNS,
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
