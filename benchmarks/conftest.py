"""Shared benchmark configuration.

Each ``bench_e*.py`` regenerates one DESIGN.md experiment through
``repro.experiments.run_experiment`` at a benchmark-friendly scale,
prints the same table the full experiment produces (visible with
``pytest benchmarks/ --benchmark-only -s``) and asserts the *shape* of
the result — who wins, and roughly by how much — mirroring the
tutorial's qualitative claims.
"""

import pytest

from repro.experiments import format_table


@pytest.fixture
def show_table():
    """Print an ExperimentResult table after the benchmark body."""

    def render(result):
        print()
        print(format_table(result))
        return result

    return render
