"""Batched-vs-loop execution engine benchmark (perf-trajectory gate).

Measures the wall-clock win of the batched execution engine against
faithful re-implementations of the pre-batching Python loops, on two
reference workloads:

* **kernel Gram** — a fidelity-kernel Gram matrix (IQP encoding),
  batched ``Encoding.state_batch`` / ``StatevectorSimulator.run_batch``
  vs one simulator call per data point;
* **SA sweeps** — simulated annealing, read-vectorized ``(reads, n)``
  lock-step sweeps vs the per-read single-spin-flip Python loop;
* **compile dispatch** — the ``repro.compile`` front door
  (``solve(problem, solver="sa", config=...)``) vs calling the same
  seeded backend directly on the compiled model and hand-picking the
  best decode. The gate here is *overhead*, not speedup: dispatch must
  cost < 5% over the direct call.

Timings come from telemetry spans (``perf.<workload>.<impl>``). Run as
a script to write the committed perf trajectory::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

which writes ``BENCH_perf.json`` (schema ``repro-bench/v1``) at the
repo root. Environment knobs: ``REPRO_PERF_SCALE=smoke`` shrinks every
workload for CI smoke runs, ``REPRO_PERF_JSON`` overrides the output
path. The same workloads also run as pytest benchmarks
(``pytest benchmarks/bench_perf_engine.py -s``) at smoke scale.
"""

import json
import math
import os
import sys
import time

import numpy as np

from repro import telemetry
from repro.annealing import IsingModel, SimulatedAnnealingSolver
from repro.annealing.simulated_annealing import auto_beta_schedule
from repro.compile import SolverConfig
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.qml import FidelityQuantumKernel, IQPEncoding
from repro.quantum import StatevectorSimulator
from repro.telemetry.bench_schema import (
    BENCH_SCHEMA,
    MAX_DISPATCH_OVERHEAD,
    validate_document,
)

#: Reference scales from the PR-2 issue: the committed BENCH_perf.json
#: must show >= 5x on both workloads at these sizes.
FULL_SCALE = {
    "kernel": {"num_points": 64, "num_features": 6, "depth": 2},
    "sa": {"num_spins": 64, "num_reads": 100, "num_sweeps": 500},
    "compile": {"num_relations": 7, "num_sweeps": 400, "num_reads": 30,
                "repeats": 5},
    "service": {"num_jobs": 8, "num_relations": 7, "num_sweeps": 600,
                "num_reads": 30, "workers": 2},
}
SMOKE_SCALE = {
    "kernel": {"num_points": 12, "num_features": 4, "depth": 2},
    "sa": {"num_spins": 24, "num_reads": 10, "num_sweeps": 50},
    "compile": {"num_relations": 5, "num_sweeps": 150, "num_reads": 10,
                "repeats": 3},
    "service": {"num_jobs": 8, "num_relations": 6, "num_sweeps": 400,
                "num_reads": 20, "workers": 2},
}

#: Speedup floor the service workload must clear when real
#: parallelism is physically possible (declared in its record as
#: ``gate_min_speedup`` and enforced by ``bench_schema --gates``).
SERVICE_MIN_SPEEDUP = 1.5

# The PR-3 dispatch-overhead ceiling (and the schema tag) now live in
# repro.telemetry.bench_schema, shared with bench-compare and CI.


# ----------------------------------------------------------------------
# Loop references: the pre-batching implementations, kept verbatim so
# the perf trajectory always compares against the same baseline.
# ----------------------------------------------------------------------
def loop_encoded_states(encoding, X):
    """One simulator call per data point (pre-batching kernel path)."""
    simulator = StatevectorSimulator()
    return np.array([simulator.run(encoding.circuit(x)) for x in X])


def loop_gram(encoding, X):
    """Gram matrix over per-point encoded states."""
    states = loop_encoded_states(encoding, X)
    return np.abs(states @ states.conj().T) ** 2


def loop_sa_solve(ising, num_sweeps, num_reads, seed):
    """Pre-batching SA: per-read Python loop, one spin flip at a time.

    Returns the list of per-read final energies (ascending reads).
    """
    rng = np.random.default_rng(seed)
    fields = ising.local_fields()
    couplings = ising.coupling_matrix()
    n = ising.num_spins
    betas = auto_beta_schedule(ising, num_sweeps)
    energies = []
    for _ in range(num_reads):
        spins = rng.choice((-1.0, 1.0), size=n)
        for beta in betas:
            order = rng.permutation(n)
            thresholds = rng.random(n)
            for position, i in enumerate(order):
                local = fields[i] + couplings[i] @ spins
                delta = -2.0 * spins[i] * local
                if delta <= 0 or thresholds[position] < math.exp(
                        -beta * delta):
                    spins[i] = -spins[i]
        energies.append(float(ising.energies(spins[None, :])[0]))
    return energies


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _span_total(collector, path):
    spans = collector.snapshot()["spans"]
    return float(spans[path]["total_seconds"])


def run_kernel_workload(collector, num_points, num_features, depth,
                        seed=7):
    """Fidelity-kernel Gram: batched engine vs per-point loop."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(num_points, num_features))
    encoding = IQPEncoding(num_features, depth=depth)
    kernel = FidelityQuantumKernel(encoding)

    with collector.span("perf.kernel.loop"):
        reference = loop_gram(encoding, X)
    with collector.span("perf.kernel.batched"):
        batched = kernel(X)
    with collector.span("perf.kernel.batched_repeat"):
        repeat = kernel(X)

    loop_seconds = _span_total(collector, "perf.kernel.loop")
    batched_seconds = _span_total(collector, "perf.kernel.batched")
    return {
        "name": "kernel_gram",
        "params": {
            "num_points": num_points,
            "num_features": num_features,
            "depth": depth,
            "seed": seed,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
        "max_abs_diff": float(np.abs(batched - reference).max()),
        "deterministic": bool(np.array_equal(batched, repeat)),
    }


def run_sa_workload(collector, num_spins, num_reads, num_sweeps,
                    seed=11):
    """SA restarts: read-vectorized sweeps vs the per-read Python loop."""
    ising = IsingModel.random(num_spins, density=0.5, field_scale=0.3,
                              seed=seed)

    with collector.span("perf.sa.loop"):
        loop_energies = loop_sa_solve(ising, num_sweeps, num_reads,
                                      seed=seed)
    solver = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads, seed=seed)
    with collector.span("perf.sa.batched"):
        batched = solver.solve(ising)
    repeat = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads,
                                      seed=seed).solve(ising)

    loop_seconds = _span_total(collector, "perf.sa.loop")
    batched_seconds = _span_total(collector, "perf.sa.batched")
    return {
        "name": "sa_sweeps",
        "params": {
            "num_spins": num_spins,
            "num_reads": num_reads,
            "num_sweeps": num_sweeps,
            "seed": seed,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
        "loop_best_energy": min(loop_energies),
        "batched_best_energy": batched.best_energy,
        "deterministic": bool(
            batched.best_energy == repeat.best_energy
            and tuple(batched.best.assignment)
            == tuple(repeat.best.assignment)
        ),
    }


def _direct_sa_best(compiled, num_sweeps, num_reads, seed):
    """The pre-dispatch path: seeded backend + hand-rolled best pick.

    Mirrors exactly what ``repro.compile.solve`` does around the
    backend (decode every read, keep the strictly-best score) so the
    timing difference isolates the dispatch layer itself.
    """
    solver = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads, seed=seed)
    samples = solver.solve(compiled.model)
    solutions = [compiled.decode(sample.assignment)
                 for sample in samples]
    best = solutions[0]
    best_score = compiled.score(best)
    for candidate in solutions[1:]:
        score = compiled.score(candidate)
        if score < best_score:
            best, best_score = candidate, score
    return best


def run_compile_workload(collector, num_relations, num_sweeps,
                         num_reads, repeats, seed=13):
    """Compile-layer dispatch vs direct solver call on join ordering."""
    graph = random_join_graph(num_relations, topology="chain", seed=seed)
    compiled = JoinOrderQUBO(graph).compile()
    config = SolverConfig(num_sweeps=num_sweeps, num_reads=num_reads,
                          seed=seed)

    # Warm both paths once (first-call allocation noise), then time
    # min-of-``repeats`` — the stable estimator for sub-second runs.
    direct_warm = _direct_sa_best(compiled, num_sweeps, num_reads, seed)
    dispatch_warm = dispatch_solve(compiled, solver="sa", config=config)
    dispatch_repeat = dispatch_solve(compiled, solver="sa", config=config)

    direct_times = []
    with collector.span("perf.compile.direct"):
        for _ in range(repeats):
            started = time.perf_counter()
            _direct_sa_best(compiled, num_sweeps, num_reads, seed)
            direct_times.append(time.perf_counter() - started)
    dispatch_times = []
    with collector.span("perf.compile.dispatch"):
        for _ in range(repeats):
            started = time.perf_counter()
            dispatch_solve(compiled, solver="sa", config=config)
            dispatch_times.append(time.perf_counter() - started)

    direct_seconds = min(direct_times)
    dispatch_seconds = min(dispatch_times)
    return {
        "name": "compile_dispatch",
        "params": {
            "num_relations": num_relations,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "repeats": repeats,
            "seed": seed,
        },
        "direct_seconds": direct_seconds,
        "dispatch_seconds": dispatch_seconds,
        "overhead_fraction": dispatch_seconds / direct_seconds - 1.0,
        "matches_direct": bool(
            dispatch_warm.solution.order == direct_warm.order
            and dispatch_warm.solution.cost == direct_warm.cost
        ),
        "deterministic": bool(
            dispatch_warm.solution.order == dispatch_repeat.solution.order
            and dispatch_warm.solution.cost == dispatch_repeat.solution.cost
        ),
    }


def run_service_workload(collector, num_jobs, num_relations,
                         num_sweeps, num_reads, workers, seed=17):
    """Solve-service throughput: concurrent batch vs sequential loop.

    The batch is ``num_jobs`` *independent* seeded join-order SA
    solves — the service's bread-and-butter shape. Correctness is
    bit-for-bit: the concurrent results must equal the sequential
    dispatch results sample-for-sample (``matches_direct``), and a
    second service run must reproduce them (``deterministic``). The
    speedup gate is CPU-aware: ``gate_min_speedup`` is only declared
    when the host has >= 2 CPUs, because on a single core real
    parallel speedup is physically impossible and the record then
    documents throughput without gating on it.
    """
    from repro.service import SolveService
    from repro.service.bench import build_jobs, results_match

    jobs = build_jobs(num_jobs, num_relations, num_sweeps, num_reads,
                      seed)
    specs = [(problem, "sa", config) for problem, config in jobs]

    with collector.span("perf.service.sequential"):
        sequential = [dispatch_solve(problem, "sa", config=config)
                      for problem, config in jobs]
    with SolveService(max_workers=workers) as service:
        with collector.span("perf.service.concurrent"):
            concurrent = service.solve_many(specs)
    # A fresh service (empty cache, new workers) must reproduce the
    # batch exactly.
    with SolveService(max_workers=workers) as service:
        repeat = service.solve_many(specs)

    sequential_seconds = _span_total(collector,
                                     "perf.service.sequential")
    service_seconds = _span_total(collector, "perf.service.concurrent")
    cpus = os.cpu_count() or 1
    record = {
        "name": "service_throughput",
        "params": {
            "num_jobs": num_jobs,
            "num_relations": num_relations,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "workers": workers,
            "seed": seed,
            "cpu_count": cpus,
        },
        "sequential_seconds": sequential_seconds,
        "service_seconds": service_seconds,
        "speedup": sequential_seconds / service_seconds,
        "matches_direct": all(
            results_match(direct, concurrent_result)
            for direct, concurrent_result in zip(sequential, concurrent)
        ),
        "deterministic": all(
            results_match(first, second)
            for first, second in zip(concurrent, repeat)
        ),
    }
    if cpus >= 2 and workers >= 2:
        record["gate_min_speedup"] = SERVICE_MIN_SPEEDUP
    return record


def run_workloads(scale, collector=None):
    collector = collector or telemetry.get_collector() or telemetry.Collector()
    return [
        run_kernel_workload(collector, **scale["kernel"]),
        run_sa_workload(collector, **scale["sa"]),
        run_compile_workload(collector, **scale["compile"]),
        run_service_workload(collector, **scale["service"]),
    ]


# ----------------------------------------------------------------------
# Pytest entry points (smoke scale; correctness over raw speedup)
# ----------------------------------------------------------------------
def test_perf_kernel_batched_matches_loop(bench_telemetry):
    record = run_kernel_workload(bench_telemetry,
                                 **SMOKE_SCALE["kernel"])
    print("\nkernel Gram loop {loop_seconds:.4f}s vs batched "
          "{batched_seconds:.4f}s ({speedup:.1f}x)".format(**record))
    assert record["max_abs_diff"] < 1e-10
    assert record["deterministic"]
    assert record["speedup"] > 1.0


def test_perf_sa_batched_is_faster_and_deterministic(bench_telemetry):
    record = run_sa_workload(bench_telemetry, **SMOKE_SCALE["sa"])
    print("\nSA loop {loop_seconds:.4f}s vs batched "
          "{batched_seconds:.4f}s ({speedup:.1f}x)".format(**record))
    assert record["deterministic"]
    assert record["speedup"] > 1.0
    # Both dynamics are valid annealers; at equal budgets their best
    # energies land in the same range on this easy instance.
    assert (record["batched_best_energy"]
            <= record["loop_best_energy"] + 2.0)


def test_perf_compile_dispatch_overhead_is_small(bench_telemetry):
    record = run_compile_workload(bench_telemetry,
                                  **SMOKE_SCALE["compile"])
    print("\ncompile dispatch {dispatch_seconds:.4f}s vs direct "
          "{direct_seconds:.4f}s ({overhead_fraction:+.2%} overhead)"
          .format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    assert record["overhead_fraction"] < MAX_DISPATCH_OVERHEAD


def test_perf_service_matches_sequential_bit_for_bit(bench_telemetry):
    record = run_service_workload(bench_telemetry,
                                  **SMOKE_SCALE["service"])
    print("\nservice sequential {sequential_seconds:.4f}s vs "
          "concurrent {service_seconds:.4f}s ({speedup:.2f}x)"
          .format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    # Real parallel speedup needs real CPUs; on a single core the
    # workload only documents throughput, it cannot gate on it.
    if "gate_min_speedup" in record:
        assert record["speedup"] >= record["gate_min_speedup"]


# ----------------------------------------------------------------------
# Script entry point: write the committed perf trajectory
# ----------------------------------------------------------------------
def main():
    scale_name = os.environ.get("REPRO_PERF_SCALE", "full")
    scale = SMOKE_SCALE if scale_name == "smoke" else FULL_SCALE
    collector = telemetry.enable()
    runs = run_workloads(scale, collector)
    telemetry.disable()
    document = {
        "schema": BENCH_SCHEMA,
        "provenance": telemetry.collect_provenance(
            "bench_perf_engine").to_dict(),
        "scale": scale_name,
        "workloads": runs,
    }
    # Fail fast on malformed output rather than committing it: CI and
    # bench-compare both consume this file through the same validator.
    validate_document(document)
    target = os.environ.get("REPRO_PERF_JSON", "")
    if not target:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        target = os.path.join(repo_root, "BENCH_perf.json")
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for record in runs:
        if "loop_seconds" in record:
            print("{name}: loop {loop_seconds:.3f}s, batched "
                  "{batched_seconds:.3f}s -> {speedup:.1f}x"
                  .format(**record))
        elif "sequential_seconds" in record:
            print("{name}: sequential {sequential_seconds:.3f}s, "
                  "service {service_seconds:.3f}s -> {speedup:.2f}x "
                  "({workers} workers, {cpus} cpus)"
                  .format(workers=record["params"]["workers"],
                          cpus=record["params"]["cpu_count"],
                          **record))
        else:
            print("{name}: direct {direct_seconds:.3f}s, dispatch "
                  "{dispatch_seconds:.3f}s -> {overhead_fraction:+.2%} "
                  "overhead".format(**record))
    print(f"wrote {target}")
    # The 5x floor applies to the batched-vs-loop workloads only; the
    # service workload declares its own CPU-aware gate_min_speedup.
    slow = [r for r in runs
            if "loop_seconds" in r
            and r.get("speedup", math.inf) < 5.0]
    heavy = [r for r in runs
             if r.get("overhead_fraction", 0.0) >= MAX_DISPATCH_OVERHEAD]
    under_gate = [r for r in runs
                  if "gate_min_speedup" in r
                  and r.get("speedup", 0.0) < r["gate_min_speedup"]]
    status = 0
    if scale_name == "full" and slow:
        names = ", ".join(r["name"] for r in slow)
        print(f"WARNING: speedup below 5x on: {names}", file=sys.stderr)
        status = 1
    if scale_name == "full" and heavy:
        names = ", ".join(r["name"] for r in heavy)
        print(f"WARNING: dispatch overhead >= 5% on: {names}",
              file=sys.stderr)
        status = 1
    if scale_name == "full" and under_gate:
        names = ", ".join(r["name"] for r in under_gate)
        print(f"WARNING: speedup below declared gate on: {names}",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
