"""Batched-vs-loop execution engine benchmark (perf-trajectory gate).

Measures the wall-clock win of the batched execution engine against
faithful re-implementations of the pre-batching Python loops, on two
reference workloads:

* **kernel Gram** — a fidelity-kernel Gram matrix (IQP encoding),
  batched ``Encoding.state_batch`` / ``StatevectorSimulator.run_batch``
  vs one simulator call per data point;
* **SA sweeps** — simulated annealing, read-vectorized ``(reads, n)``
  lock-step sweeps vs the per-read single-spin-flip Python loop;
* **compile dispatch** — the ``repro.compile`` front door
  (``solve(problem, solver="sa", config=...)``) vs calling the same
  seeded backend directly on the compiled model and hand-picking the
  best decode. The gate here is *overhead*, not speedup: dispatch must
  cost < 5% over the direct call;
* **metrics overhead** — the shipped (instrumented) hot paths with the
  live-metrics registry *disabled* vs bare replicas of the same code
  with the instrumentation stripped. This pins the cheap-when-off
  guarantee of ``repro.telemetry.metrics``: fetching ``get_registry()``
  and branching on ``None`` must stay inside the workload's embedded
  ``gate_max_overhead`` budget (2% at full scale). The same record
  covers the whole observability stack's disabled branches — the
  ``repro.compile.solve`` front door (telemetry span + profiler +
  metrics guards) vs a guard-free replica (``frontdoor_overhead``);
* **obs overhead** — the service-throughput batch with the
  trace-context and flight-recorder layers *enabled* vs the identical
  batch with them off: minting contexts, tagging jobs, ring-buffer
  recording and drain attribution must stay under the embedded
  ``gate_max_overhead`` (5% at full scale) with bit-for-bit identical
  results;
* **pipeline throughput** — a generated JOB-style join-order workload
  (``repro.db.workloads``) pushed through the staged
  ``repro.pipeline.OptimizationPipeline`` vs the direct
  compile-then-dispatch loop over the same graphs and configs. The
  gate is overhead: the pre-check / stage-report / plan-assembly
  machinery must cost < 5% over the raw formulation+solve path at
  full scale, with bit-for-bit identical decoded orders;
* **server throughput** — the HTTP front end (``repro.server``) under
  concurrent stdlib clients: a mixed cache-miss/cache-hit soak with
  request-latency quantiles and SSE stream-row lag, a backpressure
  phase against a tiny job queue (the 429 + ``Retry-After`` path must
  shed load without hanging while every accepted job completes), and
  a service-level cache-hit throughput pairing of the sharded result
  cache against the single-lock baseline (declared parity gate:
  ``gate_min_speedup`` 1.0 with tolerance). Results coming back over
  HTTP must match a direct in-process solve bit for bit.

Timings come from telemetry spans (``perf.<workload>.<impl>``). Run as
a script to write the committed perf trajectory::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

which writes ``BENCH_perf.json`` (schema ``repro-bench/v1``) at the
repo root. Environment knobs: ``REPRO_PERF_SCALE=smoke`` shrinks every
workload for CI smoke runs, ``REPRO_PERF_JSON`` overrides the output
path. The same workloads also run as pytest benchmarks
(``pytest benchmarks/bench_perf_engine.py -s``) at smoke scale.
"""

import json
import math
import os
import sys
import time

import numpy as np

from repro import telemetry
from repro.annealing import IsingModel, SimulatedAnnealingSolver
from repro.annealing.ising import spins_to_bits
from repro.annealing.results import Sample, SampleSet
from repro.annealing.simulated_annealing import auto_beta_schedule
from repro.compile import SolverConfig
from repro.compile import dispatch as compile_dispatch
from repro.compile import solve as dispatch_solve
from repro.db import JoinOrderQUBO, random_join_graph
from repro.qml import FidelityQuantumKernel, IQPEncoding
from repro.quantum import StatevectorSimulator
from repro.quantum.statevector import (
    _apply_instruction_batch,
    _structurally_identical,
)
from repro.telemetry import context as _tracectx
from repro.telemetry import flight as _flight
from repro.telemetry import metrics as _metrics
from repro.telemetry import profiler as _profiler
from repro.telemetry.bench_schema import (
    BENCH_SCHEMA,
    MAX_DISPATCH_OVERHEAD,
    effective_speedup_floor,
    validate_document,
)

#: Reference scales from the PR-2 issue: the committed BENCH_perf.json
#: must show >= 5x on both workloads at these sizes.
FULL_SCALE = {
    "kernel": {"num_points": 64, "num_features": 6, "depth": 2},
    "sa": {"num_spins": 64, "num_reads": 100, "num_sweeps": 500},
    "compile": {"num_relations": 7, "num_sweeps": 400, "num_reads": 30,
                "repeats": 5},
    "service": {"num_jobs": 8, "num_relations": 7, "num_sweeps": 600,
                "num_reads": 30, "workers": 2,
                "gate_speedup_tolerance": 0.10},
    "metrics": {"num_spins": 48, "num_reads": 60, "num_sweeps": 300,
                "num_points": 160, "num_features": 8, "depth": 2,
                "repeats": 15, "gate_max_overhead": 0.02},
    "pipeline": {"topologies": ("chain", "star", "cycle", "clique"),
                 "size": 6, "instances_per_cell": 12,
                 "num_sweeps": 200, "num_reads": 10, "repeats": 3,
                 "gate_max_overhead": 0.05},
    "obs": {"num_jobs": 8, "num_relations": 7, "num_sweeps": 600,
            "num_reads": 30, "workers": 2, "repeats": 3,
            "gate_max_overhead": 0.05},
    "server": {"num_jobs": 8, "num_clients": 4, "num_sweeps": 300,
               "num_reads": 10, "queue_capacity": 2,
               "cache_rounds": 40, "gate_speedup_tolerance": 0.20},
}
SMOKE_SCALE = {
    "kernel": {"num_points": 12, "num_features": 4, "depth": 2},
    "sa": {"num_spins": 24, "num_reads": 10, "num_sweeps": 50},
    "compile": {"num_relations": 5, "num_sweeps": 150, "num_reads": 10,
                "repeats": 3},
    "service": {"num_jobs": 8, "num_relations": 6, "num_sweeps": 400,
                "num_reads": 20, "workers": 2,
                "gate_speedup_tolerance": 0.5},
    "metrics": {"num_spins": 16, "num_reads": 10, "num_sweeps": 60,
                "num_points": 16, "num_features": 5, "depth": 2,
                "repeats": 3, "gate_max_overhead": 0.5},
    "pipeline": {"topologies": ("chain", "star"), "size": 5,
                 "instances_per_cell": 4, "num_sweeps": 100,
                 "num_reads": 5, "repeats": 2,
                 "gate_max_overhead": 0.5},
    "obs": {"num_jobs": 4, "num_relations": 6, "num_sweeps": 300,
            "num_reads": 10, "workers": 2, "repeats": 2,
            "gate_max_overhead": 0.5},
    "server": {"num_jobs": 4, "num_clients": 2, "num_sweeps": 150,
               "num_reads": 5, "queue_capacity": 2,
               "cache_rounds": 10, "gate_speedup_tolerance": 0.5},
}

#: Speedup floor the service workload must clear when real
#: parallelism is physically possible (declared in its record as
#: ``gate_min_speedup`` and enforced by ``bench_schema --gates``).
SERVICE_MIN_SPEEDUP = 1.5

#: Speedup floor on single-CPU hosts: parity with the sequential loop.
#: The declared ``gate_speedup_tolerance`` absorbs the scheduler and
#: process-pool overhead a one-core box measurably pays (repeated
#: full-scale runs on a 1-CPU container land between 0.88x and 0.96x).
SERVICE_MIN_SPEEDUP_SINGLE_CPU = 1.0

# The PR-3 dispatch-overhead ceiling (and the schema tag) now live in
# repro.telemetry.bench_schema, shared with bench-compare and CI.


# ----------------------------------------------------------------------
# Loop references: the pre-batching implementations, kept verbatim so
# the perf trajectory always compares against the same baseline.
# ----------------------------------------------------------------------
def loop_encoded_states(encoding, X):
    """One simulator call per data point (pre-batching kernel path)."""
    simulator = StatevectorSimulator()
    return np.array([simulator.run(encoding.circuit(x)) for x in X])


def loop_gram(encoding, X):
    """Gram matrix over per-point encoded states."""
    states = loop_encoded_states(encoding, X)
    return np.abs(states @ states.conj().T) ** 2


def loop_sa_solve(ising, num_sweeps, num_reads, seed):
    """Pre-batching SA: per-read Python loop, one spin flip at a time.

    Returns the list of per-read final energies (ascending reads).
    """
    rng = np.random.default_rng(seed)
    fields = ising.local_fields()
    couplings = ising.coupling_matrix()
    n = ising.num_spins
    betas = auto_beta_schedule(ising, num_sweeps)
    energies = []
    for _ in range(num_reads):
        spins = rng.choice((-1.0, 1.0), size=n)
        for beta in betas:
            order = rng.permutation(n)
            thresholds = rng.random(n)
            for position, i in enumerate(order):
                local = fields[i] + couplings[i] @ spins
                delta = -2.0 * spins[i] * local
                if delta <= 0 or thresholds[position] < math.exp(
                        -beta * delta):
                    spins[i] = -spins[i]
        energies.append(float(ising.energies(spins[None, :])[0]))
    return energies


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _span_total(collector, path):
    spans = collector.snapshot()["spans"]
    return float(spans[path]["total_seconds"])


def run_kernel_workload(collector, num_points, num_features, depth,
                        seed=7):
    """Fidelity-kernel Gram: batched engine vs per-point loop."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(num_points, num_features))
    encoding = IQPEncoding(num_features, depth=depth)
    kernel = FidelityQuantumKernel(encoding)

    with collector.span("perf.kernel.loop"):
        reference = loop_gram(encoding, X)
    with collector.span("perf.kernel.batched"):
        batched = kernel(X)
    with collector.span("perf.kernel.batched_repeat"):
        repeat = kernel(X)

    loop_seconds = _span_total(collector, "perf.kernel.loop")
    batched_seconds = _span_total(collector, "perf.kernel.batched")
    return {
        "name": "kernel_gram",
        "params": {
            "num_points": num_points,
            "num_features": num_features,
            "depth": depth,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
        "max_abs_diff": float(np.abs(batched - reference).max()),
        "deterministic": bool(np.array_equal(batched, repeat)),
    }


def run_sa_workload(collector, num_spins, num_reads, num_sweeps,
                    seed=11):
    """SA restarts: read-vectorized sweeps vs the per-read Python loop."""
    ising = IsingModel.random(num_spins, density=0.5, field_scale=0.3,
                              seed=seed)

    with collector.span("perf.sa.loop"):
        loop_energies = loop_sa_solve(ising, num_sweeps, num_reads,
                                      seed=seed)
    solver = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads, seed=seed)
    with collector.span("perf.sa.batched"):
        batched = solver.solve(ising)
    repeat = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads,
                                      seed=seed).solve(ising)

    loop_seconds = _span_total(collector, "perf.sa.loop")
    batched_seconds = _span_total(collector, "perf.sa.batched")
    return {
        "name": "sa_sweeps",
        "params": {
            "num_spins": num_spins,
            "num_reads": num_reads,
            "num_sweeps": num_sweeps,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
        "loop_best_energy": min(loop_energies),
        "batched_best_energy": batched.best_energy,
        "deterministic": bool(
            batched.best_energy == repeat.best_energy
            and tuple(batched.best.assignment)
            == tuple(repeat.best.assignment)
        ),
    }


def _direct_sa_best(compiled, num_sweeps, num_reads, seed):
    """The pre-dispatch path: seeded backend + hand-rolled best pick.

    Mirrors exactly what ``repro.compile.solve`` does around the
    backend (decode every read, keep the strictly-best score) so the
    timing difference isolates the dispatch layer itself.
    """
    solver = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads, seed=seed)
    samples = solver.solve(compiled.model)
    solutions = [compiled.decode(sample.assignment)
                 for sample in samples]
    best = solutions[0]
    best_score = compiled.score(best)
    for candidate in solutions[1:]:
        score = compiled.score(candidate)
        if score < best_score:
            best, best_score = candidate, score
    return best


def run_compile_workload(collector, num_relations, num_sweeps,
                         num_reads, repeats, seed=13):
    """Compile-layer dispatch vs direct solver call on join ordering."""
    graph = random_join_graph(num_relations, topology="chain", seed=seed)
    compiled = JoinOrderQUBO(graph).compile()
    config = SolverConfig(num_sweeps=num_sweeps, num_reads=num_reads,
                          seed=seed)

    # Warm both paths once (first-call allocation noise), then time
    # min-of-``repeats`` — the stable estimator for sub-second runs.
    direct_warm = _direct_sa_best(compiled, num_sweeps, num_reads, seed)
    dispatch_warm = dispatch_solve(compiled, solver="sa", config=config)
    dispatch_repeat = dispatch_solve(compiled, solver="sa", config=config)

    direct_times = []
    with collector.span("perf.compile.direct"):
        for _ in range(repeats):
            started = time.perf_counter()
            _direct_sa_best(compiled, num_sweeps, num_reads, seed)
            direct_times.append(time.perf_counter() - started)
    dispatch_times = []
    with collector.span("perf.compile.dispatch"):
        for _ in range(repeats):
            started = time.perf_counter()
            dispatch_solve(compiled, solver="sa", config=config)
            dispatch_times.append(time.perf_counter() - started)

    direct_seconds = min(direct_times)
    dispatch_seconds = min(dispatch_times)
    return {
        "name": "compile_dispatch",
        "params": {
            "num_relations": num_relations,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "direct_seconds": direct_seconds,
        "dispatch_seconds": dispatch_seconds,
        "overhead_fraction": dispatch_seconds / direct_seconds - 1.0,
        "matches_direct": bool(
            dispatch_warm.solution.order == direct_warm.order
            and dispatch_warm.solution.cost == direct_warm.cost
        ),
        "deterministic": bool(
            dispatch_warm.solution.order == dispatch_repeat.solution.order
            and dispatch_warm.solution.cost == dispatch_repeat.solution.cost
        ),
    }


def run_service_workload(collector, num_jobs, num_relations,
                         num_sweeps, num_reads, workers, seed=17,
                         gate_speedup_tolerance=0.10):
    """Solve-service throughput: warm worker pool vs sequential loop.

    The main batch is ``num_jobs`` *independent* seeded join-order SA
    solves — the service's bread-and-butter shape, executed on the
    persistent warm pool (models via shared memory, workers spawned
    once). Correctness is bit-for-bit: the concurrent results must
    equal the sequential dispatch results sample-for-sample
    (``matches_direct``), and a second service run must reproduce them
    (``deterministic``). The speedup gate is CPU-aware: with >= 2 CPUs
    the workload declares the real-parallelism floor (1.5x); on a
    single core — where parallel speedup is physically impossible — it
    declares parity (1.0x) instead. Both come with the declared
    ``gate_speedup_tolerance`` so scheduler jitter cannot flake the
    gate (see ``bench_schema.effective_speedup_floor``).

    A second measurement covers **cross-job batch folding**: the same
    number of jobs on *one shared model* (distinct seeds), which the
    pool folds into a few worker round trips. Its timings and parity
    land in the ``batch_*`` keys; the pool/shm counters of the main
    run land in ``pool``.
    """
    from repro.service import SolveService
    from repro.service.bench import build_jobs, results_match

    jobs = build_jobs(num_jobs, num_relations, num_sweeps, num_reads,
                      seed)
    specs = [(problem, "sa", config) for problem, config in jobs]

    with collector.span("perf.service.sequential"):
        sequential = [dispatch_solve(problem, "sa", config=config)
                      for problem, config in jobs]
    with SolveService(max_workers=workers) as service:
        with collector.span("perf.service.concurrent"):
            concurrent = service.solve_many(specs)
        pool_stats = service.stats()["pool"]
        shm_stats = service.stats()["shm"]
    # A fresh service (empty cache, new workers) must reproduce the
    # batch exactly.
    with SolveService(max_workers=workers) as service:
        repeat = service.solve_many(specs)

    # Cross-job batching: same model, distinct seeds. Sequential
    # baseline first, then the service folds them into few dispatches.
    fold_problem = jobs[0][0]
    fold_configs = [SolverConfig(num_sweeps=num_sweeps,
                                 num_reads=num_reads,
                                 seed=seed * 3000 + index)
                    for index in range(num_jobs)]
    with collector.span("perf.service.batch_sequential"):
        fold_base = [dispatch_solve(fold_problem, "sa", config=c)
                     for c in fold_configs]
    with SolveService(max_workers=workers) as service:
        with collector.span("perf.service.batch_concurrent"):
            handles = [service.submit(fold_problem, "sa", c)
                       for c in fold_configs]
            fold_results = [handle.result() for handle in handles]
        fold_pool = service.stats()["pool"]

    sequential_seconds = _span_total(collector,
                                     "perf.service.sequential")
    service_seconds = _span_total(collector, "perf.service.concurrent")
    batch_sequential = _span_total(collector,
                                   "perf.service.batch_sequential")
    batch_service = _span_total(collector,
                                "perf.service.batch_concurrent")
    cpus = os.cpu_count() or 1
    record = {
        "name": "service_throughput",
        "params": {
            "num_jobs": num_jobs,
            "num_relations": num_relations,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "workers": workers,
            "seed": seed,
            "cpu_count": cpus,
        },
        "sequential_seconds": sequential_seconds,
        "service_seconds": service_seconds,
        "speedup": sequential_seconds / service_seconds,
        "matches_direct": all(
            results_match(direct, concurrent_result)
            for direct, concurrent_result in zip(sequential, concurrent)
        ),
        "deterministic": all(
            results_match(first, second)
            for first, second in zip(concurrent, repeat)
        ),
        "pool": {
            "respawns": pool_stats["respawns"],
            "dispatches_warm": pool_stats["dispatches_warm"],
            "dispatches_cold": pool_stats["dispatches_cold"],
            "jobs_run": pool_stats["jobs_run"],
            "shm_bytes": shm_stats["bytes_shared"],
            "shm_segments_created": shm_stats["segments_created"],
        },
        "batch_sequential_seconds": batch_sequential,
        "batch_service_seconds": batch_service,
        "batch_speedup": batch_sequential / batch_service,
        "batch_max_size": max(
            r.provenance["service"]["batched"] for r in fold_results),
        "batch_dispatches": (fold_pool["dispatches_warm"]
                             + fold_pool["dispatches_cold"]),
        "batch_matches_direct": all(
            results_match(direct, folded)
            for direct, folded in zip(fold_base, fold_results)
        ),
    }
    if cpus >= 2 and workers >= 2:
        record["gate_min_speedup"] = SERVICE_MIN_SPEEDUP
        record["gate_speedup_tolerance"] = gate_speedup_tolerance
    else:
        # Single-core parity runs pay the full process round-trip
        # overhead with zero parallelism to hide it; give the parity
        # floor a wider jitter band than the real-speedup floor.
        record["gate_min_speedup"] = SERVICE_MIN_SPEEDUP_SINGLE_CPU
        record["gate_speedup_tolerance"] = max(
            gate_speedup_tolerance, 0.20)
    return record


# ----------------------------------------------------------------------
# Metrics cheap-when-off workload: shipped instrumented paths (registry
# disabled) vs bare replicas with the instrumentation stripped.
# ----------------------------------------------------------------------
def bare_sa_solve(ising, num_sweeps, num_reads, seed):
    """``SimulatedAnnealingSolver.solve`` minus every accounting hook.

    Byte-for-byte the same numerical work (same RNG consumption, same
    ``_sweep`` inner loop, same sample assembly) with the telemetry
    span, collector counters, metrics-registry guard and progress
    plumbing stripped — the baseline the shipped path's disabled-mode
    cost is measured against.
    """
    solver = SimulatedAnnealingSolver(num_sweeps=num_sweeps,
                                      num_reads=num_reads, seed=seed)
    fields = ising.local_fields()
    couplings = ising.coupling_matrix()
    n = ising.num_spins
    betas = list(auto_beta_schedule(ising, num_sweeps))
    spins = solver._rng.choice((-1.0, 1.0), size=(num_reads, n))
    local = spins @ couplings + fields
    for beta in betas:
        solver._sweep(spins, local, couplings, beta)
    energies = ising.energies(spins)
    return SampleSet([
        Sample(tuple(spins_to_bits(row.astype(int))), float(energy))
        for row, energy in zip(spins, energies)
    ])


def bare_run_batch(circuits, num_qubits):
    """``StatevectorSimulator.run_batch`` minus the accounting guard."""
    batch = len(circuits)
    states = np.zeros((batch, 2 ** num_qubits), dtype=complex)
    states[:, 0] = 1.0
    if not _structurally_identical(circuits):
        raise ValueError("metrics workload expects a template batch")
    for position in range(len(circuits[0].instructions)):
        states = _apply_instruction_batch(states, circuits, position,
                                          num_qubits)
    return states


def bare_frontdoor_solve(problem, config):
    """``repro.compile.solve`` minus every observability guard.

    Same registry backend, same decode, same result assembly — with
    the telemetry span, profiler ``maybe_capture``, metrics-registry
    histogram and convergence plumbing stripped. This is the baseline
    the front door's fully-disabled cost is measured against.
    """
    spec = compile_dispatch._REGISTRY["sa"]
    start = time.perf_counter()
    samples = spec.run(problem.model, config, None)
    solutions = compile_dispatch.decode_samples(problem, samples)
    duration = time.perf_counter() - start
    return compile_dispatch.assemble_result(
        problem, "sa", config, samples, solutions, duration)


def _min_paired_times(bare_fn, shipped_fn, repeats):
    """Interleaved timings; returns (bare_min, shipped_min, overhead).

    The two sides run back to back so slow drift (thermal, page
    cache) hits both equally, and the within-pair order flips every
    repeat so neither side systematically enjoys the warm-cache second
    slot. One untimed warmup pair runs first so compilation/allocator
    effects hit neither side.

    The overhead estimate is the smaller of two estimators of the same
    true ratio: the ratio of the per-side minima (robust as long as
    each side gets *one* clean run) and the median per-pair ratio
    (robust as long as most pairs are clean). On a shared one-core box
    their failure modes are near-disjoint — a short scheduler burst
    corrupts one side's minimum but only one pair's ratio, while a
    long burst spanning many pairs drags the median but leaves clean
    minima outside it. Timing noise only ever *inflates* a
    measurement, while a real regression (say per-sweep accounting
    sneaking into the hot loop) shifts every pair ratio and both
    minima uniformly upward, so sensitivity to real regressions
    survives taking the smaller estimate.
    """
    bare_fn()
    shipped_fn()
    bare_times, shipped_times = [], []
    for index in range(repeats):
        first, second = ((bare_fn, shipped_fn) if index % 2 == 0
                         else (shipped_fn, bare_fn))
        started = time.perf_counter()
        first()
        first_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        second()
        second_elapsed = time.perf_counter() - started
        if index % 2 == 0:
            bare_times.append(first_elapsed)
            shipped_times.append(second_elapsed)
        else:
            shipped_times.append(first_elapsed)
            bare_times.append(second_elapsed)
    ratios = sorted(shipped / bare
                    for bare, shipped in zip(bare_times, shipped_times))
    middle = len(ratios) // 2
    if len(ratios) % 2:
        median_ratio = ratios[middle]
    else:
        median_ratio = (ratios[middle - 1] + ratios[middle]) / 2.0
    bare_min, shipped_min = min(bare_times), min(shipped_times)
    overhead = min(shipped_min / bare_min, median_ratio) - 1.0
    return bare_min, shipped_min, overhead


def run_metrics_overhead_workload(collector, num_spins, num_reads,
                                  num_sweeps, num_points, num_features,
                                  depth, repeats, gate_max_overhead,
                                  seed=19):
    """Cheap-when-off gate for the live-metrics instrumentation.

    Four instrumented hot paths — SA ``solve`` (read-vectorized
    sweeps), ``run_batch`` (template batching),
    ``run_registry_backend`` (the service workers' dispatch slice) and
    the ``repro.compile.solve`` front door (telemetry span + profiler
    + metrics guards around the same backend) — are timed with *all*
    accounting disabled and compared against bare replicas of the
    identical numerical work with the instrumentation stripped. ``overhead_fraction`` is the worst of the three and the
    record embeds ``gate_max_overhead`` so ``bench_schema --gates``
    enforces the budget (2% at full scale). Every global collector /
    tracer / metrics registry is parked for the duration so the timed
    paths take their fully-disabled branch, then restored.
    """
    saved_collector = telemetry.get_collector()
    saved_tracer = telemetry.get_tracer()
    saved_registry = _metrics.get_registry()
    # Park the trace-context / flight / profiler globals too: the
    # front-door pair below times the fully-disabled branch of every
    # observability layer, not just metrics.
    saved_context = _tracectx._state
    saved_flight = _flight._recorder
    saved_profiler = _profiler._config
    _tracectx._state = None
    _flight._recorder = None
    _profiler._config = None
    if saved_collector is not None:
        telemetry.disable()
    if saved_tracer is not None:
        telemetry.disable_tracing()
    if saved_registry is not None:
        _metrics.disable_metrics()
    try:
        ising = IsingModel.random(num_spins, density=0.5,
                                  field_scale=0.3, seed=seed)
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 1.0, size=(num_points, num_features))
        encoding = IQPEncoding(num_features, depth=depth)
        circuits = [encoding.circuit(x) for x in X]
        simulator = StatevectorSimulator()
        config = SolverConfig(num_sweeps=num_sweeps,
                              num_reads=num_reads, seed=seed)

        # Correctness first: each replica must reproduce its shipped
        # path bit for bit (it is the same numerical code).
        bare_samples = bare_sa_solve(ising, num_sweeps, num_reads, seed)
        shipped_samples = SimulatedAnnealingSolver(
            num_sweeps=num_sweeps, num_reads=num_reads,
            seed=seed).solve(ising)
        num_qubits = circuits[0].num_qubits
        bare_states = bare_run_batch(circuits, num_qubits)
        shipped_states = simulator.run_batch(circuits)
        bare_dispatch = compile_dispatch._REGISTRY["sa"].run(
            ising, config, None)
        shipped_dispatch = compile_dispatch.run_registry_backend(
            ising, "sa", config)
        compiled = JoinOrderQUBO(random_join_graph(
            6, "chain", seed=seed)).compile()
        bare_front = bare_frontdoor_solve(compiled, config)
        shipped_front = dispatch_solve(compiled, "sa", config=config)
        deterministic = bool(
            np.array_equal(bare_samples.energies(),
                           shipped_samples.energies())
            and bare_samples.best.assignment
            == shipped_samples.best.assignment
            and np.array_equal(bare_states, shipped_states)
            and np.array_equal(bare_dispatch.energies(),
                               shipped_dispatch.energies())
            and bare_front.solution == shipped_front.solution
            and bare_front.energy == shipped_front.energy
            and np.array_equal(bare_front.energies,
                               shipped_front.energies)
        )

        sa_bare, sa_shipped, sa_over = _min_paired_times(
            lambda: bare_sa_solve(ising, num_sweeps, num_reads, seed),
            lambda: SimulatedAnnealingSolver(
                num_sweeps=num_sweeps, num_reads=num_reads,
                seed=seed).solve(ising),
            repeats)
        batch_bare, batch_shipped, batch_over = _min_paired_times(
            lambda: bare_run_batch(circuits, num_qubits),
            lambda: simulator.run_batch(circuits),
            repeats)
        dispatch_bare, dispatch_shipped, dispatch_over = _min_paired_times(
            lambda: compile_dispatch._REGISTRY["sa"].run(
                ising, config, None),
            lambda: compile_dispatch.run_registry_backend(
                ising, "sa", config),
            repeats)
        front_bare, front_shipped, front_over = _min_paired_times(
            lambda: bare_frontdoor_solve(compiled, config),
            lambda: dispatch_solve(compiled, "sa", config=config),
            repeats)
    finally:
        _tracectx._state = saved_context
        _flight._recorder = saved_flight
        _profiler._config = saved_profiler
        if saved_collector is not None:
            telemetry.enable(saved_collector)
        if saved_tracer is not None:
            telemetry.enable_tracing(saved_tracer)
        if saved_registry is not None:
            _metrics.enable_metrics(saved_registry)

    overheads = {
        "sa_overhead": sa_over,
        "batch_overhead": batch_over,
        "dispatch_overhead": dispatch_over,
        "frontdoor_overhead": front_over,
    }
    return {
        "name": "metrics_overhead",
        "params": {
            "num_spins": num_spins,
            "num_reads": num_reads,
            "num_sweeps": num_sweeps,
            "num_points": num_points,
            "num_features": num_features,
            "depth": depth,
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "sa_bare_seconds": sa_bare,
        "sa_shipped_seconds": sa_shipped,
        "batch_bare_seconds": batch_bare,
        "batch_shipped_seconds": batch_shipped,
        "dispatch_bare_seconds": dispatch_bare,
        "dispatch_shipped_seconds": dispatch_shipped,
        "frontdoor_bare_seconds": front_bare,
        "frontdoor_shipped_seconds": front_shipped,
        **overheads,
        "overhead_fraction": max(overheads.values()),
        "gate_max_overhead": gate_max_overhead,
        "deterministic": deterministic,
    }


def run_obs_overhead_workload(collector, num_jobs, num_relations,
                              num_sweeps, num_reads, workers, repeats,
                              gate_max_overhead, seed=29):
    """Enabled-cost gate for the trace-context + flight-recorder stack.

    The service-throughput batch (independent seeded join-order jobs
    on the warm pool) runs once with the correlated-observability
    layers *off* and once with trace contexts and the in-memory flight
    recorder *on* — the configuration ``serve-bench --context
    --flight`` ships. The enabled side pays context minting per job,
    trace-id plumbing over the pipe protocol, ring-buffer recording
    and drain attribution; the record's ``overhead_fraction`` caps
    that cost at the embedded ``gate_max_overhead`` (5% at full
    scale). ``matches_direct`` asserts the observed batch reproduces
    the plain batch bit for bit — observability never touches the
    answer — and ``traced_jobs`` counts the distinct trace ids minted
    (one per job).
    """
    from repro.service import SolveService
    from repro.service.bench import build_jobs, results_match

    jobs = build_jobs(num_jobs, num_relations, num_sweeps, num_reads,
                      seed)
    specs = [(problem, "sa", config) for problem, config in jobs]

    def run_plain():
        with SolveService(max_workers=workers) as service:
            return service.solve_many(specs)

    def run_observed():
        _tracectx.enable_context()
        _flight.enable_flight()
        try:
            with SolveService(max_workers=workers) as service:
                return service.solve_many(specs)
        finally:
            _flight.disable_flight()
            _tracectx.disable_context()

    # Correctness first: the observed batch must reproduce the plain
    # batch bit for bit, and a second observed run must reproduce the
    # first (fresh service, fresh contexts — same answers).
    plain_warm = run_plain()
    observed_warm = run_observed()
    observed_repeat = run_observed()
    trace_ids = {result.provenance["service"]["trace_id"]
                 for result in observed_warm}

    plain_min, observed_min, overhead = _min_paired_times(
        run_plain, run_observed, repeats)

    return {
        "name": "obs_overhead",
        "params": {
            "num_jobs": num_jobs,
            "num_relations": num_relations,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "workers": workers,
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "plain_seconds": plain_min,
        "observed_seconds": observed_min,
        "overhead_fraction": overhead,
        "matches_direct": all(
            results_match(plain, observed)
            for plain, observed in zip(plain_warm, observed_warm)
        ),
        "deterministic": all(
            results_match(first, second)
            for first, second in zip(observed_warm, observed_repeat)
        ),
        "traced_jobs": len(trace_ids),
        "gate_max_overhead": gate_max_overhead,
    }


def run_pipeline_workload(collector, topologies, size,
                          instances_per_cell, num_sweeps, num_reads,
                          repeats, gate_max_overhead, seed=23):
    """Staged pipeline vs direct compile+dispatch on a generated
    join-order workload.

    Both arms run the identical compiled problems at the identical
    seeded configs; the pipeline arm additionally pays pre-check,
    stage reporting and plan assembly per query. ``matches_direct``
    asserts the decoded orders and costs agree bit for bit (the
    polish is off so the pipeline does not improve on the raw
    decode), and the embedded ``gate_max_overhead`` caps the
    machinery's cost relative to the raw formulation+solve loop.
    """
    from repro.db.workloads import generate_join_workload
    from repro.pipeline import JoinOrderFormulation, OptimizationPipeline

    workload = generate_join_workload(
        topologies=topologies, sizes=(size,),
        instances_per_cell=instances_per_cell, seed=seed,
    )
    graphs = workload.graphs()
    configs = [SolverConfig(num_sweeps=num_sweeps, num_reads=num_reads,
                            seed=instance.seed % (2 ** 31))
               for instance in workload.instances]
    pipeline = OptimizationPipeline(
        JoinOrderFormulation(polish=False), solve="sa"
    )

    def run_direct():
        return [dispatch_solve(JoinOrderQUBO(graph).compile(),
                               solver="sa", config=config)
                for graph, config in zip(graphs, configs)]

    def run_pipe():
        return pipeline.optimize_workload(graphs, configs=configs)

    # Warm both paths once, keep the warm outputs for the parity and
    # determinism checks, then time min-of-repeats.
    direct_warm = run_direct()
    pipeline_warm = run_pipe()
    pipeline_repeat = run_pipe()

    direct_times = []
    with collector.span("perf.pipeline.direct"):
        for _ in range(repeats):
            started = time.perf_counter()
            run_direct()
            direct_times.append(time.perf_counter() - started)
    pipeline_times = []
    with collector.span("perf.pipeline.dispatch"):
        for _ in range(repeats):
            started = time.perf_counter()
            run_pipe()
            pipeline_times.append(time.perf_counter() - started)

    direct_seconds = min(direct_times)
    pipeline_seconds = min(pipeline_times)
    return {
        "name": "pipeline_throughput",
        "params": {
            "topologies": list(topologies),
            "size": size,
            "instances_per_cell": instances_per_cell,
            "num_queries": len(workload),
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "repeats": repeats,
            "workload_key": workload.workload_key,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "direct_seconds": direct_seconds,
        "pipeline_seconds": pipeline_seconds,
        "per_query_seconds": pipeline_seconds / len(workload),
        "overhead_fraction": pipeline_seconds / direct_seconds - 1.0,
        "matches_direct": all(
            plan.status == "ok"
            and plan.solution.order == result.solution.order
            and plan.solution.cost == result.solution.cost
            for plan, result in zip(pipeline_warm, direct_warm)
        ),
        "deterministic": all(
            first.solution.order == second.solution.order
            and first.solution.cost == second.solution.cost
            for first, second in zip(pipeline_warm, pipeline_repeat)
        ),
        "gate_max_overhead": gate_max_overhead,
    }


def _server_problem_body(index, num_sweeps, num_reads, seed, **extra):
    """A small QUBO submission body, distinct per ``index``.

    Distinct coefficients *and* seeds: identical bodies are idempotent
    (same server job) and identical solves coalesce inside the
    service, either of which would silently collapse the load the
    soak and backpressure phases mean to generate.
    """
    n = 4
    body = {
        "problem": {
            "kind": "qubo",
            "num_variables": n,
            "linear": {str(i): -1.0 - 0.1 * index for i in range(n)},
            "quadratic": [[i, i + 1, 2.0 + 0.05 * index]
                          for i in range(n - 1)],
        },
        "solver": "sa",
        "config": {"num_sweeps": num_sweeps, "num_reads": num_reads,
                   "seed": seed * 100 + index, "convergence": True},
    }
    body.update(extra)
    return body


def _strip_provenance(document):
    return {key: value for key, value in document.items()
            if key != "provenance"}


def _cache_hit_seconds(shards, num_clients, cache_rounds, repeats=3):
    """Wall clock for ``num_clients`` threads hammering the service's
    cache-hit path, min over ``repeats``; the sharded-vs-single pairing
    both sides of the ``speedup`` gate run through."""
    import threading

    from repro.service import SolveService

    problems = [JoinOrderQUBO(random_join_graph(4, "chain",
                                                seed=index)).compile()
                for index in range(8)]
    config = SolverConfig(num_sweeps=100, num_reads=2, seed=3,
                          convergence=False)
    times = []
    with SolveService(max_workers=1, mode="thread",
                      cache_shards=shards,
                      cache_entries=256) as service:
        for problem in problems:
            service.solve(problem, "sa", config)  # prime the cache
        for _ in range(repeats):
            barrier = threading.Barrier(num_clients + 1)

            def hammer():
                barrier.wait()
                for _ in range(cache_rounds):
                    for problem in problems:
                        service.solve(problem, "sa", config)

            threads = [threading.Thread(target=hammer)
                       for _ in range(num_clients)]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            times.append(time.perf_counter() - started)
        hits = service.stats()["cache"]["hits"]
    expected = repeats * num_clients * cache_rounds * len(problems)
    if hits < expected:
        raise AssertionError(
            f"cache-hit pairing missed the cache: {hits} < {expected}")
    return min(times)


def run_server_workload(collector, num_jobs, num_clients, num_sweeps,
                        num_reads, queue_capacity, cache_rounds,
                        gate_speedup_tolerance, seed=31):
    """HTTP front-end soak, backpressure and sharded-cache pairing.

    **Soak** — ``num_clients`` stdlib clients drive a thread-mode
    server (HTTP-layer cost, not process-pool cost) through a mixed
    phase: each submits its share of ``num_jobs`` distinct problems
    (cache misses), polls results, then resubmits them under a tag
    (new server jobs that hit the result cache). Every request is
    timed client-side; the record carries p50/p95 request latency and
    aggregate request throughput. One extra job is then streamed live
    over SSE, with per-row lag = client receive time − row journal
    timestamp. ``matches_direct`` asserts the HTTP result document
    equals a direct in-process ``solve()`` bit for bit (config
    resolved the way the service stores it); ``deterministic`` asserts
    the cache-hit resubmission returns the identical document.

    **Backpressure** — a second server with a ``queue_capacity``-deep
    job queue takes a burst of distinct submissions: the record must
    show non-zero ``rejected_429`` (each with a usable ``Retry-After``)
    while every accepted job still completes.

    **Cache pairing** — the service-level cache-hit path with the
    sharded result cache vs the single-lock baseline under the same
    client threads; the declared gate is parity (``gate_min_speedup``
    1.0) with a tolerance absorbing the one-extra-indirection cost the
    GIL cannot hide on a single-CPU box.
    """
    import threading

    from repro.server import build_problem, result_document
    from repro.server.testing import Client, ServerThread
    from repro.telemetry.metrics import quantile

    latencies = []
    latency_lock = threading.Lock()
    documents = {}

    def timed(client, method, path, body=None):
        started = time.perf_counter()
        result = client.request(method, path, body)
        with latency_lock:
            latencies.append(time.perf_counter() - started)
        return result

    def soak_worker(thread, client_index, errors):
        try:
            with Client(*thread.address,
                        tenant=f"soak-{client_index}") as client:
                mine = range(client_index, num_jobs, num_clients)
                for index in mine:  # miss phase
                    body = _server_problem_body(index, num_sweeps,
                                                num_reads, seed)
                    status, _, accepted = timed(client, "POST",
                                                "/v1/jobs", body)
                    assert status == 201, f"submit -> {status}"
                    status, document = client.wait_result(
                        accepted["job_id"])
                    assert status == 200, f"result -> {status}"
                    documents[index] = document["result"]
                    status, _, _ = timed(
                        client, "GET",
                        f"/v1/jobs/{accepted['job_id']}")
                    assert status == 200, f"status -> {status}"
                for index in mine:  # hit phase: new jobs, cached solve
                    body = _server_problem_body(
                        index, num_sweeps, num_reads, seed,
                        tag=f"hit-{client_index}")
                    status, _, accepted = timed(client, "POST",
                                                "/v1/jobs", body)
                    assert status == 201, f"resubmit -> {status}"
                    status, document = client.wait_result(
                        accepted["job_id"])
                    assert status == 200, f"hit result -> {status}"
                    assert (_strip_provenance(document["result"])
                            == _strip_provenance(documents[index]))
        except BaseException as error:  # noqa: BLE001 — rethrown below
            errors.append(error)

    with ServerThread(workers=0, quota_rate=10_000.0,
                      quota_burst=10_000.0, max_inflight=256,
                      queue_capacity=max(64, num_jobs * 4)) as thread:
        errors = []
        workers = [threading.Thread(target=soak_worker,
                                    args=(thread, index, errors))
                   for index in range(num_clients)]
        with collector.span("perf.server.soak"):
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        if errors:
            raise errors[0]

        # Parity against the direct in-process path, on job 0.
        body = _server_problem_body(0, num_sweeps, num_reads, seed)
        problem = build_problem(body["problem"])
        config = SolverConfig(**body["config"]).resolve_convergence()
        direct = result_document(dispatch_solve(problem, "sa", config))
        matches_direct = (_strip_provenance(documents[0])
                          == _strip_provenance(direct))
        # Determinism: a tagged resubmission (new job, cached solve)
        # returns the identical document.
        with Client(*thread.address) as client:
            status, _, accepted = client.submit(
                dict(body, tag="verify"))
            assert status == 201
            _, document = client.wait_result(accepted["job_id"])
            deterministic = (_strip_provenance(document["result"])
                             == _strip_provenance(documents[0]))

            # Live SSE stream on a fresh, slower job: row lag is the
            # client receive time minus the row's journal timestamp.
            stream_body = _server_problem_body(
                num_jobs + 1000, num_sweeps * 4, num_reads, seed)
            _, _, accepted = client.submit(stream_body)
            lags = [received - data["ts"]
                    for event, data, received
                    in client.stream(accepted["job_id"])
                    if event == "convergence"]

    soak_seconds = _span_total(collector, "perf.server.soak")
    sorted_latencies = sorted(latencies)

    # Backpressure burst against a tiny queue: must shed with 429s
    # that carry Retry-After, never hang, and finish what it accepted.
    rejected_429 = 0
    retry_after_ok = True
    accepted_jobs = []
    with ServerThread(workers=0, quota_rate=10_000.0,
                      quota_burst=10_000.0, max_inflight=256,
                      queue_capacity=queue_capacity) as thread:
        with Client(*thread.address) as client:
            for index in range(num_jobs + 4):
                body = _server_problem_body(500 + index,
                                            num_sweeps * 4, num_reads,
                                            seed)
                status, headers, document = client.submit(body)
                if status == 429:
                    rejected_429 += 1
                    retry_after_ok = (
                        retry_after_ok
                        and int(headers.get("retry-after", 0)) >= 1
                        and document.get("reason") == "queue")
                else:
                    assert status == 201, f"burst submit -> {status}"
                    accepted_jobs.append(document["job_id"])
            accepted_all_completed = True
            for job_id in accepted_jobs:
                status, _ = client.wait_result(job_id)
                accepted_all_completed = (accepted_all_completed
                                          and status == 200)

    single_seconds = _cache_hit_seconds(1, num_clients, cache_rounds)
    sharded_seconds = _cache_hit_seconds(8, num_clients, cache_rounds)

    return {
        "name": "server_throughput",
        "params": {
            "num_jobs": num_jobs,
            "num_clients": num_clients,
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "queue_capacity": queue_capacity,
            "cache_rounds": cache_rounds,
            "workers": 0,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "soak_seconds": soak_seconds,
        "requests_total": len(latencies),
        "requests_per_second": len(latencies) / soak_seconds,
        "request_p50_seconds": quantile(sorted_latencies, 0.50),
        "request_p95_seconds": quantile(sorted_latencies, 0.95),
        "stream_rows": len(lags),
        "stream_lag_p95_seconds": (quantile(sorted(lags), 0.95)
                                   if lags else 0.0),
        "rejected_429": rejected_429,
        "retry_after_ok": retry_after_ok,
        "accepted_all_completed": accepted_all_completed,
        "single_cache_seconds": single_seconds,
        "sharded_cache_seconds": sharded_seconds,
        "speedup": single_seconds / sharded_seconds,
        "matches_direct": matches_direct,
        "deterministic": deterministic,
        "gate_min_speedup": 1.0,
        "gate_speedup_tolerance": gate_speedup_tolerance,
    }


def run_workloads(scale, collector=None):
    collector = collector or telemetry.get_collector() or telemetry.Collector()
    return [
        run_kernel_workload(collector, **scale["kernel"]),
        run_sa_workload(collector, **scale["sa"]),
        run_compile_workload(collector, **scale["compile"]),
        run_service_workload(collector, **scale["service"]),
        run_metrics_overhead_workload(collector, **scale["metrics"]),
        run_pipeline_workload(collector, **scale["pipeline"]),
        run_obs_overhead_workload(collector, **scale["obs"]),
        run_server_workload(collector, **scale["server"]),
    ]


# ----------------------------------------------------------------------
# Pytest entry points (smoke scale; correctness over raw speedup)
# ----------------------------------------------------------------------
def test_perf_kernel_batched_matches_loop(bench_telemetry):
    record = run_kernel_workload(bench_telemetry,
                                 **SMOKE_SCALE["kernel"])
    print("\nkernel Gram loop {loop_seconds:.4f}s vs batched "
          "{batched_seconds:.4f}s ({speedup:.1f}x)".format(**record))
    assert record["max_abs_diff"] < 1e-10
    assert record["deterministic"]
    assert record["speedup"] > 1.0


def test_perf_sa_batched_is_faster_and_deterministic(bench_telemetry):
    record = run_sa_workload(bench_telemetry, **SMOKE_SCALE["sa"])
    print("\nSA loop {loop_seconds:.4f}s vs batched "
          "{batched_seconds:.4f}s ({speedup:.1f}x)".format(**record))
    assert record["deterministic"]
    assert record["speedup"] > 1.0
    # Both dynamics are valid annealers; at equal budgets their best
    # energies land in the same range on this easy instance.
    assert (record["batched_best_energy"]
            <= record["loop_best_energy"] + 2.0)


def test_perf_compile_dispatch_overhead_is_small(bench_telemetry):
    record = run_compile_workload(bench_telemetry,
                                  **SMOKE_SCALE["compile"])
    print("\ncompile dispatch {dispatch_seconds:.4f}s vs direct "
          "{direct_seconds:.4f}s ({overhead_fraction:+.2%} overhead)"
          .format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    assert record["overhead_fraction"] < MAX_DISPATCH_OVERHEAD


def test_perf_service_matches_sequential_bit_for_bit(bench_telemetry):
    record = run_service_workload(bench_telemetry,
                                  **SMOKE_SCALE["service"])
    print("\nservice sequential {sequential_seconds:.4f}s vs "
          "concurrent {service_seconds:.4f}s ({speedup:.2f}x)"
          .format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    # Same-model jobs must fold into fewer dispatches than jobs and
    # stay bit-for-bit against per-seed sequential solves.
    assert record["batch_matches_direct"]
    assert record["batch_dispatches"] < record["params"]["num_jobs"]
    assert record["pool"]["respawns"] == 0
    # The workload declares its own CPU-aware floor (1.5x with real
    # CPUs, parity on a single core) plus a tolerance for scheduler
    # jitter; enforce exactly what the record declares.
    assert record["speedup"] >= effective_speedup_floor(record)


def test_perf_pipeline_dispatch_overhead_is_small(bench_telemetry):
    record = run_pipeline_workload(bench_telemetry,
                                   **SMOKE_SCALE["pipeline"])
    print("\npipeline {pipeline_seconds:.4f}s vs direct "
          "{direct_seconds:.4f}s ({overhead_fraction:+.2%} overhead, "
          "gate < {gate_max_overhead:.0%})".format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    assert record["overhead_fraction"] < record["gate_max_overhead"]


def test_perf_metrics_guard_is_cheap_when_off(bench_telemetry):
    record = run_metrics_overhead_workload(bench_telemetry,
                                           **SMOKE_SCALE["metrics"])
    print("\nmetrics-off overhead: sa {sa_overhead:+.2%}, batch "
          "{batch_overhead:+.2%}, dispatch {dispatch_overhead:+.2%}, "
          "frontdoor {frontdoor_overhead:+.2%} "
          "(gate < {gate_max_overhead:.0%})".format(**record))
    assert record["deterministic"]
    assert record["overhead_fraction"] < record["gate_max_overhead"]


def test_perf_server_soak_backpressure_and_cache(bench_telemetry):
    record = run_server_workload(bench_telemetry,
                                 **SMOKE_SCALE["server"])
    print("\nserver soak {requests_total} req in {soak_seconds:.3f}s "
          "(p50 {request_p50_seconds:.4f}s, p95 "
          "{request_p95_seconds:.4f}s), {stream_rows} stream rows, "
          "{rejected_429} rejected, cache pairing {speedup:.2f}x"
          .format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    # The burst against a 2-deep queue must shed load with usable
    # Retry-After while every accepted job still completes.
    assert record["rejected_429"] > 0
    assert record["retry_after_ok"]
    assert record["accepted_all_completed"]
    assert record["stream_rows"] > 0
    assert record["speedup"] >= effective_speedup_floor(record)


def test_perf_obs_stack_is_cheap_when_on(bench_telemetry):
    record = run_obs_overhead_workload(bench_telemetry,
                                       **SMOKE_SCALE["obs"])
    print("\nobs-on overhead: plain {plain_seconds:.4f}s vs observed "
          "{observed_seconds:.4f}s ({overhead_fraction:+.2%}, gate < "
          "{gate_max_overhead:.0%})".format(**record))
    assert record["matches_direct"]
    assert record["deterministic"]
    assert record["traced_jobs"] == record["params"]["num_jobs"]
    assert record["overhead_fraction"] < record["gate_max_overhead"]


# ----------------------------------------------------------------------
# Script entry point: write the committed perf trajectory
# ----------------------------------------------------------------------
def main():
    scale_name = os.environ.get("REPRO_PERF_SCALE", "full")
    scale = SMOKE_SCALE if scale_name == "smoke" else FULL_SCALE
    collector = telemetry.enable()
    runs = run_workloads(scale, collector)
    telemetry.disable()
    document = {
        "schema": BENCH_SCHEMA,
        "provenance": telemetry.collect_provenance(
            "bench_perf_engine").to_dict(),
        "scale": scale_name,
        "workloads": runs,
    }
    # Fail fast on malformed output rather than committing it: CI and
    # bench-compare both consume this file through the same validator.
    validate_document(document)
    target = os.environ.get("REPRO_PERF_JSON", "")
    if not target:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        target = os.path.join(repo_root, "BENCH_perf.json")
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for record in runs:
        if "loop_seconds" in record:
            print("{name}: loop {loop_seconds:.3f}s, batched "
                  "{batched_seconds:.3f}s -> {speedup:.1f}x"
                  .format(**record))
        elif "sequential_seconds" in record:
            print("{name}: sequential {sequential_seconds:.3f}s, "
                  "service {service_seconds:.3f}s -> {speedup:.2f}x "
                  "({workers} workers, {cpus} cpus)"
                  .format(workers=record["params"]["workers"],
                          cpus=record["params"]["cpu_count"],
                          **record))
        elif record["name"] == "metrics_overhead":
            print("{name}: sa {sa_overhead:+.2%}, batch "
                  "{batch_overhead:+.2%}, dispatch "
                  "{dispatch_overhead:+.2%}, frontdoor "
                  "{frontdoor_overhead:+.2%} (worst "
                  "{overhead_fraction:+.2%}, gate < "
                  "{gate_max_overhead:.0%})".format(**record))
        elif record["name"] == "obs_overhead":
            print("{name}: plain {plain_seconds:.3f}s, observed "
                  "{observed_seconds:.3f}s -> {overhead_fraction:+.2%} "
                  "overhead (gate < {gate_max_overhead:.0%})"
                  .format(**record))
        elif record["name"] == "pipeline_throughput":
            print("{name}: direct {direct_seconds:.3f}s, pipeline "
                  "{pipeline_seconds:.3f}s -> {overhead_fraction:+.2%} "
                  "overhead (gate < {gate_max_overhead:.0%})"
                  .format(**record))
        elif record["name"] == "server_throughput":
            print("{name}: {requests_total} req in {soak_seconds:.3f}s "
                  "(p95 {request_p95_seconds:.4f}s), {rejected_429} "
                  "shed, cache pairing {speedup:.2f}x"
                  .format(**record))
        else:
            print("{name}: direct {direct_seconds:.3f}s, dispatch "
                  "{dispatch_seconds:.3f}s -> {overhead_fraction:+.2%} "
                  "overhead".format(**record))
    print(f"wrote {target}")
    # The 5x floor applies to the batched-vs-loop workloads only;
    # service and metrics workloads declare their own gates
    # (gate_min_speedup + tolerance, gate_max_overhead) checked here
    # exactly as bench_schema --gates would.
    slow = [r for r in runs
            if "loop_seconds" in r
            and r.get("speedup", math.inf) < 5.0]
    heavy = [r for r in runs
             if "gate_max_overhead" not in r
             and r.get("overhead_fraction", 0.0) >= MAX_DISPATCH_OVERHEAD]
    over_budget = [r for r in runs
                   if "gate_max_overhead" in r
                   and r.get("overhead_fraction", 0.0)
                   >= r["gate_max_overhead"]]
    under_gate = [r for r in runs
                  if "gate_min_speedup" in r
                  and r.get("speedup", 0.0) < effective_speedup_floor(r)]
    status = 0
    if scale_name == "full" and slow:
        names = ", ".join(r["name"] for r in slow)
        print(f"WARNING: speedup below 5x on: {names}", file=sys.stderr)
        status = 1
    if scale_name == "full" and heavy:
        names = ", ".join(r["name"] for r in heavy)
        print(f"WARNING: dispatch overhead >= 5% on: {names}",
              file=sys.stderr)
        status = 1
    if scale_name == "full" and over_budget:
        names = ", ".join(r["name"] for r in over_budget)
        print("WARNING: overhead above declared gate_max_overhead "
              f"on: {names}", file=sys.stderr)
        status = 1
    if scale_name == "full" and under_gate:
        names = ", ".join(r["name"] for r in under_gate)
        print(f"WARNING: speedup below declared gate on: {names}",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
