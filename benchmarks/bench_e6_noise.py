"""E6 — gate noise degrades VQC accuracy gracefully, then to chance."""

from repro.experiments import run_experiment


def test_e6_noise(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E6", error_rates=(0.0, 0.05, 0.2),
                               n_samples=50, epochs=22, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    accuracies = result.column("accuracy")
    # Shape: clean accuracy well above chance, high noise collapses to
    # roughly coin-flip, and accuracy never increases with noise by a
    # meaningful margin.
    assert accuracies[0] >= 0.75
    assert accuracies[-1] <= 0.65
    assert accuracies[-1] <= accuracies[0]
