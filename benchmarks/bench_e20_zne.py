"""E20 — zero-noise extrapolation recovers noisy expectation values."""

from repro.experiments import run_experiment


def test_e20_zne(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E20", error_rates=(0.005, 0.02, 0.04),
                               seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    rows = result.rows
    # Shape: large gains at low noise, shrinking as extrapolation
    # breaks down; mitigation never makes things meaningfully worse.
    assert rows[0]["improvement_factor"] > 3.0
    assert rows[0]["improvement_factor"] > rows[-1]["improvement_factor"]
    for row in rows:
        assert row["mitigated_error"] <= row["noisy_error"] * 1.1
