"""E17 — quantum-kernel accuracy recovers as the shot budget grows."""

from repro.experiments import run_experiment


def test_e17_kernel_shots(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E17", shot_budgets=(8, 128, None),
                               n_samples=48, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    rows = result.rows
    # Shape: Gram error shrinks with shots and the exact kernel's
    # accuracy is reached (or approached) by the largest shot budget.
    assert rows[0]["gram_rms_error"] > rows[1]["gram_rms_error"]
    assert rows[-1]["gram_rms_error"] == 0.0
    assert rows[1]["test_accuracy"] >= rows[-1]["test_accuracy"] - 0.1
