"""E12 — QAOA approximation ratio climbs with circuit depth p."""

from repro.experiments import run_experiment


def test_e12_qaoa_depth(benchmark, show_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E12", depths=(1, 2, 3), num_spins=7,
                               instances=3, seed=0),
        rounds=1, iterations=1,
    )
    show_table(result)
    ratios = result.column("approximation_ratio")
    hits = result.column("ground_state_hit_rate")
    # Shape: the expectation-level approximation ratio climbs with
    # depth; sampling hit rates are noisier (angle optimization can
    # land in local optima at higher p) so only a floor is asserted.
    assert ratios[-1] > ratios[0]
    assert max(hits[1:]) >= hits[0] - 0.1
    assert ratios[0] > 0.5  # even p=1 beats random guessing
