"""Setup shim.

This environment has no network access and no ``wheel`` package, so the
PEP 660 editable-install path (which needs ``bdist_wheel``) is
unavailable. Keeping a ``setup.py`` lets ``pip install -e .`` fall back
to the legacy ``setup.py develop`` code path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
