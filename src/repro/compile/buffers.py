"""Stable flat-buffer layout for binary models (QUBO / Ising).

The solve service's warm worker pool ships models to long-lived worker
processes through ``multiprocessing.shared_memory`` instead of pickling
them into every job. That needs a *stable, self-describing* byte layout
for the two model kinds the solver registry consumes:

* :func:`pack_model` — lower a :class:`~repro.annealing.qubo.QUBO` or
  :class:`~repro.annealing.ising.IsingModel` to a small metadata dict
  plus a list of contiguous numpy arrays (int64 index arrays, float64
  coefficient arrays).
* :func:`write_packed` — copy those arrays into a writable buffer (a
  shared-memory segment) at the offsets recorded in the metadata.
* :func:`unpack_model` — reconstruct an equivalent model from a
  read-only buffer, **bit for bit**: term values round-trip as exact
  IEEE doubles and — crucially — *dict insertion order is preserved*.

Why insertion order matters: several code paths (``IsingModel.to_qubo``,
``IsingModel.energy``) accumulate floats by iterating the ``h`` / ``j``
/ coefficient dicts in insertion order. Floating-point addition is not
associative, so re-ordering terms could shift results by an ulp and
break the service's bit-for-bit parity guarantee against sequential
``solve()``. The packed layout therefore stores terms in the model's
own dict order, not sorted order (sorting is what
:meth:`CompiledProblem.content_key` does — a hash does not care about
accumulation order, an energy sum does).

Layout (all little-endian, offsets in the metadata dict):

=========  =======================================================
kind       arrays (in buffer order)
=========  =======================================================
``qubo``   ``terms_idx`` int64 ``(num_terms, 2)`` — (u, v) with
           ``u == v`` marking linear terms; ``terms_val`` float64
           ``(num_terms,)``
``ising``  ``h_idx`` int64 ``(num_h,)``; ``h_val`` float64
           ``(num_h,)``; ``j_idx`` int64 ``(num_j, 2)``;
           ``j_val`` float64 ``(num_j,)``
=========  =======================================================

The metadata dict is tiny (plain ints/floats/strings) and travels over
the worker pipe; only the term arrays live in shared memory.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..annealing.ising import IsingModel
from ..annealing.qubo import QUBO

__all__ = [
    "pack_model",
    "packed_nbytes",
    "unpack_model",
    "write_packed",
]

#: Version tag embedded in every metadata dict so a future layout
#: change cannot be silently misread by an older worker.
BUFFER_LAYOUT_VERSION = 1


def _plan_arrays(arrays: List[Tuple[str, np.ndarray]]
                 ) -> Tuple[Dict[str, Any], int]:
    """Assign buffer offsets to named arrays; returns (plan, nbytes)."""
    plan: Dict[str, Any] = {}
    offset = 0
    for name, array in arrays:
        array = np.ascontiguousarray(array)
        plan[name] = {
            "offset": offset,
            "shape": list(array.shape),
            "dtype": str(array.dtype),
        }
        offset += array.nbytes
    return plan, offset


def pack_model(model: Any) -> Tuple[Dict[str, Any],
                                    List[np.ndarray]]:
    """Lower a model to ``(metadata, arrays)`` in dict insertion order.

    The returned arrays align 1:1 with the ``arrays`` plan inside the
    metadata; hand both to :func:`write_packed` to fill a buffer.
    """
    if isinstance(model, QUBO):
        items = list(model._coefficients.items())
        idx = np.array([key for key, _ in items],
                       dtype=np.int64).reshape(len(items), 2)
        val = np.array([value for _, value in items], dtype=np.float64)
        named = [("terms_idx", idx), ("terms_val", val)]
        meta: Dict[str, Any] = {
            "kind": "qubo",
            "num_variables": int(model.num_variables),
        }
    elif isinstance(model, IsingModel):
        h_items = list(model.h.items())
        j_items = list(model.j.items())
        named = [
            ("h_idx", np.array([key for key, _ in h_items],
                               dtype=np.int64)),
            ("h_val", np.array([value for _, value in h_items],
                               dtype=np.float64)),
            ("j_idx", np.array([key for key, _ in j_items],
                               dtype=np.int64).reshape(len(j_items), 2)),
            ("j_val", np.array([value for _, value in j_items],
                               dtype=np.float64)),
        ]
        meta = {
            "kind": "ising",
            "num_spins": int(model.num_spins),
        }
    else:
        raise TypeError(
            f"pack_model supports QUBO and IsingModel, got "
            f"{type(model).__name__}"
        )
    plan, nbytes = _plan_arrays(named)
    meta["layout_version"] = BUFFER_LAYOUT_VERSION
    meta["offset_constant"] = float(model.offset)
    meta["arrays"] = plan
    meta["nbytes"] = nbytes
    return meta, [array for _, array in named]


def packed_nbytes(meta: Dict[str, Any]) -> int:
    """Total buffer size the packed arrays need (may be zero)."""
    return int(meta["nbytes"])


def write_packed(meta: Dict[str, Any], arrays: List[np.ndarray],
                 buffer: memoryview) -> None:
    """Copy packed arrays into ``buffer`` at their planned offsets."""
    plan = meta["arrays"]
    for (name, spec), array in zip(plan.items(), arrays):
        array = np.ascontiguousarray(array)
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=buffer, offset=spec["offset"])
        view[...] = array


def _read_array(meta: Dict[str, Any], name: str,
                buffer: memoryview) -> np.ndarray:
    spec = meta["arrays"][name]
    return np.ndarray(tuple(spec["shape"]), dtype=spec["dtype"],
                      buffer=buffer, offset=spec["offset"])


def unpack_model(meta: Dict[str, Any], buffer: memoryview) -> Any:
    """Reconstruct the model from a packed buffer, bit for bit.

    The reconstructed model's term dicts repeat the original's
    insertion order and exact float values, so every accumulation,
    conversion (``to_qubo``) and dense-array build downstream produces
    byte-identical numerics. The returned model owns its data (term
    values are copied out of the buffer), so the caller may close the
    underlying shared-memory segment immediately.
    """
    version = meta.get("layout_version")
    if version != BUFFER_LAYOUT_VERSION:
        raise ValueError(
            f"unsupported model buffer layout {version!r} "
            f"(this build reads version {BUFFER_LAYOUT_VERSION})"
        )
    kind = meta["kind"]
    if kind == "qubo":
        model = QUBO(meta["num_variables"],
                     offset=meta["offset_constant"])
        idx = _read_array(meta, "terms_idx", buffer)
        val = _read_array(meta, "terms_val", buffer)
        # Rebuild the coefficient store directly: the constructor path
        # (add_linear/add_quadratic) would re-accumulate and re-order.
        model._coefficients = {
            (int(u), int(v)): float(c)
            for (u, v), c in zip(idx, val)
        }
        return model
    if kind == "ising":
        model = IsingModel(meta["num_spins"],
                           offset=meta["offset_constant"])
        h_idx = _read_array(meta, "h_idx", buffer)
        h_val = _read_array(meta, "h_val", buffer)
        j_idx = _read_array(meta, "j_idx", buffer)
        j_val = _read_array(meta, "j_val", buffer)
        # Assign dicts directly: __init__ drops accumulated zeros and
        # would not reproduce an arbitrary stored dict faithfully.
        model.h = {int(i): float(v) for i, v in zip(h_idx, h_val)}
        model.j = {(int(a), int(b)): float(v)
                   for (a, b), v in zip(j_idx, j_val)}
        return model
    raise ValueError(f"unknown packed model kind {kind!r}")
