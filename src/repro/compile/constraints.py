"""Reusable constraint primitives and the problem builder.

This module is the single audited place for the modelling boilerplate
the five ``repro.db`` formulations used to duplicate:

* ``penalty_scale`` validation (:func:`validate_penalty_scale`),
* the analytic penalty-weight rule (:func:`analytic_penalty_weight`):
  every formulation derives a bound ``span`` on the objective swing a
  single constraint violation can buy, and the penalty weight is
  ``penalty_scale * (span + 1.0)`` so violations never pay for
  themselves at the default scale,
* constraint wiring — ``exactly_one`` / ``at_most_one`` /
  ``implication`` penalties and the binary-slack ``linear_leq``
  (knapsack) encoding.

:class:`ProblemBuilder` records objective terms and constraints as an
ordered op list and materializes the model only in :meth:`finish`, so
variables may keep being registered while constraints are added (the
slack trick needs this) and the coefficient-accumulation order — and
therefore the floating-point result — is exactly the recording order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..annealing.ising import IsingModel
from ..annealing.qubo import QUBO
from .ir import CompiledProblem, VariableRegistry


def validate_penalty_scale(penalty_scale: float) -> float:
    """Reject non-positive penalty scales (shared by all formulations)."""
    if penalty_scale <= 0:
        raise ValueError("penalty_scale must be positive")
    return float(penalty_scale)


def analytic_penalty_weight(span: float, penalty_scale: float = 1.0
                            ) -> float:
    """The analytic penalty rule: ``penalty_scale * (span + 1.0)``.

    ``span`` bounds the objective improvement any single constraint
    violation can yield; the ``+ 1.0`` margin makes the penalized
    ground state strictly feasible at ``penalty_scale = 1``.
    """
    if span < 0:
        raise ValueError("span must be non-negative")
    return float(penalty_scale) * (float(span) + 1.0)


def binary_slack_coefficients(bound: int) -> List[int]:
    """Binary-expansion slack weights covering exactly ``[0, bound]``.

    Powers of two followed by a remainder term, the standard
    inequality-to-equality trick for knapsack-style constraints.
    """
    if bound < 1:
        raise ValueError("bound must be a positive integer")
    num_slack = max(1, int(bound).bit_length())
    weights: List[int] = []
    remaining = int(bound)
    power = 1
    while len(weights) < num_slack - 1:
        weights.append(power)
        remaining -= power
        power *= 2
    weights.append(max(1, remaining))
    return weights


class ProblemBuilder:
    """Ordered recorder of variables, objective terms and constraints.

    One builder produces one :class:`~repro.compile.ir.CompiledProblem`.
    ``mode="qubo"`` (default) materializes a :class:`QUBO`;
    ``mode="ising"`` materializes an :class:`IsingModel` from recorded
    field/coupling ops (used by the partitioning formulation, whose
    spins need no auxiliary variables).
    """

    def __init__(self, name: str, penalty_scale: float = 1.0,
                 mode: str = "qubo"):
        if mode not in ("qubo", "ising"):
            raise ValueError("mode must be 'qubo' or 'ising'")
        self.name = str(name)
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        self.mode = mode
        self.variables = VariableRegistry()
        self._ops: List[Tuple[str, tuple]] = []
        self._constraint_counts: Dict[str, int] = {}

    # -- variables -------------------------------------------------------
    def add_variable(self, *name: Any) -> int:
        """Register a logical variable; returns its bit/spin index."""
        return self.variables.add(*name)

    def add_variables(self, names: Sequence[Sequence[Any]]) -> List[int]:
        """Register several variables; returns their indices in order."""
        return [self.variables.add(*name) for name in names]

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    # -- objective terms -------------------------------------------------
    def add_linear(self, variable: int, coefficient: float) -> "ProblemBuilder":
        """Add ``coefficient * x_variable`` to the objective."""
        self._require_mode("qubo")
        self._ops.append(("linear", (variable, float(coefficient))))
        return self

    def add_quadratic(self, u: int, v: int,
                      coefficient: float) -> "ProblemBuilder":
        """Add ``coefficient * x_u * x_v`` to the objective."""
        self._require_mode("qubo")
        self._ops.append(("quadratic", (u, v, float(coefficient))))
        return self

    def add_offset(self, value: float) -> "ProblemBuilder":
        """Add a constant to the objective."""
        self._require_mode("qubo")
        self._ops.append(("offset", (float(value),)))
        return self

    def add_field(self, spin: int, value: float) -> "ProblemBuilder":
        """Add a local field ``value * s_spin`` (Ising mode)."""
        self._require_mode("ising")
        self._ops.append(("field", (spin, float(value))))
        return self

    def add_coupling(self, a: int, b: int, value: float) -> "ProblemBuilder":
        """Add a coupling ``value * s_a s_b`` (Ising mode)."""
        self._require_mode("ising")
        self._ops.append(("coupling", (a, b, float(value))))
        return self

    # -- constraint primitives -------------------------------------------
    def exactly_one(self, variables: Sequence[int],
                    weight: float) -> "ProblemBuilder":
        """One-hot constraint: penalize ``(sum_i x_i - 1)^2 * weight``."""
        self._require_mode("qubo")
        self._record_constraint("exactly_one")
        self._ops.append(("exactly_one", (tuple(variables), float(weight))))
        return self

    def at_most_one(self, variables: Sequence[int],
                    weight: float) -> "ProblemBuilder":
        """Penalize any pair of the variables being set together."""
        self._require_mode("qubo")
        self._record_constraint("at_most_one")
        self._ops.append(("at_most_one", (tuple(variables), float(weight))))
        return self

    def implication(self, u: int, v: int,
                    weight: float) -> "ProblemBuilder":
        """Penalize ``x_u = 1 and x_v = 0`` (u implies v)."""
        self._require_mode("qubo")
        self._record_constraint("implication")
        self._ops.append(("implication", (u, v, float(weight))))
        return self

    def forbid_together(self, u: int, v: int,
                        weight: float) -> "ProblemBuilder":
        """Penalize ``x_u = x_v = 1`` (conflict-pair constraint)."""
        self._require_mode("qubo")
        self._record_constraint("forbid_together")
        self._ops.append(("quadratic", (u, v, float(weight))))
        return self

    def linear_leq(self, coefficients: Sequence[Tuple[int, float]],
                   bound: int, weight: float,
                   slack_label: Any = "slack") -> List[int]:
        """Knapsack constraint ``sum c_i x_i <= bound`` via binary slack.

        Registers slack variables ``(slack_label, k)``, then records the
        squared-equality penalty ``weight * (sum c_i x_i + sum w_k z_k
        - bound)^2``. Returns the slack variable indices.
        """
        self._require_mode("qubo")
        self._record_constraint("linear_leq")
        slack_weights = binary_slack_coefficients(bound)
        slack_indices = [
            self.add_variable(slack_label, k)
            for k in range(len(slack_weights))
        ]
        terms = [(int(v), float(c)) for v, c in coefficients]
        terms += [
            (index, float(c))
            for index, c in zip(slack_indices, slack_weights)
        ]
        bound = float(bound)
        for position, (a, ca) in enumerate(terms):
            self._ops.append(
                ("linear", (a, weight * (ca * ca - 2.0 * bound * ca)))
            )
            for b, cb in terms[position + 1:]:
                self._ops.append(
                    ("quadratic", (a, b, weight * 2.0 * ca * cb))
                )
        self._ops.append(("offset", (weight * bound * bound,)))
        return slack_indices

    # -- materialization -------------------------------------------------
    def finish(self, decode: Callable[..., Any],
               score: Callable[[Any], Any],
               feasible: Callable[[Any], bool],
               repair: Optional[Callable[[Any], Any]] = None,
               metadata: Optional[Dict[str, Any]] = None
               ) -> CompiledProblem:
        """Replay the recorded ops into a model and assemble the IR."""
        if self.num_variables < 1:
            raise ValueError("no variables registered")
        for kind in self._constraint_counts:
            telemetry.count(
                f"compile.constraints.{kind}",
                self._constraint_counts[kind],
            )
        telemetry.count("compile.problems")
        model = (self._build_qubo() if self.mode == "qubo"
                 else self._build_ising())
        info: Dict[str, Any] = {
            "penalty_scale": self.penalty_scale,
            "constraints": dict(self._constraint_counts),
        }
        info.update(metadata or {})
        return CompiledProblem(
            name=self.name,
            model=model,
            variables=self.variables,
            decode=decode,
            score=score,
            feasible=feasible,
            repair=repair,
            metadata=info,
        )

    def _build_qubo(self) -> QUBO:
        qubo = QUBO(self.num_variables)
        for kind, args in self._ops:
            if kind == "linear":
                qubo.add_linear(*args)
            elif kind == "quadratic":
                qubo.add_quadratic(*args)
            elif kind == "offset":
                qubo.add_offset(*args)
            elif kind == "exactly_one":
                qubo.add_penalty_exactly_one(list(args[0]), args[1])
            elif kind == "at_most_one":
                qubo.add_penalty_at_most_one(list(args[0]), args[1])
            elif kind == "implication":
                qubo.add_penalty_implication(*args)
            else:  # pragma: no cover - guarded by _require_mode
                raise AssertionError(f"op {kind} in qubo mode")
        return qubo

    def _build_ising(self) -> IsingModel:
        h: Dict[int, float] = {}
        j: Dict[Tuple[int, int], float] = {}
        for kind, args in self._ops:
            if kind == "field":
                spin, value = args
                h[spin] = h.get(spin, 0.0) + value
            elif kind == "coupling":
                a, b, value = args
                key = (min(a, b), max(a, b))
                j[key] = j.get(key, 0.0) + value
            else:  # pragma: no cover - guarded by _require_mode
                raise AssertionError(f"op {kind} in ising mode")
        return IsingModel(self.num_variables, h=h, j=j)

    def _record_constraint(self, kind: str) -> None:
        self._constraint_counts[kind] = (
            self._constraint_counts.get(kind, 0) + 1
        )

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise ValueError(
                f"operation requires mode={mode!r}, builder is "
                f"mode={self.mode!r}"
            )

    def __repr__(self) -> str:
        return (
            f"ProblemBuilder(name={self.name!r}, mode={self.mode!r}, "
            f"num_variables={self.num_variables}, ops={len(self._ops)})"
        )
