"""String-addressable solver registry and the ``solve`` front door.

Every annealing-style backend in :mod:`repro.annealing` registers here
under a short name (``"sa"``, ``"sqa"``, ``"tabu"``, ``"qaoa"``,
``"exact"``, ``"pt"``), so swapping solvers is a config/CLI knob
rather than a code change::

    from repro.compile import SolverConfig, solve
    result = solve(problem, solver="sqa",
                   config=SolverConfig(num_sweeps=400, num_reads=20,
                                       seed=7))

``solve`` validates the config, threads the seed into the backend,
wraps the run in a telemetry span, decodes every read through the
problem's hooks and returns a uniform :class:`SolveResult` (best
decoded solution, feasibility flag, per-read energy trajectory,
provenance).

The uniform knobs map onto each backend's closest notion:

========  =====================  =====================
solver    ``num_sweeps``         ``num_reads``
========  =====================  =====================
sa        Metropolis sweeps      restarts
sqa       PIMC sweeps            restarts
pt        sweeps per replica     restarts
tabu      ``max_iterations``     ``num_restarts``
qaoa      optimizer ``maxiter``  ``restarts``
exact     ignored                ignored
========  =====================  =====================

Backend-specific knobs (``num_slices``, ``tenure``, ``p``, ...) ride
in ``SolverConfig.options`` and are forwarded to the constructor.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..telemetry import profiler as _profiler
from ..telemetry.progress import ProgressTrace
from ..annealing.exact import solve_ising_exact, solve_qubo_exact
from ..annealing.ising import IsingModel, spins_to_bits
from ..annealing.qaoa import QAOASolver
from ..annealing.qubo import QUBO
from ..annealing.results import Sample, SampleSet
from ..annealing.simulated_annealing import SimulatedAnnealingSolver
from ..annealing.sqa import SimulatedQuantumAnnealingSolver
from ..annealing.tabu import TabuSearchSolver
from ..annealing.tempering import ParallelTemperingSolver
from .ir import CompiledProblem, Model


@dataclass
class SolverConfig:
    """Uniform solver configuration threaded through the registry.

    ``None`` fields fall back to the backend's own constructor
    defaults; ``options`` carries backend-specific keyword arguments
    verbatim.

    ``convergence`` controls the per-iteration convergence trace
    attached to :attr:`SolveResult.convergence`: ``True`` always
    records it, ``False`` never does, and the default ``None`` enables
    it automatically while event tracing
    (:func:`repro.telemetry.enable_tracing`) is active.
    """

    num_sweeps: Optional[int] = None
    num_reads: Optional[int] = None
    seed: Optional[int] = None
    convergence: Optional[bool] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_sweeps is not None and self.num_sweeps < 1:
            raise ValueError("num_sweeps must be positive")
        if self.num_reads is not None and self.num_reads < 1:
            raise ValueError("num_reads must be positive")
        if self.seed is not None and not isinstance(self.seed, (int,
                                                                np.integer)):
            raise ValueError("seed must be an integer")
        if self.convergence is not None and not isinstance(
                self.convergence, bool):
            raise ValueError("convergence must be True, False or None")
        if not isinstance(self.options, dict):
            raise ValueError("options must be a dict")
        reserved = {"num_sweeps", "num_reads", "seed"}
        clashes = reserved & set(self.options)
        if clashes:
            raise ValueError(
                f"options may not override uniform knobs: {sorted(clashes)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_sweeps": self.num_sweeps,
            "num_reads": self.num_reads,
            "seed": None if self.seed is None else int(self.seed),
            "convergence": self.convergence,
            "options": dict(self.options),
        }

    def convergence_active(self) -> bool:
        """Resolve the tri-state flag against the live tracer."""
        if self.convergence is None:
            return telemetry.get_tracer() is not None
        return self.convergence

    def resolve_convergence(self) -> "SolverConfig":
        """A copy with the convergence tri-state pinned to a bool.

        The ``None`` ("auto-on while tracing") state is resolved
        against *this* process's tracer. Cross-process dispatch must
        call this before shipping the config to a worker — the worker
        has its own (empty) tracer state, so an unresolved ``None``
        would silently flip the semantics there.
        """
        if self.convergence is not None:
            return self
        return replace(self, convergence=self.convergence_active())

    def require_picklable(self) -> "SolverConfig":
        """Validate the config round-trips through pickle; return it.

        Cross-process dispatch pickles the config into the worker. A
        callable or pre-configured solver instance smuggled into
        ``options`` would otherwise crash deep inside the worker with
        an opaque pickling traceback; this surfaces the offending keys
        as a clear :class:`ValueError` *before* the job is enqueued.
        """
        try:
            restored = pickle.loads(pickle.dumps(self))
        except Exception as error:
            bad_keys = []
            for key, value in self.options.items():
                try:
                    pickle.dumps(value)
                except Exception:
                    bad_keys.append(key)
            detail = (f" (unpicklable options: {sorted(bad_keys)})"
                      if bad_keys else "")
            raise ValueError(
                "SolverConfig does not survive pickling for "
                f"cross-process dispatch{detail}: {error}"
            ) from error
        if restored.to_dict() != self.to_dict():
            raise ValueError(
                "SolverConfig does not round-trip through pickle: "
                f"{restored.to_dict()} != {self.to_dict()}"
            )
        return self


#: Adapter signature: ``run(model, config, progress)`` where
#: ``progress`` is an optional :class:`ProgressTrace` the backend
#: should feed one uniform convergence row per iteration.
RunAdapter = Callable[[Model, SolverConfig, Optional[ProgressTrace]],
                      SampleSet]


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry: a name, a description and a run adapter."""

    name: str
    description: str
    run: RunAdapter


_REGISTRY: Dict[str, SolverSpec] = {}


def register_solver(name: str, description: str,
                    run: RunAdapter) -> None:
    """Register a solver adapter under a string name."""
    if name in _REGISTRY:
        raise ValueError(f"solver {name!r} registered twice")
    _REGISTRY[name] = SolverSpec(name=name, description=description,
                                 run=run)


def available_solvers() -> Dict[str, str]:
    """Mapping of registered solver name -> description."""
    return {name: spec.description for name, spec in
            sorted(_REGISTRY.items())}


def _unknown_solver_error(name: str) -> ValueError:
    names = ", ".join(sorted(_REGISTRY))
    return ValueError(
        f"unknown solver {name!r}; registered solvers: {names}"
    )


# ----------------------------------------------------------------------
# Backend adapters
# ----------------------------------------------------------------------
def _config_kwargs(config: SolverConfig,
                   sweeps_key: Optional[str] = "num_sweeps",
                   reads_key: Optional[str] = "num_reads"
                   ) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = dict(config.options)
    if sweeps_key is not None and config.num_sweeps is not None:
        kwargs[sweeps_key] = config.num_sweeps
    if reads_key is not None and config.num_reads is not None:
        kwargs[reads_key] = config.num_reads
    return kwargs


def _seed_int(config: SolverConfig) -> Optional[int]:
    return None if config.seed is None else int(config.seed)


def _run_sa(model: Model, config: SolverConfig,
            progress: Optional[ProgressTrace] = None) -> SampleSet:
    solver = SimulatedAnnealingSolver(seed=_seed_int(config),
                                      progress=progress,
                                      **_config_kwargs(config))
    return solver.solve(model)


def _run_sqa(model: Model, config: SolverConfig,
             progress: Optional[ProgressTrace] = None) -> SampleSet:
    solver = SimulatedQuantumAnnealingSolver(seed=_seed_int(config),
                                             progress=progress,
                                             **_config_kwargs(config))
    return solver.solve(model)


def _run_pt(model: Model, config: SolverConfig,
            progress: Optional[ProgressTrace] = None) -> SampleSet:
    solver = ParallelTemperingSolver(seed=_seed_int(config),
                                     progress=progress,
                                     **_config_kwargs(config))
    return solver.solve(model)


def _run_tabu(model: Model, config: SolverConfig,
              progress: Optional[ProgressTrace] = None) -> SampleSet:
    kwargs = _config_kwargs(config, sweeps_key="max_iterations",
                            reads_key="num_restarts")
    solver = TabuSearchSolver(seed=_seed_int(config), progress=progress,
                              **kwargs)
    if isinstance(model, IsingModel):
        model = model.to_qubo()
    return solver.solve(model)


def _run_qaoa(model: Model, config: SolverConfig,
              progress: Optional[ProgressTrace] = None) -> SampleSet:
    kwargs = _config_kwargs(config, sweeps_key="maxiter",
                            reads_key="restarts")
    solver = QAOASolver(seed=_seed_int(config), progress=progress,
                        **kwargs)
    return solver.solve(model).samples


def _run_exact(model: Model, config: SolverConfig,
               progress: Optional[ProgressTrace] = None) -> SampleSet:
    if isinstance(model, QUBO):
        samples = SampleSet([solve_qubo_exact(model)])
    else:
        spins, energy = solve_ising_exact(model)
        bits = tuple(int(b) for b in spins_to_bits(spins))
        samples = SampleSet([Sample(bits, energy)])
    if progress is not None:
        # Enumeration has no iterations; one terminal row keeps the
        # convergence schema uniform across every registered solver.
        progress.record(iteration=0,
                        best_energy=samples.best_energy,
                        current_energy=samples.best_energy)
    return samples


register_solver("sa", "simulated (thermal) annealing", _run_sa)
register_solver("sqa", "simulated quantum annealing (path-integral "
                       "Monte Carlo)", _run_sqa)
register_solver("tabu", "tabu search over single-bit flips", _run_tabu)
register_solver("qaoa", "QAOA on the statevector simulator", _run_qaoa)
register_solver("exact", "exhaustive enumeration (ground truth)",
                _run_exact)
register_solver("pt", "parallel tempering (replica exchange)", _run_pt)


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
@dataclass
class SolveResult:
    """Uniform result of ``solve``: one best decoded solution plus the
    evidence behind it.

    ``solutions`` aligns 1:1 with ``samples`` (distinct reads, sorted
    by energy ascending); ``energies`` is the per-read energy
    trajectory expanded by occurrence counts, so its minimum is the
    best energy the backend reached.

    ``convergence`` — populated when the config's convergence flag
    resolves active — is a list of uniform per-iteration dicts
    (``iteration``, ``best_energy``, ``current_energy``,
    ``acceptance_rate``, ``schedule_value``) every registered backend
    emits through the shared :class:`ProgressTrace` hook.
    """

    problem: str
    solver: str
    solution: Any
    feasible: bool
    energy: float
    energies: np.ndarray
    samples: SampleSet
    solutions: List[Any]
    config: SolverConfig
    provenance: Dict[str, Any]
    convergence: Optional[List[Dict[str, Any]]] = None

    def __repr__(self) -> str:
        return (
            f"SolveResult(problem={self.problem!r}, "
            f"solver={self.solver!r}, feasible={self.feasible}, "
            f"energy={self.energy:g}, reads={len(self.samples)})"
        )


def run_registry_backend(model: Model, solver_name: str,
                         config: SolverConfig,
                         progress: Optional[ProgressTrace] = None
                         ) -> SampleSet:
    """Run one registered backend adapter on a bare binary model.

    This is the slice of :func:`solve` that the solve service executes
    inside a worker process: it needs only picklable inputs (the model
    and the config), no :class:`CompiledProblem` hooks.
    """
    if solver_name not in _REGISTRY:
        raise _unknown_solver_error(solver_name)
    registry = _metrics.get_registry()
    if registry is None:
        return _REGISTRY[solver_name].run(model, config, progress)
    with registry.histogram(
            "solver_solve_seconds",
            "backend execution wall clock per registered solver",
            ("solver",)).labels(solver=solver_name).time():
        return _REGISTRY[solver_name].run(model, config, progress)


def decode_samples(problem: CompiledProblem,
                   samples: SampleSet) -> List[Any]:
    """Decode every read through the problem's ``decode`` hook."""
    return [problem.decode(sample.assignment) for sample in samples]


def select_best_solution(problem: CompiledProblem,
                         solutions: List[Any],
                         repair: bool = False) -> Any:
    """Pick the strictly-best scored solution, optionally repaired.

    Ties keep the earliest (lowest-energy) read — the same strict
    ``<`` rule :func:`solve` has always used, factored out so the
    service's parent-side assembly is bit-for-bit identical.
    """
    best = solutions[0]
    best_score = problem.score(best)
    for candidate in solutions[1:]:
        score = problem.score(candidate)
        if score < best_score:
            best, best_score = candidate, score
    if repair and problem.repair is not None:
        best = problem.repair(best)
        telemetry.count("compile.repair.applied")
    return best


def assemble_result(problem: CompiledProblem, solver_name: str,
                    config: SolverConfig, samples: SampleSet,
                    solutions: List[Any], duration: float,
                    convergence: Optional[List[Dict[str, Any]]] = None,
                    repair: bool = False,
                    provenance_extra: Optional[Dict[str, Any]] = None
                    ) -> SolveResult:
    """Assemble the uniform :class:`SolveResult` from solver output.

    Shared by :func:`solve` (in-process) and the solve service (which
    runs the backend in a worker and assembles here in the parent, so
    both paths produce bit-for-bit identical results).
    """
    telemetry.count("compile.solve.runs")
    telemetry.count(f"compile.solve.{solver_name}.runs")
    telemetry.count("compile.solve.reads", len(samples))

    best = select_best_solution(problem, solutions, repair=repair)

    from .. import __version__

    provenance: Dict[str, Any] = {
        "problem": problem.name,
        "solver": solver_name,
        "config": config.to_dict(),
        "seed": None if config.seed is None else int(config.seed),
        "num_variables": problem.num_variables,
        "version": __version__,
        "duration_seconds": duration,
        "convergence_rows": (len(convergence) if convergence is not None
                             else 0),
    }
    if provenance_extra:
        provenance.update(provenance_extra)

    return SolveResult(
        problem=problem.name,
        solver=solver_name,
        solution=best,
        feasible=bool(problem.feasible(best)),
        energy=float(samples.best_energy),
        energies=samples.energies(),
        samples=samples,
        solutions=solutions,
        config=config,
        provenance=provenance,
        convergence=convergence,
    )


def make_solver(name: str, config: Optional[SolverConfig] = None
                ) -> Callable[[Model], SampleSet]:
    """Bind a registered solver and a config into ``model -> SampleSet``.

    Handy when code wants registry dispatch but manages decoding
    itself (the experiment runners use this for their baseline arms).
    """
    if name not in _REGISTRY:
        raise _unknown_solver_error(name)
    spec = _REGISTRY[name]
    bound_config = config if config is not None else SolverConfig()

    def run(model: Model) -> SampleSet:
        return spec.run(model, bound_config, None)

    return run


def solve(problem: CompiledProblem,
          solver: Union[str, Any] = "sa",
          config: Optional[SolverConfig] = None,
          repair: bool = False,
          profile: Optional[bool] = None) -> SolveResult:
    """Solve a compiled problem with a registered (or ad-hoc) solver.

    ``solver`` is a registry name, or any object with a
    ``solve(model)`` method (an escape hatch for pre-configured solver
    instances; ``config`` is ignored for those). ``repair=True``
    additionally applies the problem's optional ``repair`` hook to the
    best decoded solution before the feasibility check.

    ``profile`` controls the sampling wall-clock profiler
    (:mod:`repro.telemetry.profiler`): ``True`` captures this call,
    ``False`` never does, and the default ``None`` defers to
    :func:`~repro.telemetry.enable_profiling` /``REPRO_PROFILE=1``.
    The aggregated stack summary lands in
    ``result.provenance["profile"]`` and mirrors onto the event trace.
    The sampler only *reads* frames from a helper thread — it never
    interrupts the backend, so results are bit-for-bit unchanged.
    """
    config = config if config is not None else SolverConfig()
    if isinstance(solver, str):
        if solver not in _REGISTRY:
            raise _unknown_solver_error(solver)
        spec = _REGISTRY[solver]
        solver_name = solver
        run = spec.run
    elif hasattr(solver, "solve"):
        # Solver classes carry their registry name (``solver_name``)
        # so telemetry counters stay consistent between string dispatch
        # and pre-configured instances.
        solver_name = getattr(type(solver), "solver_name",
                              type(solver).__name__)

        def run(model: Model, _config: SolverConfig,
                progress: Optional[ProgressTrace] = None) -> SampleSet:
            # Escape hatch for pre-configured instances: attach the
            # trace through the solver's own ``progress`` slot when it
            # has one and the caller left it empty, restoring after.
            attach = (progress is not None
                      and getattr(solver, "progress", False) is None)
            if attach:
                solver.progress = progress
            try:
                raw = solver.solve(model)
            finally:
                if attach:
                    solver.progress = None
            # QAOA-style results carry their reads in ``.samples``.
            samples = (raw if isinstance(raw, SampleSet)
                       else getattr(raw, "samples", raw))
            if not isinstance(samples, SampleSet):
                raise TypeError(
                    f"solver {solver_name} returned "
                    f"{type(raw).__name__}, expected a SampleSet"
                )
            return samples
    else:
        raise _unknown_solver_error(str(solver))

    progress = (ProgressTrace(label=solver_name)
                if config.convergence_active() else None)
    capture = _profiler.maybe_capture(profile)
    start = time.perf_counter()
    with telemetry.span(f"compile.solve.{problem.name}"):
        if capture is not None:
            with capture:
                samples = run(problem.model, config, progress)
        else:
            samples = run(problem.model, config, progress)
        solutions = decode_samples(problem, samples)
    duration = time.perf_counter() - start
    registry = _metrics.get_registry()
    if registry is not None:
        registry.histogram(
            "solver_solve_seconds",
            "backend execution wall clock per registered solver",
            ("solver",)).labels(solver=solver_name).observe(duration)
    if progress is not None:
        progress.note_truncation()
    provenance_extra = None
    if capture is not None:
        summary = capture.summary()
        provenance_extra = {"profile": summary}
        _profiler.mirror_to_trace(summary, f"profile.{solver_name}")
    return assemble_result(
        problem, solver_name, config, samples, solutions, duration,
        convergence=progress.rows() if progress is not None else None,
        repair=repair,
        provenance_extra=provenance_extra,
    )
