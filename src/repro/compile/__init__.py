"""Problem compilation and solver dispatch.

The library's central recipe — cast a database optimization problem as
QUBO/Ising, hand it to an interchangeable solver — implemented once:

* :mod:`repro.compile.ir` — the :class:`CompiledProblem` intermediate
  representation: a binary model plus a named-variable registry and
  ``decode`` / ``score`` / ``feasible`` / ``repair`` hooks.
* :mod:`repro.compile.constraints` — :class:`ProblemBuilder` with the
  reusable constraint primitives (``exactly_one``, ``at_most_one``,
  ``implication``, ``linear_leq`` with binary slack) and the audited
  penalty-weight rule shared by every formulation.
* :mod:`repro.compile.dispatch` — the string-addressable solver
  registry (``"sa"``, ``"sqa"``, ``"tabu"``, ``"qaoa"``, ``"exact"``,
  ``"pt"``) behind the single front door :func:`solve`.

Typical use::

    from repro.compile import SolverConfig, solve
    from repro.db.joinorder import JoinOrderQUBO

    problem = JoinOrderQUBO(graph).compile()
    result = solve(problem, solver="sqa",
                   config=SolverConfig(num_sweeps=400, num_reads=20,
                                       seed=7))
    result.solution.order, result.feasible
"""

from .buffers import pack_model, packed_nbytes, unpack_model, write_packed
from .constraints import (
    ProblemBuilder,
    analytic_penalty_weight,
    binary_slack_coefficients,
    validate_penalty_scale,
)
from .dispatch import (
    SolveResult,
    SolverConfig,
    SolverSpec,
    assemble_result,
    available_solvers,
    decode_samples,
    make_solver,
    register_solver,
    run_registry_backend,
    select_best_solution,
    solve,
)
from .ir import CompiledProblem, VariableRegistry, check_bits

__all__ = [
    "ProblemBuilder",
    "analytic_penalty_weight",
    "binary_slack_coefficients",
    "validate_penalty_scale",
    "SolveResult",
    "SolverConfig",
    "SolverSpec",
    "assemble_result",
    "available_solvers",
    "decode_samples",
    "make_solver",
    "register_solver",
    "run_registry_backend",
    "select_best_solution",
    "solve",
    "CompiledProblem",
    "VariableRegistry",
    "check_bits",
    "pack_model",
    "packed_nbytes",
    "unpack_model",
    "write_packed",
]
