"""Problem-compilation IR: named variables plus pluggable hooks.

Every database optimization problem in this library follows one
recipe — register logical variables, add an objective, wire constraint
penalties, then decode/repair/score solver bits back into the domain.
:class:`CompiledProblem` is the intermediate representation that makes
the recipe explicit: a binary model (QUBO or Ising) paired with a
:class:`VariableRegistry` mapping logical variable names to bit
indices and the domain hooks the solver-dispatch layer needs
(``decode``, ``score``, ``feasible``, optional ``repair``).

The IR deliberately stays backend-agnostic: any solver registered in
:mod:`repro.compile.dispatch` consumes a ``CompiledProblem`` without
knowing which database problem produced it.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..annealing.ising import IsingModel
from ..annealing.qubo import QUBO

Model = Union[QUBO, IsingModel]
VariableName = Tuple[Any, ...]


class VariableRegistry:
    """Bidirectional map between logical variable names and bit indices.

    Names are tuples such as ``("x", relation, position)``; indices are
    assigned densely in registration order, so the registry also fixes
    the bit layout of the compiled model.
    """

    def __init__(self) -> None:
        self._names: List[VariableName] = []
        self._indices: Dict[VariableName, int] = {}

    def add(self, *name: Any) -> int:
        """Register a logical variable; returns its bit index."""
        if not name:
            raise ValueError("variable name must be non-empty")
        if name in self._indices:
            raise ValueError(f"variable {name!r} registered twice")
        index = len(self._names)
        self._names.append(name)
        self._indices[name] = index
        return index

    def index(self, *name: Any) -> int:
        """Bit index of a registered variable."""
        try:
            return self._indices[name]
        except KeyError:
            raise KeyError(
                f"unknown variable {name!r}; registry holds "
                f"{len(self._names)} variables"
            ) from None

    def name(self, index: int) -> VariableName:
        """Logical name of a bit index."""
        if not 0 <= index < len(self._names):
            raise IndexError(
                f"variable index {index} out of range "
                f"[0, {len(self._names)})"
            )
        return self._names[index]

    def group(self, *prefix: Any) -> List[int]:
        """Indices of all variables whose name starts with ``prefix``."""
        k = len(prefix)
        return [
            i for i, name in enumerate(self._names) if name[:k] == prefix
        ]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: VariableName) -> bool:
        return tuple(name) in self._indices

    def __iter__(self) -> Iterator[VariableName]:
        return iter(self._names)

    def __repr__(self) -> str:
        return f"VariableRegistry(num_variables={len(self._names)})"


def check_bits(bits: Sequence[int], num_variables: int) -> np.ndarray:
    """Validate and flatten a solver assignment.

    The single audited implementation of the ``expected N bits`` check
    every formulation's decoder used to duplicate.
    """
    array = np.asarray(bits).reshape(-1)
    if array.size != num_variables:
        raise ValueError(
            f"expected {num_variables} bits, got {array.size}"
        )
    return array


@dataclass
class CompiledProblem:
    """A database problem lowered to a binary model plus domain hooks.

    Parameters
    ----------
    name:
        Problem-family identifier (``"join_order"``, ``"mqo"``, ...),
        used in telemetry counter names and provenance records.
    model:
        The binary objective: a :class:`~repro.annealing.qubo.QUBO` or
        :class:`~repro.annealing.ising.IsingModel`. Solvers minimize.
    variables:
        Registry fixing the logical-name -> bit-index layout.
    decode:
        Bits -> domain solution (applies the formulation's built-in
        per-read repair, e.g. one-hot fixing).
    score:
        Domain solution -> comparable score (float or tuple); *lower*
        is better. The dispatch layer picks the best decoded read with
        a strict ``<`` comparison, so ties keep the earliest
        (lowest-energy) read.
    feasible:
        Domain solution -> whether all hard constraints hold.
    repair:
        Optional stronger repair applied only when ``solve(...,
        repair=True)`` asks for it (e.g. re-slotting conflicting
        transactions). ``None`` means decode's repair is already
        complete.
    metadata:
        Free-form compilation facts (penalty weights, scales, slack
        layout) for audits and tests.
    """

    name: str
    model: Model
    variables: VariableRegistry
    decode: Callable[[np.ndarray], Any]
    score: Callable[[Any], Any]
    feasible: Callable[[Any], bool]
    repair: Optional[Callable[[Any], Any]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Lazily memoized :meth:`content_key` digest. The solve service
    #: hashes every submission (cache key, coalescing, warm-pool model
    #: store, cross-job batch folding); recomputing a sha256 over the
    #: full term set per lookup would dominate small problems.
    _content_key_cache: Optional[str] = field(default=None, repr=False,
                                              compare=False)

    @property
    def num_variables(self) -> int:
        if isinstance(self.model, QUBO):
            return self.model.num_variables
        return self.model.num_spins

    def content_key(self) -> str:
        """Deterministic, process-stable content hash of the problem.

        The key covers everything that determines what a solver
        computes: the problem-family name, the model kind, the variable
        count, the offset and every nonzero term (linear and quadratic
        / field and coupling) in canonical index order with exact IEEE
        float bytes. It deliberately excludes the domain hooks and
        metadata — two compilations of the same instance hash equal
        even though their closures are distinct objects.

        Unlike ``hash()`` or ``repr()`` of arrays, the digest is stable
        across processes and interpreter runs (no ``PYTHONHASHSEED``
        dependence, no ``id()`` leakage), which is what lets the solve
        service's result cache and request coalescer key on it.

        The digest is memoized on first call: compiled problems are
        treated as immutable by every consumer (mutating ``model``
        after ``compile()`` voids all guarantees anyway), and the
        service hashes each submission several times.
        """
        if self._content_key_cache is not None:
            return self._content_key_cache
        digest = hashlib.sha256()

        def put_float(value: float) -> None:
            # Normalize -0.0 to 0.0: both evaluate identically in every
            # energy function, so they must hash identically too.
            value = float(value)
            if value == 0.0:
                value = 0.0
            digest.update(struct.pack("<d", value))

        digest.update(self.name.encode("utf-8"))
        digest.update(b"\x00")
        model = self.model
        digest.update(type(model).__name__.encode("ascii"))
        digest.update(struct.pack("<q", self.num_variables))
        put_float(model.offset)
        if isinstance(model, QUBO):
            terms = {**{(u, u): c for u, c in model.linear.items()},
                     **model.quadratic}
            for (u, v), coefficient in sorted(terms.items()):
                if coefficient != 0.0:
                    digest.update(struct.pack("<qq", u, v))
                    put_float(coefficient)
        else:
            for spin, value in sorted(model.h.items()):
                if value != 0.0:
                    digest.update(struct.pack("<q", spin))
                    put_float(value)
            digest.update(b"\x01")
            for (a, b), value in sorted(model.j.items()):
                if value != 0.0:
                    digest.update(struct.pack("<qq", a, b))
                    put_float(value)
        self._content_key_cache = digest.hexdigest()
        return self._content_key_cache

    def energy(self, bits: Sequence[int]) -> float:
        """Model energy of a binary assignment (Ising takes bits too)."""
        array = check_bits(bits, self.num_variables)
        if isinstance(self.model, QUBO):
            return self.model.energy(array)
        spins = 2 * array.astype(float) - 1.0
        return float(self.model.energies(spins[None, :])[0])

    def __repr__(self) -> str:
        kind = type(self.model).__name__
        return (
            f"CompiledProblem(name={self.name!r}, model={kind}, "
            f"num_variables={self.num_variables})"
        )
