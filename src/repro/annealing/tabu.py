"""Tabu search over QUBO assignments.

A deterministic local-search baseline: greedy single-bit flips with a
recency-based tabu list and aspiration, restarted from random points.
Included because the quantum-annealing database papers routinely report
tabu as the strong classical heuristic.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import telemetry
from ..telemetry.progress import ProgressTrace
from .qubo import QUBO
from .results import Sample, SampleSet


class TabuSearchSolver:
    """Single-flip tabu search with aspiration.

    Parameters
    ----------
    tenure:
        Sweeps a flipped bit stays tabu. Defaults to ``n // 4 + 1``.
    num_restarts:
        Independent random restarts.
    max_iterations:
        Flip moves per restart.
    progress:
        Optional :class:`~repro.telemetry.progress.ProgressTrace`
        receiving one convergence row per flip move (global best,
        current energy, tenure as the schedule value).
    """

    #: Registry name in :mod:`repro.compile.dispatch`.
    solver_name = "tabu"

    def __init__(self, tenure: Optional[int] = None, num_restarts: int = 5,
                 max_iterations: int = 500, seed: Optional[int] = None,
                 progress: Optional[ProgressTrace] = None):
        if num_restarts < 1:
            raise ValueError("num_restarts must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.tenure = tenure
        self.num_restarts = num_restarts
        self.max_iterations = max_iterations
        self.progress = progress
        self._rng = np.random.default_rng(seed)

    def solve(self, model: QUBO) -> SampleSet:
        n = model.num_variables
        tenure = self.tenure if self.tenure is not None else n // 4 + 1
        q = model.matrix()
        q_sym = q + q.T  # for fast flip deltas; diagonal handled apart
        diagonal = np.diag(q)
        collector = telemetry.get_collector()
        samples: List[Sample] = []
        with telemetry.span("annealing.tabu.solve"):
            self._solve_restarts(model, n, tenure, q_sym, diagonal, samples)
        if collector is not None:
            iterations = self.num_restarts * self.max_iterations
            collector.count("annealing.tabu.restarts", self.num_restarts)
            collector.count("annealing.tabu.iterations", iterations)
            # Every iteration scores the full single-flip neighborhood.
            collector.count("annealing.tabu.move_evaluations",
                            iterations * n)
            collector.record("annealing.tabu.best_energy",
                             min(s.energy for s in samples))
            collector.gauge("annealing.problem_size", n)
        return SampleSet(samples)

    def _solve_restarts(self, model: QUBO, n: int, tenure: int,
                        q_sym: np.ndarray, diagonal: np.ndarray,
                        samples: List[Sample]) -> None:
        progress = self.progress
        global_best = np.inf
        global_iteration = 0
        for _ in range(self.num_restarts):
            bits = self._rng.integers(0, 2, size=n).astype(float)
            energy = float(model.energies(bits[None, :])[0])
            best_bits = bits.copy()
            best_energy = energy
            tabu_until = np.zeros(n, dtype=int)
            for iteration in range(self.max_iterations):
                # Delta of flipping bit i:
                #   (1 - 2 x_i) * (diag_i + sum_j q_sym[i, j] x_j
                #                  - q_sym[i, i] x_i)
                coupling_term = q_sym @ bits - np.diag(q_sym) * bits
                deltas = (1.0 - 2.0 * bits) * (diagonal + coupling_term)
                candidate_energies = energy + deltas
                allowed = (tabu_until <= iteration) | (
                    candidate_energies < best_energy - 1e-12
                )
                if not allowed.any():
                    allowed = np.ones(n, dtype=bool)
                masked = np.where(allowed, candidate_energies, np.inf)
                move = int(np.argmin(masked))
                bits[move] = 1.0 - bits[move]
                energy = float(candidate_energies[move])
                tabu_until[move] = iteration + tenure
                if energy < best_energy - 1e-12:
                    best_energy = energy
                    best_bits = bits.copy()
                if progress is not None:
                    global_best = min(global_best, best_energy)
                    progress.record(
                        iteration=global_iteration,
                        best_energy=global_best,
                        current_energy=energy,
                        # Tabu always takes the best allowed move.
                        acceptance_rate=1.0,
                        schedule_value=float(tenure),
                    )
                    global_iteration += 1
            samples.append(
                Sample(tuple(int(b) for b in best_bits), best_energy)
            )
