"""Simulated quantum annealing (path-integral Monte Carlo).

The Suzuki-Trotter mapping turns the transverse-field Ising
Hamiltonian ``H = H_problem - Gamma sum_i X_i`` into a classical model
of ``P`` coupled replicas ("Trotter slices"): each slice feels the
problem couplings scaled by ``1/P``, plus a ferromagnetic inter-slice
coupling

    J_perp(Gamma) = -(1 / (2 beta)) * ln( tanh(beta * Gamma / P) )

that weakens as the transverse field Gamma is annealed to zero. Local
Metropolis updates on this replica stack emulate quantum tunnelling:
a spin can flip in one slice at a time, letting the system thread tall,
thin energy barriers that defeat purely thermal annealing. Experiment
E14 reproduces exactly that separation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..telemetry.progress import ProgressTrace
from .ising import IsingModel, spins_to_bits
from .qubo import QUBO
from .results import Sample, SampleSet
from .schedules import default_transverse_field_schedule

Model = Union[QUBO, IsingModel]


class SimulatedQuantumAnnealingSolver:
    """Path-integral Monte Carlo annealer.

    Parameters
    ----------
    num_sweeps:
        Monte Carlo sweeps (each updates every spin in every slice).
    num_reads:
        Independent restarts.
    num_slices:
        Trotter slices P; more slices = finer quantum fluctuations at
        higher cost. The E14 ablation sweeps this.
    beta:
        Inverse temperature of the quantum system (fixed during the
        anneal; the transverse field does the annealing).
    gamma_schedule:
        Transverse field per sweep, decreasing; defaults to a linear
        ramp 3.0 -> 0.01.
    progress:
        Optional :class:`~repro.telemetry.progress.ProgressTrace`
        receiving one convergence row per sweep (best slice energy so
        far, local-move acceptance rate, gamma). Incremental slice
        energies are only tracked while a trace is attached.
    """

    #: Registry name in :mod:`repro.compile.dispatch`.
    solver_name = "sqa"

    def __init__(self, num_sweeps: int = 200, num_reads: int = 10,
                 num_slices: int = 20, beta: float = 10.0,
                 gamma_schedule: Optional[Sequence[float]] = None,
                 seed: Optional[int] = None,
                 progress: Optional[ProgressTrace] = None):
        if num_sweeps < 1:
            raise ValueError("num_sweeps must be positive")
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        if num_slices < 2:
            raise ValueError("num_slices must be >= 2")
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.num_slices = num_slices
        self.beta = beta
        self.gamma_schedule = gamma_schedule
        self.progress = progress
        self._rng = np.random.default_rng(seed)

    def solve(self, model: Model) -> SampleSet:
        """Anneal and return the best slice of each read (as bits)."""
        ising = model.to_ising() if isinstance(model, QUBO) else model
        fields = ising.local_fields()
        couplings = ising.coupling_matrix()
        # Normalize coefficients so the fixed beta / gamma schedules are
        # problem-scale-invariant (configurations are unaffected; final
        # energies are evaluated against the original model).
        scale = max(
            float(np.abs(fields).max(initial=0.0)),
            float(np.abs(couplings).max(initial=0.0)),
        )
        if scale > 0:
            fields = fields / scale
            couplings = couplings / scale
        n = ising.num_spins
        p = self.num_slices
        gammas = list(
            self.gamma_schedule
            if self.gamma_schedule is not None
            else default_transverse_field_schedule(self.num_sweeps)
        )
        if len(gammas) != self.num_sweeps:
            raise ValueError("gamma_schedule length must equal num_sweeps")

        collector = telemetry.get_collector()
        registry = _metrics.get_registry()
        progress = self.progress
        samples: List[Sample] = []
        accepted_local = 0
        accepted_global = 0
        with telemetry.span("annealing.sqa.solve"):
            replicas = self._rng.choice((-1.0, 1.0),
                                        size=(self.num_reads, p, n))
            # Cached per-slice local fields, shape (reads, P, n),
            # incrementally updated on accepted flips.
            local = replicas @ couplings + fields
            # Per-slice energies (in the normalized model), tracked
            # incrementally from accepted deltas for the convergence
            # trace only; rows report original-model units via `scale`.
            if progress is not None:
                running = _slice_energies(replicas, fields, couplings)
                best_running = float(running.min())
                unit = scale if scale > 0 else 1.0
                offset = float(getattr(ising, "offset", 0.0))
                moves_per_sweep = self.num_reads * p * n
            else:
                running = None
            for sweep_index, gamma in enumerate(gammas):
                j_perp = self._interslice_coupling(gamma)
                accepted = self._sweep(
                    replicas, local, j_perp, couplings, energies=running
                )
                accepted_local += accepted
                accepted_global += self._global_sweep(
                    replicas, local, couplings, energies=running
                )
                if progress is not None:
                    current = float(running.min())
                    best_running = min(best_running, current)
                    progress.record(
                        iteration=sweep_index,
                        best_energy=best_running * unit + offset,
                        current_energy=current * unit + offset,
                        acceptance_rate=accepted / moves_per_sweep,
                        schedule_value=gamma,
                    )
            slice_energies = ising.energies(
                replicas.reshape(self.num_reads * p, n)
            ).reshape(self.num_reads, p)
            best_slices = np.argmin(slice_energies, axis=1)
            read_energies = slice_energies[np.arange(self.num_reads),
                                           best_slices]
            for read, best_slice in enumerate(best_slices):
                spins = replicas[read, best_slice].astype(int)
                samples.append(
                    Sample(tuple(spins_to_bits(spins)),
                           float(read_energies[read]))
                )
            if collector is not None:
                for best in np.minimum.accumulate(read_energies):
                    collector.record("annealing.sqa.best_energy",
                                     float(best))
        if collector is not None:
            sweeps = self.num_sweeps * self.num_reads
            collector.count("annealing.sweeps", sweeps)
            collector.count("annealing.sqa.sweeps", sweeps)
            collector.count("annealing.sqa.reads", self.num_reads)
            collector.count("annealing.sqa.accepted_local_moves",
                            accepted_local)
            collector.count("annealing.sqa.accepted_worldline_moves",
                            accepted_global)
            collector.count("annealing.sqa.energy_evaluations",
                            self.num_reads * p)
            collector.gauge("annealing.problem_size", n)
            collector.gauge("annealing.sqa.num_slices", p)
        if registry is not None:
            sweeps = self.num_sweeps * self.num_reads
            registry.counter(
                "solver_sweeps_total",
                "annealing sweeps executed (reads x schedule steps)",
                ("solver",)).labels(solver=self.solver_name).inc(sweeps)
            moves = registry.counter(
                "solver_moves_total",
                "Metropolis move proposals by outcome",
                ("solver", "outcome"))
            moves.labels(solver=self.solver_name,
                         outcome="accepted").inc(accepted_local)
            moves.labels(solver=self.solver_name,
                         outcome="rejected").inc(
                             sweeps * p * n - accepted_local)
        return SampleSet(samples)

    def _interslice_coupling(self, gamma: float) -> float:
        argument = self.beta * max(gamma, 1e-12) / self.num_slices
        return -0.5 / self.beta * math.log(math.tanh(argument))

    def _sweep(self, replicas: np.ndarray, local: np.ndarray,
               j_perp: float, couplings: np.ndarray,
               energies: Optional[np.ndarray] = None) -> int:
        """Slice-local Metropolis pass over all reads at once.

        Spins are visited per (slice, position) in a random order
        shared across reads; each step decides the flip for every read
        simultaneously from the cached local fields. When ``energies``
        (shape ``(reads, P)``) is given, accepted problem-energy
        deltas are accumulated into it for convergence tracing.
        """
        reads, p, n = replicas.shape
        beta_slice = self.beta / p
        accepted = 0
        for k in range(p):
            up = (k + 1) % p
            down = (k - 1) % p
            order = self._rng.permutation(n)
            thresholds = self._rng.random((n, reads))
            for position, i in enumerate(order):
                spins = replicas[:, k, i]
                delta_problem = -2.0 * spins * local[:, k, i]
                delta_perp = (-2.0 * spins * j_perp
                              * (replicas[:, up, i] + replicas[:, down, i]))
                # Problem term is weighted 1/P inside the effective
                # action but sampled at beta, i.e. beta/P overall.
                exponent = (-beta_slice * delta_problem
                            - self.beta * delta_perp)
                accept = thresholds[position] < np.exp(
                    np.minimum(exponent, 0.0)
                )
                if accept.any():
                    flipped = replicas[accept, k, i]
                    replicas[accept, k, i] = -flipped
                    local[accept, k, :] -= (2.0 * flipped[:, None]
                                            * couplings[i])
                    if energies is not None:
                        energies[accept, k] += delta_problem[accept]
                    accepted += int(accept.sum())
        return accepted

    def _global_sweep(self, replicas: np.ndarray, local: np.ndarray,
                      couplings: np.ndarray,
                      energies: Optional[np.ndarray] = None) -> int:
        """Flip one spin in *all* slices at once, across all reads.

        These worldline moves leave the interslice coupling invariant
        and are the standard trick that lets PIMC realize tunnelling
        through barriers local single-slice updates cannot cross.
        """
        reads, p, n = replicas.shape
        beta_slice = self.beta / p
        order = self._rng.permutation(n)
        thresholds = self._rng.random((n, reads))
        accepted = 0
        for position, i in enumerate(order):
            per_slice = -2.0 * replicas[:, :, i] * local[:, :, i]
            delta = per_slice.sum(axis=1)
            accept = thresholds[position] < np.exp(
                np.minimum(-beta_slice * delta, 0.0)
            )
            if accept.any():
                flipped = replicas[accept, :, i]
                replicas[accept, :, i] = -flipped
                local[accept] -= (2.0 * flipped[:, :, None]
                                  * couplings[i])
                if energies is not None:
                    energies[accept] += per_slice[accept]
                accepted += int(accept.sum())
        return accepted


def _slice_energies(replicas: np.ndarray, fields: np.ndarray,
                    couplings: np.ndarray) -> np.ndarray:
    """Problem energy of every slice, shape ``(reads, P)``.

    Evaluated against the (possibly normalized) ``fields`` /
    ``couplings`` actually used by the sweeps, so incremental deltas
    accumulated on top stay consistent.
    """
    interaction = np.einsum("rpi,ij,rpj->rp", replicas, couplings,
                            replicas) / 2.0
    return interaction + replicas @ fields
