"""Minor embedding onto limited-connectivity annealer topologies.

Physical annealers do not provide all-to-all couplings: D-Wave-style
hardware exposes a *Chimera* lattice of sparsely connected unit cells.
Logical problems with denser interaction graphs must be minor-embedded:
each logical variable becomes a *chain* of physical qubits bound
together by a strong ferromagnetic coupling, and logical couplings are
routed through physical edges between chains.

This module provides the full pipeline the tutorial describes:

* :func:`chimera_graph` — the hardware connectivity graph,
* :func:`find_embedding` — a greedy chain embedding,
* :func:`embed_ising` — compile a logical Ising model onto hardware
  with a chain-strength coupling,
* :func:`unembed_sampleset` — majority-vote chain repair back to
  logical assignments,
* :class:`EmbeddedSolver` — wraps any physical-model solver into a
  logical-model solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from .ising import IsingModel
from .qubo import QUBO
from .results import Sample, SampleSet


def chimera_graph(rows: int, columns: int, shore: int = 4) -> nx.Graph:
    """Chimera lattice: a grid of K_{shore,shore} unit cells.

    Within a cell, every 'left' qubit couples to every 'right' qubit.
    Left qubits couple vertically to the cell below; right qubits
    horizontally to the cell to the right — the D-Wave 2000Q layout.
    Nodes are integers numbered cell by cell.
    """
    if rows < 1 or columns < 1 or shore < 1:
        raise ValueError("rows, columns and shore must be positive")
    graph = nx.Graph()

    def node(r: int, c: int, side: int, k: int) -> int:
        return ((r * columns + c) * 2 + side) * shore + k

    for r in range(rows):
        for c in range(columns):
            for k_left in range(shore):
                for k_right in range(shore):
                    graph.add_edge(node(r, c, 0, k_left),
                                   node(r, c, 1, k_right))
            if r + 1 < rows:
                for k in range(shore):
                    graph.add_edge(node(r, c, 0, k),
                                   node(r + 1, c, 0, k))
            if c + 1 < columns:
                for k in range(shore):
                    graph.add_edge(node(r, c, 1, k),
                                   node(r, c + 1, 1, k))
    return graph


@dataclass
class Embedding:
    """Chains of physical qubits per logical variable."""

    chains: Dict[int, List[int]]

    def __post_init__(self):
        used: Set[int] = set()
        for variable, chain in self.chains.items():
            if not chain:
                raise ValueError(f"empty chain for variable {variable}")
            overlap = used & set(chain)
            if overlap:
                raise ValueError(
                    f"physical qubits {sorted(overlap)} appear in "
                    "multiple chains"
                )
            used |= set(chain)

    @property
    def num_physical_qubits(self) -> int:
        return sum(len(chain) for chain in self.chains.values())

    def max_chain_length(self) -> int:
        return max(len(chain) for chain in self.chains.values())

    def physical_to_logical(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for variable, chain in self.chains.items():
            for qubit in chain:
                out[qubit] = variable
        return out


def find_embedding(logical_edges: Sequence[Tuple[int, int]],
                   hardware: nx.Graph,
                   seed: Optional[int] = None,
                   retries: int = 10) -> Embedding:
    """Greedy chain embedding of a logical graph into hardware.

    Variables are placed in descending-degree order. Each new variable
    starts a chain at a free qubit close to its already-placed
    neighbours, then grows the chain along shortest paths through free
    qubits until it touches every placed neighbour's chain. Greedy
    placement can paint itself into a corner, so up to ``retries``
    randomized attempts are made (with shuffled tie-breaking) before
    giving up — the same restart strategy production embedders use.

    Raises
    ------
    RuntimeError
        If no attempt finds an embedding.
    """
    if retries < 1:
        raise ValueError("retries must be positive")
    rng = np.random.default_rng(seed)
    last_error: Optional[Exception] = None
    for attempt in range(retries):
        try:
            return _find_embedding_once(
                logical_edges, hardware,
                np.random.default_rng(int(rng.integers(2 ** 31))),
                shuffle_order=attempt > 0,
            )
        except RuntimeError as error:
            last_error = error
    raise RuntimeError(
        f"no embedding found in {retries} attempts: {last_error}"
    )


def _find_embedding_once(logical_edges: Sequence[Tuple[int, int]],
                         hardware: nx.Graph,
                         rng: np.random.Generator,
                         shuffle_order: bool) -> Embedding:
    logical = nx.Graph()
    logical.add_edges_from(logical_edges)
    if logical.number_of_nodes() == 0:
        raise ValueError("logical graph has no edges")

    order = sorted(logical.nodes,
                   key=lambda v: logical.degree(v), reverse=True)
    if shuffle_order:
        # Keep the descending-degree heuristic but break ties (and
        # occasionally the order itself) randomly across attempts.
        perturbed = list(order)
        rng.shuffle(perturbed)
        order = sorted(perturbed,
                       key=lambda v: logical.degree(v), reverse=True)
    free: Set[int] = set(hardware.nodes)
    chains: Dict[int, Set[int]] = {}

    for variable in order:
        placed_neighbours = [
            u for u in logical.neighbors(variable) if u in chains
        ]
        if not placed_neighbours:
            seed_qubit = _pick_free_qubit(free, hardware, rng)
            chains[variable] = {seed_qubit}
            free.discard(seed_qubit)
            continue
        chain = _grow_chain(variable, placed_neighbours, chains, free,
                            hardware)
        chains[variable] = chain
        free -= chain
    return Embedding({v: sorted(c) for v, c in chains.items()})


def _pick_free_qubit(free: Set[int], hardware: nx.Graph,
                     rng: np.random.Generator) -> int:
    if not free:
        raise RuntimeError("hardware graph exhausted")
    # Prefer high-degree free qubits: they keep options open.
    candidates = sorted(free)
    degrees = [sum(1 for n in hardware.neighbors(q) if n in free)
               for q in candidates]
    best = max(degrees)
    top = [q for q, d in zip(candidates, degrees) if d == best]
    return int(top[rng.integers(len(top))])


def _grow_chain(variable: int, neighbours: Sequence[int],
                chains: Mapping[int, Set[int]], free: Set[int],
                hardware: nx.Graph) -> Set[int]:
    """Steiner-tree-flavoured growth: connect to each neighbour chain
    via the shortest path through free qubits."""
    chain: Set[int] = set()
    for neighbour in neighbours:
        target_chain = chains[neighbour]
        # Allowed transit nodes: free qubits + the current chain; the
        # path may end on any qubit adjacent to the target chain.
        allowed = free | chain
        subgraph = hardware.subgraph(
            allowed | set(target_chain)
        )
        sources = chain if chain else allowed
        path = _shortest_path_to_set(subgraph, sources, target_chain)
        if path is None:
            raise RuntimeError(
                f"could not route variable {variable} to neighbour "
                f"{neighbour}; hardware too small or fragmented"
            )
        chain |= {node for node in path if node not in target_chain}
    if not chain:
        raise RuntimeError(f"could not place variable {variable}")
    return chain


def _shortest_path_to_set(graph: nx.Graph, sources: Set[int],
                          targets: Set[int]) -> Optional[List[int]]:
    """BFS from any source to any node adjacent to the target set."""
    from collections import deque

    queue = deque()
    parents: Dict[int, Optional[int]] = {}
    for source in sources:
        if source in graph:
            queue.append(source)
            parents[source] = None
    while queue:
        current = queue.popleft()
        for neighbour in graph.neighbors(current):
            if neighbour in targets:
                path = [current]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            if neighbour not in parents and neighbour not in targets:
                parents[neighbour] = current
                queue.append(neighbour)
    return None


def chimera_clique_embedding(num_variables: int, rows: int,
                             shore: int = 4) -> Embedding:
    """Structured clique embedding for Chimera (Choi-style L-chains).

    Variable ``v = shore * b + j`` gets an L-shaped chain with its
    corner on the diagonal cell ``(b, b)``: the vertical arm uses
    left-shore qubits at offset ``j`` in column ``b``, rows ``0..b``;
    the horizontal arm uses right-shore qubits at offset ``j`` in row
    ``b``, columns ``b..rows-1``. Any two chains meet in exactly one
    cell through an internal K_{shore,shore} edge, so the full
    ``K_{shore * rows}`` is realizable with chains of length
    ``rows + 1`` — the construction production annealers use for dense
    problems, where greedy embedders fail.
    """
    capacity = shore * rows
    if not 1 <= num_variables <= capacity:
        raise ValueError(
            f"a {rows}x{rows} Chimera with shore {shore} supports "
            f"cliques up to {capacity} variables, got {num_variables}"
        )

    def node(r: int, c: int, side: int, k: int) -> int:
        return ((r * rows + c) * 2 + side) * shore + k

    chains: Dict[int, List[int]] = {}
    for v in range(num_variables):
        block, offset = divmod(v, shore)
        vertical = [node(r, block, 0, offset) for r in range(block + 1)]
        horizontal = [node(block, c, 1, offset)
                      for c in range(block, rows)]
        chains[v] = sorted(set(vertical + horizontal))
    return Embedding(chains)


def embed_ising(model: IsingModel, embedding: Embedding,
                hardware: nx.Graph,
                chain_strength: Optional[float] = None) -> IsingModel:
    """Compile a logical Ising model onto the embedded chains.

    Logical fields are split evenly across the chain. Each logical
    coupling must be realizable on a *hardware edge* between the two
    chains — that is what makes the embedding a faithful compilation;
    a missing edge raises. Within a chain, consecutive qubits along a
    spanning tree of the chain's induced subgraph get the ferromagnetic
    binding ``-chain_strength``.

    ``chain_strength`` defaults to ``1 + max |coefficient|``, the
    common heuristic keeping chains intact without drowning the
    problem signal.
    """
    physical_ids = sorted(
        q for chain in embedding.chains.values() for q in chain
    )
    index = {q: i for i, q in enumerate(physical_ids)}
    num_physical = len(physical_ids)

    coefficients = [abs(v) for v in model.h.values()]
    coefficients += [abs(v) for v in model.j.values()]
    if chain_strength is None:
        chain_strength = 1.0 + (max(coefficients) if coefficients else 1.0)

    h: Dict[int, float] = {}
    j: Dict[Tuple[int, int], float] = {}
    for variable, chain in embedding.chains.items():
        field = model.h.get(variable, 0.0)
        share = field / len(chain)
        for qubit in chain:
            if share:
                h[index[qubit]] = h.get(index[qubit], 0.0) + share
        for a, b in _chain_tree_edges(chain, hardware):
            key = (min(index[a], index[b]), max(index[a], index[b]))
            j[key] = j.get(key, 0.0) - chain_strength
    for (u, v), coupling in model.j.items():
        edge = _hardware_edge_between(
            embedding.chains[u], embedding.chains[v], hardware
        )
        if edge is None:
            raise ValueError(
                f"no hardware edge between the chains of logical "
                f"variables {u} and {v}"
            )
        qubit_u, qubit_v = edge
        key = (min(index[qubit_u], index[qubit_v]),
               max(index[qubit_u], index[qubit_v]))
        j[key] = j.get(key, 0.0) + coupling
    return IsingModel(num_physical, h=h, j=j, offset=model.offset)


def _chain_tree_edges(chain: Sequence[int],
                      hardware: nx.Graph) -> List[Tuple[int, int]]:
    """Spanning-tree edges of the chain's induced hardware subgraph."""
    members = list(chain)
    if len(members) == 1:
        return []
    induced = hardware.subgraph(members)
    if not nx.is_connected(induced):
        raise ValueError(
            f"chain {sorted(members)} is not connected in hardware"
        )
    return list(nx.minimum_spanning_edges(induced, data=False))


def _hardware_edge_between(chain_u: Sequence[int],
                           chain_v: Sequence[int],
                           hardware: nx.Graph
                           ) -> Optional[Tuple[int, int]]:
    set_v = set(chain_v)
    for qubit in chain_u:
        for neighbour in hardware.neighbors(qubit):
            if neighbour in set_v:
                return (qubit, neighbour)
    return None


def unembed_sampleset(samples: SampleSet, embedding: Embedding,
                      model: IsingModel) -> SampleSet:
    """Physical samples -> logical samples via majority vote per chain.

    Broken chains (mixed spins) are repaired by majority, ties by the
    chain's first qubit. Energies are recomputed against the logical
    model.
    """
    physical_ids = sorted(
        q for chain in embedding.chains.values() for q in chain
    )
    index = {q: i for i, q in enumerate(physical_ids)}
    logical_samples: List[Sample] = []
    variables = sorted(embedding.chains)
    for sample in samples:
        bits = np.asarray(sample.assignment)
        logical_bits = []
        for variable in variables:
            chain = embedding.chains[variable]
            votes = [bits[index[q]] for q in chain]
            total = sum(votes)
            if 2 * total > len(votes):
                logical_bits.append(1)
            elif 2 * total < len(votes):
                logical_bits.append(0)
            else:
                logical_bits.append(int(votes[0]))
        spins = np.asarray([2 * b - 1 for b in logical_bits])
        energy = float(model.energies(spins[None, :])[0])
        logical_samples.append(
            Sample(tuple(logical_bits), energy, sample.num_occurrences)
        )
    return SampleSet(logical_samples)


def chain_break_fraction(samples: SampleSet,
                         embedding: Embedding) -> float:
    """Fraction of (sample, chain) pairs whose chain is not uniform."""
    physical_ids = sorted(
        q for chain in embedding.chains.values() for q in chain
    )
    index = {q: i for i, q in enumerate(physical_ids)}
    broken = 0
    total = 0
    for sample in samples:
        bits = np.asarray(sample.assignment)
        for chain in embedding.chains.values():
            values = {int(bits[index[q]]) for q in chain}
            total += sample.num_occurrences
            if len(values) > 1:
                broken += sample.num_occurrences
    return broken / total if total else 0.0


class EmbeddedSolver:
    """Solve a logical model through an embedding + physical solver.

    The full hardware workflow: embed, scale in the chain strength,
    run the physical solver, majority-vote back to logical samples.
    """

    def __init__(self, physical_solver, hardware: nx.Graph,
                 chain_strength: Optional[float] = None,
                 seed: Optional[int] = None):
        self.physical_solver = physical_solver
        self.hardware = hardware
        self.chain_strength = chain_strength
        self.seed = seed
        self.last_embedding: Optional[Embedding] = None
        self.last_chain_break_fraction: Optional[float] = None

    def solve(self, model) -> SampleSet:
        ising = model.to_ising() if isinstance(model, QUBO) else model
        edges = list(ising.j)
        if not edges:
            raise ValueError("model has no couplings; nothing to embed")
        try:
            embedding = find_embedding(edges, self.hardware,
                                       seed=self.seed)
        except RuntimeError:
            # Dense interaction graphs defeat the greedy embedder; fall
            # back to the structured clique embedding when the hardware
            # is a square Chimera large enough to hold one.
            embedding = self._clique_fallback(ising.num_spins)
        # Variables with fields but no couplings still need chains.
        for spin in range(ising.num_spins):
            if spin not in embedding.chains:
                raise ValueError(
                    f"spin {spin} has no couplings; embed only models "
                    "whose interaction graph covers every spin"
                )
        physical_model = embed_ising(ising, embedding, self.hardware,
                                     chain_strength=self.chain_strength)
        physical_samples = self.physical_solver.solve(physical_model)
        self.last_embedding = embedding
        self.last_chain_break_fraction = chain_break_fraction(
            physical_samples, embedding
        )
        return unembed_sampleset(physical_samples, embedding, ising)

    def _clique_fallback(self, num_spins: int) -> Embedding:
        rows, shore = _square_chimera_shape(self.hardware)
        return chimera_clique_embedding(num_spins, rows, shore=shore)


def _square_chimera_shape(hardware: nx.Graph):
    """Recover (rows, shore) if the graph is a square chimera_graph
    output; raises otherwise (the clique fallback needs the structured
    layout)."""
    nodes = hardware.number_of_nodes()
    for shore in (4, 2, 1, 3, 5, 6, 8):
        cells = nodes / (2 * shore)
        rows = int(round(math.sqrt(cells))) if cells > 0 else 0
        if rows >= 1 and 2 * shore * rows * rows == nodes:
            candidate = chimera_graph(rows, rows, shore=shore)
            if (candidate.number_of_edges() == hardware.number_of_edges()
                    and set(candidate.nodes) == set(hardware.nodes)):
                return rows, shore
    raise RuntimeError(
        "clique-embedding fallback requires a square chimera_graph "
        "hardware layout"
    )
