"""Quantum-annealing-style optimization substrate.

QUBO/Ising modelling plus four solvers — exact enumeration, simulated
annealing, simulated *quantum* annealing (path-integral Monte Carlo)
and tabu search — and QAOA as the gate-model alternative. This package
simulates the role D-Wave-style hardware plays in the tutorial's
database-optimization applications.
"""

from .embedding import (
    EmbeddedSolver,
    Embedding,
    chain_break_fraction,
    chimera_clique_embedding,
    chimera_graph,
    embed_ising,
    find_embedding,
    unembed_sampleset,
)
from .exact import (
    all_assignments,
    ground_states,
    qubo_spectrum,
    solve_ising_exact,
    solve_qubo_exact,
)
from .ising import IsingModel, bits_to_spins, spins_to_bits
from .qaoa import (
    QAOAResult,
    QAOASolver,
    approximation_ratio,
    basis_energies,
    qaoa_circuit,
)
from .qubo import QUBO
from .results import Sample, SampleSet
from .schedules import (
    default_beta_schedule,
    default_transverse_field_schedule,
    geometric_schedule,
    linear_schedule,
)
from .simulated_annealing import SimulatedAnnealingSolver, anneal_qubo
from .sqa import SimulatedQuantumAnnealingSolver
from .tabu import TabuSearchSolver
from .tempering import ParallelTemperingSolver

__all__ = [
    "EmbeddedSolver",
    "Embedding",
    "chain_break_fraction",
    "chimera_clique_embedding",
    "chimera_graph",
    "embed_ising",
    "find_embedding",
    "unembed_sampleset",
    "all_assignments",
    "ground_states",
    "qubo_spectrum",
    "solve_ising_exact",
    "solve_qubo_exact",
    "IsingModel",
    "bits_to_spins",
    "spins_to_bits",
    "QAOAResult",
    "QAOASolver",
    "approximation_ratio",
    "basis_energies",
    "qaoa_circuit",
    "QUBO",
    "Sample",
    "SampleSet",
    "default_beta_schedule",
    "default_transverse_field_schedule",
    "geometric_schedule",
    "linear_schedule",
    "SimulatedAnnealingSolver",
    "anneal_qubo",
    "SimulatedQuantumAnnealingSolver",
    "TabuSearchSolver",
    "ParallelTemperingSolver",
]
