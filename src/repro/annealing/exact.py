"""Exact (brute-force) solvers — ground truth for small instances.

Enumerate all ``2**n`` assignments with vectorized energy evaluation.
Practical to ~22 variables; every annealing experiment uses this to
compute optimality gaps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .ising import IsingModel
from .qubo import QUBO
from .results import Sample, SampleSet

_MAX_EXACT_VARS = 24


def all_assignments(num_variables: int) -> np.ndarray:
    """Matrix of all binary assignments, one per row (lexicographic)."""
    if num_variables > _MAX_EXACT_VARS:
        raise ValueError(
            f"{num_variables} variables exceeds the exact-solver limit "
            f"of {_MAX_EXACT_VARS}"
        )
    count = 2 ** num_variables
    indices = np.arange(count, dtype=np.int64)
    shifts = np.arange(num_variables - 1, -1, -1)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(np.int8)


def solve_qubo_exact(model: QUBO) -> Sample:
    """Global minimum of a QUBO by exhaustive enumeration."""
    assignments = all_assignments(model.num_variables)
    energies = model.energies(assignments)
    best = int(np.argmin(energies))
    return Sample(tuple(int(b) for b in assignments[best]),
                  float(energies[best]))


def solve_ising_exact(model: IsingModel) -> Tuple[np.ndarray, float]:
    """Global minimum of an Ising model: (spin configuration, energy)."""
    assignments = all_assignments(model.num_spins)
    spins = 2 * assignments.astype(float) - 1.0
    energies = model.energies(spins)
    best = int(np.argmin(energies))
    return spins[best].astype(int), float(energies[best])


def qubo_spectrum(model: QUBO) -> np.ndarray:
    """All ``2**n`` energies, sorted ascending (for gap analyses)."""
    assignments = all_assignments(model.num_variables)
    return np.sort(model.energies(assignments))


def ground_states(model: QUBO, atol: float = 1e-9) -> SampleSet:
    """Every assignment achieving the global minimum."""
    assignments = all_assignments(model.num_variables)
    energies = model.energies(assignments)
    minimum = energies.min()
    rows = np.flatnonzero(energies <= minimum + atol)
    return SampleSet([
        Sample(tuple(int(b) for b in assignments[r]), float(energies[r]))
        for r in rows
    ])
