"""Ising spin-glass model.

``E(s) = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j`` over spins
``s_i in {-1, +1}``. This is the native form of the annealing solvers
and the bridge to gate-model Hamiltonians (QAOA, exact
diagonalization) via :meth:`IsingModel.to_pauli_sum`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np


class IsingModel:
    """Fields ``h``, couplings ``J`` (keys normalized i < j), constant."""

    def __init__(self, num_spins: int,
                 h: Optional[Mapping[int, float]] = None,
                 j: Optional[Mapping[Tuple[int, int], float]] = None,
                 offset: float = 0.0):
        if num_spins < 1:
            raise ValueError("num_spins must be positive")
        self.num_spins = int(num_spins)
        self.offset = float(offset)
        self.h: Dict[int, float] = {}
        self.j: Dict[Tuple[int, int], float] = {}
        for spin, value in (h or {}).items():
            self._check_spin(spin)
            if value:
                self.h[spin] = self.h.get(spin, 0.0) + float(value)
        for (a, b), value in (j or {}).items():
            self._check_spin(a)
            self._check_spin(b)
            if a == b:
                raise ValueError("J couples distinct spins")
            if value:
                key = (min(a, b), max(a, b))
                self.j[key] = self.j.get(key, 0.0) + float(value)

    # ------------------------------------------------------------------
    def energy(self, spins: Sequence[int]) -> float:
        """Energy of a spin configuration in {-1, +1}^n."""
        s = np.asarray(spins)
        if s.size != self.num_spins:
            raise ValueError(
                f"configuration has {s.size} spins, expected "
                f"{self.num_spins}"
            )
        if not np.isin(s, (-1, 1)).all():
            raise ValueError("spins must be -1 or +1")
        total = self.offset
        for spin, field in self.h.items():
            total += field * s[spin]
        for (a, b), coupling in self.j.items():
            total += coupling * s[a] * s[b]
        return float(total)

    def energies(self, S: np.ndarray) -> np.ndarray:
        """Vectorized energies for a matrix of configurations (rows)."""
        S = np.atleast_2d(np.asarray(S, dtype=float))
        field = np.zeros(self.num_spins)
        for spin, value in self.h.items():
            field[spin] = value
        coupling = np.zeros((self.num_spins, self.num_spins))
        for (a, b), value in self.j.items():
            coupling[a, b] = value
        return (S @ field
                + np.einsum("bi,ij,bj->b", S, coupling, S)
                + self.offset)

    def local_fields(self) -> np.ndarray:
        """Dense field vector h."""
        out = np.zeros(self.num_spins)
        for spin, value in self.h.items():
            out[spin] = value
        return out

    def coupling_matrix(self) -> np.ndarray:
        """Symmetric coupling matrix with J on both triangles."""
        out = np.zeros((self.num_spins, self.num_spins))
        for (a, b), value in self.j.items():
            out[a, b] = value
            out[b, a] = value
        return out

    # ------------------------------------------------------------------
    def to_qubo(self) -> "QUBO":
        """Equivalent QUBO under ``s_i = 2 x_i - 1``."""
        from .qubo import QUBO

        model = QUBO(self.num_spins)
        offset = self.offset
        for spin, field in self.h.items():
            model.add_linear(spin, 2.0 * field)
            offset -= field
        for (a, b), coupling in self.j.items():
            model.add_quadratic(a, b, 4.0 * coupling)
            model.add_linear(a, -2.0 * coupling)
            model.add_linear(b, -2.0 * coupling)
            offset += coupling
        model.add_offset(offset)
        return model

    def to_pauli_sum(self):
        """Gate-model Hamiltonian: Z for each spin, ZZ per coupling."""
        from ..quantum.operators import ising_hamiltonian

        return ising_hamiltonian(self.h, self.j, self.num_spins,
                                 constant=self.offset)

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, num_spins: int, density: float = 1.0,
               field_scale: float = 0.0, seed: Optional[int] = None
               ) -> "IsingModel":
        """Random +-J spin glass; ``density`` is the coupling fill rate."""
        if not 0 < density <= 1:
            raise ValueError("density must be in (0, 1]")
        rng = np.random.default_rng(seed)
        j: Dict[Tuple[int, int], float] = {}
        for a in range(num_spins):
            for b in range(a + 1, num_spins):
                if rng.random() < density:
                    j[(a, b)] = float(rng.choice((-1.0, 1.0)))
        h: Dict[int, float] = {}
        if field_scale > 0:
            for spin in range(num_spins):
                h[spin] = float(rng.normal(scale=field_scale))
        return cls(num_spins, h=h, j=j)

    def __repr__(self) -> str:
        return (
            f"IsingModel(num_spins={self.num_spins}, fields={len(self.h)}, "
            f"couplings={len(self.j)})"
        )

    def _check_spin(self, spin: int) -> None:
        if not 0 <= spin < self.num_spins:
            raise ValueError(
                f"spin {spin} out of range [0, {self.num_spins})"
            )


def spins_to_bits(spins: Sequence[int]) -> np.ndarray:
    """Map {-1, +1} to {0, 1} via ``x = (1 + s) / 2``."""
    s = np.asarray(spins)
    return ((1 + s) // 2).astype(int)


def bits_to_spins(bits: Sequence[int]) -> np.ndarray:
    """Map {0, 1} to {-1, +1} via ``s = 2 x - 1``."""
    x = np.asarray(bits)
    return (2 * x - 1).astype(int)
