"""Simulated (thermal) annealing.

The classical baseline the quantum-annealing literature measures
against: single-spin Metropolis dynamics with a rising inverse
temperature schedule. Accepts both QUBO and Ising inputs, returns a
:class:`~repro.annealing.results.SampleSet` of binary assignments.

The inner loop is *read-vectorized*: all ``num_reads`` restarts are
stored as one ``(num_reads, n)`` spin matrix and advance in lock-step,
one spin column per Metropolis step. Local fields are cached and
incrementally updated on accepted flips, and acceptance thresholds are
drawn with batched numpy RNG, so the per-sweep Python overhead is
O(n) instead of O(num_reads * n).
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..telemetry.progress import ProgressTrace
from .ising import IsingModel, spins_to_bits
from .qubo import QUBO
from .results import Sample, SampleSet
from .schedules import default_beta_schedule

Model = Union[QUBO, IsingModel]


class SimulatedAnnealingSolver:
    """Metropolis single-spin-flip annealer.

    Parameters
    ----------
    num_sweeps:
        Full passes over all spins per read.
    num_reads:
        Independent restarts; the sample set aggregates all of them.
    beta_schedule:
        Inverse temperatures, one per sweep. By default the range is
        *auto-scaled to the problem*: the hot end accepts typical
        uphill moves with probability ~1/2 and the cold end freezes
        the smallest nonzero move, the heuristic used by production
        annealing samplers. A fixed mis-scaled schedule silently
        freezes (or never cools) models with large coefficients such
        as penalty-heavy QUBOs.
    progress:
        Optional :class:`~repro.telemetry.progress.ProgressTrace`
        receiving one uniform convergence row per sweep (running best
        energy, per-sweep acceptance rate, beta). Incremental energy
        tracking is only maintained while a trace is attached, so the
        hot path is untouched otherwise.
    """

    #: Registry name in :mod:`repro.compile.dispatch`.
    solver_name = "sa"

    def __init__(self, num_sweeps: int = 200, num_reads: int = 10,
                 beta_schedule: Optional[Sequence[float]] = None,
                 seed: Optional[int] = None,
                 progress: Optional[ProgressTrace] = None):
        if num_sweeps < 1:
            raise ValueError("num_sweeps must be positive")
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.beta_schedule = beta_schedule
        self.progress = progress
        self._rng = np.random.default_rng(seed)

    def solve(self, model: Model) -> SampleSet:
        """Anneal and return all reads as binary assignments."""
        ising = model.to_ising() if isinstance(model, QUBO) else model
        fields = ising.local_fields()
        couplings = ising.coupling_matrix()
        n = ising.num_spins
        betas = list(
            self.beta_schedule
            if self.beta_schedule is not None
            else auto_beta_schedule(ising, self.num_sweeps)
        )
        if len(betas) != self.num_sweeps:
            raise ValueError("beta_schedule length must equal num_sweeps")

        collector = telemetry.get_collector()
        registry = _metrics.get_registry()
        progress = self.progress
        accepted_total = 0
        solve_start = (time.perf_counter()
                       if registry is not None else 0.0)
        with telemetry.span("annealing.sa.solve"):
            spins = self._rng.choice((-1.0, 1.0),
                                     size=(self.num_reads, n))
            # Cached local fields: local[r, i] = h_i + sum_j J_ij s_rj,
            # updated incrementally as flips are accepted.
            local = spins @ couplings + fields
            # Per-read energies, tracked incrementally from accepted
            # flip deltas, feed the convergence trace only.
            running = ising.energies(spins) if progress is not None else None
            best_running = (float(running.min())
                            if running is not None else math.inf)
            moves_per_sweep = self.num_reads * n
            for sweep_index, beta in enumerate(betas):
                accepted = self._sweep(spins, local, couplings, beta,
                                       energies=running)
                accepted_total += accepted
                if progress is not None:
                    current = float(running.min())
                    best_running = min(best_running, current)
                    progress.record(
                        iteration=sweep_index,
                        best_energy=best_running,
                        current_energy=current,
                        acceptance_rate=accepted / moves_per_sweep,
                        schedule_value=beta,
                    )
            energies = ising.energies(spins)
            samples = [
                Sample(tuple(spins_to_bits(row.astype(int))), float(energy))
                for row, energy in zip(spins, energies)
            ]
            if collector is not None:
                for best in np.minimum.accumulate(energies):
                    collector.record("annealing.sa.best_energy",
                                     float(best))
        if collector is not None:
            sweeps = self.num_sweeps * self.num_reads
            collector.count("annealing.sweeps", sweeps)
            collector.count("annealing.sa.sweeps", sweeps)
            collector.count("annealing.sa.reads", self.num_reads)
            collector.count("annealing.sa.accepted_moves", accepted_total)
            collector.count("annealing.sa.rejected_moves",
                            sweeps * n - accepted_total)
            collector.count("annealing.sa.energy_evaluations",
                            self.num_reads)
            collector.gauge("annealing.problem_size", n)
        if registry is not None:
            sweeps = self.num_sweeps * self.num_reads
            elapsed = time.perf_counter() - solve_start
            registry.counter(
                "solver_sweeps_total",
                "annealing sweeps executed (reads x schedule steps)",
                ("solver",)).labels(solver=self.solver_name).inc(sweeps)
            moves = registry.counter(
                "solver_moves_total",
                "Metropolis move proposals by outcome",
                ("solver", "outcome"))
            moves.labels(solver=self.solver_name,
                         outcome="accepted").inc(accepted_total)
            moves.labels(solver=self.solver_name,
                         outcome="rejected").inc(
                             sweeps * n - accepted_total)
            if elapsed > 0:
                registry.gauge(
                    "solver_sweep_rate",
                    "sweeps per second of the most recent solve",
                    ("solver",)).labels(
                        solver=self.solver_name).set(sweeps / elapsed)
        return SampleSet(samples)

    def _sweep(self, spins: np.ndarray, local: np.ndarray,
               couplings: np.ndarray, beta: float,
               energies: Optional[np.ndarray] = None) -> int:
        """One Metropolis pass over all reads; returns accepted flips.

        Visits spins in one random order shared by every read; at each
        position all reads decide their flip simultaneously from the
        cached local fields, which are then updated for the accepted
        rows only. When ``energies`` is given, accepted flip deltas
        are accumulated into it (per read) for convergence tracing.
        """
        reads, n = spins.shape
        order = self._rng.permutation(n)
        thresholds = self._rng.random((n, reads))
        accepted = 0
        for position, i in enumerate(order):
            delta = -2.0 * spins[:, i] * local[:, i]
            # exp(min(-beta*delta, 0)) is 1 for downhill moves, so the
            # uniform threshold in [0, 1) always accepts them — same
            # semantics as the scalar `delta <= 0 or ...` test, without
            # overflowing exp for strongly downhill moves.
            accept = thresholds[position] < np.exp(
                np.minimum(-beta * delta, 0.0)
            )
            if accept.any():
                flipped = spins[accept, i]
                spins[accept, i] = -flipped
                local[accept] -= 2.0 * flipped[:, None] * couplings[i]
                if energies is not None:
                    energies[accept] += delta[accept]
                accepted += int(accept.sum())
        return accepted


def auto_beta_schedule(ising: IsingModel, num_sweeps: int
                       ) -> List[float]:
    """Problem-scaled geometric beta ramp.

    Hot end: ``ln(2) / dE_max`` where ``dE_max`` is the largest
    possible single-flip energy change, so early sweeps accept almost
    anything. Cold end: ``ln(1000) / dE_min`` with ``dE_min`` the
    smallest nonzero flip, so the final sweeps are effectively greedy.
    """
    fields = ising.local_fields()
    couplings = ising.coupling_matrix()
    per_spin = np.abs(fields) + np.abs(couplings).sum(axis=1)
    hottest = 2.0 * float(per_spin.max())
    magnitudes = np.concatenate([
        np.abs(fields[fields != 0]),
        np.abs(couplings[couplings != 0]),
    ])
    if magnitudes.size:
        # Floor the smallest move at a fraction of the largest:
        # near-zero stray coefficients (e.g. tiny mutual-information
        # scores) would otherwise stretch the cold end so far that the
        # whole schedule is spent frozen.
        coldest = 2.0 * max(float(magnitudes.min()),
                            1e-3 * float(magnitudes.max()))
    else:
        coldest = 1.0
    if hottest <= 0:
        return default_beta_schedule(num_sweeps)
    beta_hot = math.log(2.0) / hottest
    beta_cold = math.log(1000.0) / max(coldest, 1e-12)
    if beta_cold <= beta_hot:
        beta_cold = beta_hot * 100.0
    from .schedules import geometric_schedule

    return geometric_schedule(beta_hot, beta_cold, num_sweeps)


def anneal_qubo(model: QUBO, num_sweeps: int = 200, num_reads: int = 10,
                seed: Optional[int] = None) -> SampleSet:
    """One-call convenience wrapper around the solver."""
    solver = SimulatedAnnealingSolver(
        num_sweeps=num_sweeps, num_reads=num_reads, seed=seed
    )
    return solver.solve(model)
