"""Parallel tempering (replica-exchange Monte Carlo).

Runs several Metropolis replicas at different fixed temperatures and
periodically proposes swaps between neighbouring temperatures — the
strongest general-purpose classical sampler in the quantum-annealing
benchmarking literature, and the third leg of the SA / SQA / PT solver
comparison.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from ..telemetry.progress import ProgressTrace
from .ising import IsingModel, spins_to_bits
from .qubo import QUBO
from .results import Sample, SampleSet
from .simulated_annealing import auto_beta_schedule

Model = Union[QUBO, IsingModel]


class ParallelTemperingSolver:
    """Replica-exchange Metropolis sampler.

    Parameters
    ----------
    num_replicas:
        Temperature ladder size. Betas default to a geometric ladder
        spanning the problem-scaled hot/cold range the SA solver uses.
    num_sweeps:
        Sweeps per replica (swap proposals happen every sweep).
    num_reads:
        Independent restarts.
    betas:
        Explicit inverse-temperature ladder (ascending), overriding
        the automatic one.
    progress:
        Optional :class:`~repro.telemetry.progress.ProgressTrace`
        receiving one convergence row per sweep (running best energy,
        per-sweep swap acceptance, coldest-replica energy as the
        current value, coldest beta as the schedule value).
    """

    #: Registry name in :mod:`repro.compile.dispatch`.
    solver_name = "pt"

    def __init__(self, num_replicas: int = 8, num_sweeps: int = 200,
                 num_reads: int = 5,
                 betas: Optional[Sequence[float]] = None,
                 seed: Optional[int] = None,
                 progress: Optional[ProgressTrace] = None):
        if num_replicas < 2:
            raise ValueError("num_replicas must be >= 2")
        if num_sweeps < 1:
            raise ValueError("num_sweeps must be positive")
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        if betas is not None:
            betas = [float(b) for b in betas]
            if len(betas) != num_replicas:
                raise ValueError("betas length must equal num_replicas")
            if any(b <= a for a, b in zip(betas, betas[1:])):
                raise ValueError("betas must be strictly increasing")
        self.num_replicas = num_replicas
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.betas = betas
        self.progress = progress
        self._rng = np.random.default_rng(seed)
        self.last_swap_acceptance: Optional[float] = None

    def solve(self, model: Model) -> SampleSet:
        ising = model.to_ising() if isinstance(model, QUBO) else model
        fields = ising.local_fields()
        couplings = ising.coupling_matrix()
        n = ising.num_spins
        if self.betas is not None:
            betas = np.asarray(self.betas)
        else:
            # Reuse the SA auto-ranged endpoints as the ladder span.
            schedule = auto_beta_schedule(ising, 2)
            betas = np.geomspace(schedule[0], schedule[-1],
                                 self.num_replicas)

        samples: List[Sample] = []
        progress = self.progress
        global_best = math.inf
        global_iteration = 0
        cold_beta = float(betas[-1])
        swap_attempts = 0
        swap_accepts = 0
        for _ in range(self.num_reads):
            replicas = self._rng.choice((-1.0, 1.0),
                                        size=(self.num_replicas, n))
            energies = ising.energies(replicas)
            best_spins = replicas[np.argmin(energies)].copy()
            best_energy = float(energies.min())
            for sweep in range(self.num_sweeps):
                for r in range(self.num_replicas):
                    energies[r] += self._metropolis_sweep(
                        replicas[r], fields, couplings, betas[r]
                    )
                # Swap neighbouring temperatures (alternating parity).
                sweep_attempts = 0
                sweep_accepts = 0
                for r in range(sweep % 2, self.num_replicas - 1, 2):
                    sweep_attempts += 1
                    delta = ((betas[r + 1] - betas[r])
                             * (energies[r + 1] - energies[r]))
                    if delta >= 0 or self._rng.random() < math.exp(delta):
                        replicas[[r, r + 1]] = replicas[[r + 1, r]]
                        energies[[r, r + 1]] = energies[[r + 1, r]]
                        sweep_accepts += 1
                swap_attempts += sweep_attempts
                swap_accepts += sweep_accepts
                coldest = int(np.argmin(energies))
                if energies[coldest] < best_energy:
                    best_energy = float(energies[coldest])
                    best_spins = replicas[coldest].copy()
                if progress is not None:
                    global_best = min(global_best, best_energy)
                    progress.record(
                        iteration=global_iteration,
                        best_energy=global_best,
                        current_energy=float(energies[coldest]),
                        acceptance_rate=(sweep_accepts / sweep_attempts
                                         if sweep_attempts else None),
                        schedule_value=cold_beta,
                    )
                    global_iteration += 1
            samples.append(Sample(
                tuple(spins_to_bits(best_spins.astype(int))),
                best_energy,
            ))
        self.last_swap_acceptance = (
            swap_accepts / swap_attempts if swap_attempts else None
        )
        return SampleSet(samples)

    def _metropolis_sweep(self, spins: np.ndarray, fields: np.ndarray,
                          couplings: np.ndarray, beta: float) -> float:
        """One sweep at fixed beta; returns the total energy change."""
        n = spins.size
        order = self._rng.permutation(n)
        thresholds = self._rng.random(n)
        total_delta = 0.0
        for position, i in enumerate(order):
            local = fields[i] + couplings[i] @ spins
            delta = -2.0 * spins[i] * local
            if delta <= 0 or thresholds[position] < math.exp(-beta * delta):
                spins[i] = -spins[i]
                total_delta += delta
        return total_delta
