"""QUBO model builder.

Quadratic unconstrained binary optimization is the lingua franca of
the annealing-based database work this library reproduces: join order,
multiple-query optimization, index selection and transaction scheduling
all compile to a :class:`QUBO` and are then handed to any solver in
this package.

Energy convention: ``E(x) = x^T Q x + offset`` with binary ``x`` and an
upper-triangular coefficient store (``Q[i, i]`` holds linear terms).
All solvers minimize.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


class QUBO:
    """A quadratic pseudo-boolean objective over ``num_variables`` bits."""

    def __init__(self, num_variables: int, offset: float = 0.0):
        if num_variables < 1:
            raise ValueError("num_variables must be positive")
        self.num_variables = int(num_variables)
        self.offset = float(offset)
        self._coefficients: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_linear(self, variable: int, coefficient: float) -> "QUBO":
        """Add ``coefficient * x_variable`` to the objective."""
        self._check_var(variable)
        key = (variable, variable)
        self._coefficients[key] = self._coefficients.get(key, 0.0) + float(
            coefficient
        )
        return self

    def add_quadratic(self, u: int, v: int, coefficient: float) -> "QUBO":
        """Add ``coefficient * x_u * x_v``; (u, v) is normalized u < v.

        Adding with ``u == v`` is a linear term (``x^2 = x``).
        """
        self._check_var(u)
        self._check_var(v)
        if u == v:
            return self.add_linear(u, coefficient)
        key = (min(u, v), max(u, v))
        self._coefficients[key] = self._coefficients.get(key, 0.0) + float(
            coefficient
        )
        return self

    def add_offset(self, value: float) -> "QUBO":
        """Add a constant to the objective."""
        self.offset += float(value)
        return self

    # ------------------------------------------------------------------
    # Constraint-penalty helpers (the tutorial's QUBO modelling toolkit)
    # ------------------------------------------------------------------
    def add_penalty_exactly_one(self, variables: Sequence[int],
                                weight: float) -> "QUBO":
        """Penalize ``(sum_i x_i - 1)^2 * weight`` (one-hot constraint)."""
        self._check_penalty(variables, weight)
        for i, u in enumerate(variables):
            self.add_linear(u, -weight)
            for v in variables[i + 1:]:
                self.add_quadratic(u, v, 2.0 * weight)
        self.add_offset(weight)
        return self

    def add_penalty_at_most_one(self, variables: Sequence[int],
                                weight: float) -> "QUBO":
        """Penalize any pair being set: ``weight * sum_{u<v} x_u x_v``."""
        self._check_penalty(variables, weight)
        for i, u in enumerate(variables):
            for v in variables[i + 1:]:
                self.add_quadratic(u, v, weight)
        return self

    def add_penalty_equal(self, u: int, v: int, weight: float) -> "QUBO":
        """Penalize disagreement: ``weight * (x_u - x_v)^2``."""
        if weight < 0:
            raise ValueError("penalty weight must be non-negative")
        self.add_linear(u, weight)
        self.add_linear(v, weight)
        self.add_quadratic(u, v, -2.0 * weight)
        return self

    def add_penalty_implication(self, u: int, v: int,
                                weight: float) -> "QUBO":
        """Penalize ``x_u = 1 and x_v = 0``: ``weight * x_u (1 - x_v)``."""
        if weight < 0:
            raise ValueError("penalty weight must be non-negative")
        self.add_linear(u, weight)
        self.add_quadratic(u, v, -weight)
        return self

    def _check_penalty(self, variables: Sequence[int],
                       weight: float) -> None:
        if weight < 0:
            raise ValueError("penalty weight must be non-negative")
        if len(set(variables)) != len(variables):
            raise ValueError("penalty variables must be distinct")

    # ------------------------------------------------------------------
    # Inspection / evaluation
    # ------------------------------------------------------------------
    @property
    def linear(self) -> Dict[int, float]:
        """Linear coefficients keyed by variable."""
        return {
            u: c for (u, v), c in self._coefficients.items() if u == v
        }

    @property
    def quadratic(self) -> Dict[Tuple[int, int], float]:
        """Strictly quadratic coefficients keyed by (u, v), u < v."""
        return {
            key: c for key, c in self._coefficients.items()
            if key[0] != key[1]
        }

    def energy(self, x: Sequence[int]) -> float:
        """Objective value of a binary assignment."""
        bits = np.asarray(x)
        if bits.size != self.num_variables:
            raise ValueError(
                f"assignment has {bits.size} bits, expected "
                f"{self.num_variables}"
            )
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("assignment must be binary")
        total = self.offset
        for (u, v), c in self._coefficients.items():
            total += c * bits[u] * bits[v]
        return float(total)

    def energies(self, X: np.ndarray) -> np.ndarray:
        """Vectorized objective for a matrix of assignments (rows)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        q = self.matrix()
        return np.einsum("bi,ij,bj->b", X, q, X) + self.offset

    def matrix(self) -> np.ndarray:
        """Dense upper-triangular Q matrix."""
        q = np.zeros((self.num_variables, self.num_variables))
        for (u, v), c in self._coefficients.items():
            q[u, v] += c
        return q

    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient; the basis for penalty weights."""
        if not self._coefficients:
            return 0.0
        return max(abs(c) for c in self._coefficients.values())

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_ising(self) -> "IsingModel":
        """Equivalent Ising model under ``x_i = (1 + s_i) / 2``."""
        from .ising import IsingModel

        h: Dict[int, float] = {}
        j: Dict[Tuple[int, int], float] = {}
        offset = self.offset
        for (u, v), c in self._coefficients.items():
            if u == v:
                h[u] = h.get(u, 0.0) + c / 2.0
                offset += c / 2.0
            else:
                j[(u, v)] = j.get((u, v), 0.0) + c / 4.0
                h[u] = h.get(u, 0.0) + c / 4.0
                h[v] = h.get(v, 0.0) + c / 4.0
                offset += c / 4.0
        return IsingModel(self.num_variables, h=h, j=j, offset=offset)

    @classmethod
    def from_matrix(cls, q: np.ndarray, offset: float = 0.0) -> "QUBO":
        """Build from a square coefficient matrix (symmetrized into
        the upper triangle)."""
        q = np.asarray(q, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError("Q must be square")
        model = cls(q.shape[0], offset=offset)
        n = q.shape[0]
        for u in range(n):
            if q[u, u]:
                model.add_linear(u, q[u, u])
            for v in range(u + 1, n):
                total = q[u, v] + q[v, u]
                if total:
                    model.add_quadratic(u, v, total)
        return model

    def __repr__(self) -> str:
        return (
            f"QUBO(num_variables={self.num_variables}, "
            f"terms={len(self._coefficients)}, offset={self.offset:g})"
        )

    def _check_var(self, variable: int) -> None:
        if not 0 <= variable < self.num_variables:
            raise ValueError(
                f"variable {variable} out of range "
                f"[0, {self.num_variables})"
            )
