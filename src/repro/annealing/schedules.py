"""Annealing schedules (inverse temperature and transverse field)."""

from __future__ import annotations

from typing import List


def linear_schedule(start: float, end: float, steps: int) -> List[float]:
    """Evenly spaced values from start to end inclusive."""
    if steps < 1:
        raise ValueError("steps must be positive")
    if steps == 1:
        return [end]
    delta = (end - start) / (steps - 1)
    return [start + delta * k for k in range(steps)]


def geometric_schedule(start: float, end: float, steps: int) -> List[float]:
    """Geometrically spaced values; both endpoints must share a sign
    and be non-zero. The standard choice for inverse temperature."""
    if steps < 1:
        raise ValueError("steps must be positive")
    if start == 0 or end == 0 or (start > 0) != (end > 0):
        raise ValueError("geometric schedule endpoints must share a sign")
    if steps == 1:
        return [end]
    ratio = (end / start) ** (1.0 / (steps - 1))
    return [start * ratio ** k for k in range(steps)]


def default_beta_schedule(steps: int, beta_min: float = 0.1,
                          beta_max: float = 10.0) -> List[float]:
    """Geometric inverse-temperature ramp used by the SA solver."""
    return geometric_schedule(beta_min, beta_max, steps)


def default_transverse_field_schedule(steps: int, gamma_min: float = 0.01,
                                      gamma_max: float = 3.0) -> List[float]:
    """Decreasing transverse field for simulated quantum annealing."""
    return list(reversed(linear_schedule(gamma_min, gamma_max, steps)))
