"""Solver result containers shared by all annealing-style solvers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Sample:
    """One solution: binary assignment, its energy, occurrence count."""

    assignment: Tuple[int, ...]
    energy: float
    num_occurrences: int = 1


class SampleSet:
    """Collection of samples sorted by energy (best first)."""

    def __init__(self, samples: Sequence[Sample]):
        if not samples:
            raise ValueError("a SampleSet needs at least one sample")
        merged: dict = {}
        for sample in samples:
            key = sample.assignment
            if key in merged:
                existing = merged[key]
                merged[key] = Sample(
                    key, existing.energy,
                    existing.num_occurrences + sample.num_occurrences,
                )
            else:
                merged[key] = sample
        self.samples: List[Sample] = sorted(
            merged.values(), key=lambda s: s.energy
        )

    @property
    def best(self) -> Sample:
        """Lowest-energy sample."""
        return self.samples[0]

    @property
    def best_energy(self) -> float:
        return self.best.energy

    @property
    def best_assignment(self) -> np.ndarray:
        return np.asarray(self.best.assignment)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def energies(self) -> np.ndarray:
        """Energies expanded by occurrence counts."""
        return np.repeat(
            [s.energy for s in self.samples],
            [s.num_occurrences for s in self.samples],
        )

    def success_probability(self, target_energy: float,
                            atol: float = 1e-9) -> float:
        """Fraction of reads at or below a target energy."""
        total = sum(s.num_occurrences for s in self.samples)
        hits = sum(
            s.num_occurrences for s in self.samples
            if s.energy <= target_energy + atol
        )
        return hits / total

    def __repr__(self) -> str:
        return (
            f"SampleSet(num_distinct={len(self.samples)}, "
            f"best_energy={self.best_energy:g})"
        )
