"""QAOA — the gate-model route to Ising optimization.

The quantum approximate optimization algorithm alternates ``p`` cost
layers ``exp(-i gamma H_problem)`` (RZ/RZZ gates, since the problem
Hamiltonian is diagonal) with mixer layers ``exp(-i beta sum X)``.
Angles are optimized classically; solutions are sampled from the final
state. Experiment E12 sweeps the depth ``p`` and shows the
approximation ratio climbing toward 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy import optimize as scipy_optimize

from .. import telemetry
from ..quantum.circuit import Circuit
from ..quantum.statevector import StatevectorSimulator
from ..telemetry.progress import ProgressTrace
from .ising import IsingModel
from .qubo import QUBO
from .results import Sample, SampleSet

Model = Union[QUBO, IsingModel]


def qaoa_circuit(model: IsingModel, gammas: Sequence[float],
                 betas: Sequence[float]) -> Circuit:
    """Bound QAOA circuit for the given angle vectors (depth = len)."""
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have equal length")
    n = model.num_spins
    qc = Circuit(n)
    for q in range(n):
        qc.h(q)
    for gamma, beta in zip(gammas, betas):
        for spin, field in model.h.items():
            if field:
                qc.rz(2.0 * gamma * field, spin)
        for (a, b), coupling in model.j.items():
            if coupling:
                qc.rzz(2.0 * gamma * coupling, a, b)
        for q in range(n):
            qc.rx(2.0 * beta, q)
    return qc


def basis_energies(model: IsingModel) -> np.ndarray:
    """Diagonal of the problem Hamiltonian in the computational basis.

    Index convention matches the simulator: qubit 0 is the most
    significant bit; bit 0 means spin +1.
    """
    n = model.num_spins
    count = 2 ** n
    indices = np.arange(count, dtype=np.int64)
    shifts = (n - 1) - np.arange(n)
    bits = ((indices[:, None] >> shifts[None, :]) & 1).astype(float)
    spins = 1.0 - 2.0 * bits
    return model.energies(spins)


@dataclass
class QAOAResult:
    """Outcome of a QAOA run."""

    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    samples: SampleSet
    approximation_ratio: float
    nfev: int


class QAOASolver:
    """Depth-p QAOA with classical angle optimization.

    Parameters
    ----------
    p:
        Number of alternating cost/mixer layers.
    optimizer:
        ``"cobyla"`` or ``"nelder-mead"`` (scipy), operating on the
        exact expectation computed from the statevector.
    restarts:
        Random-restart count for the angle optimization.
    shots:
        Number of solution samples drawn from the final distribution.
    progress:
        Optional :class:`~repro.telemetry.progress.ProgressTrace`
        receiving one convergence row per objective evaluation
        (running best expectation, current expectation).
    """

    #: Registry name in :mod:`repro.compile.dispatch`.
    solver_name = "qaoa"

    def __init__(self, p: int = 1, optimizer: str = "cobyla",
                 restarts: int = 3, shots: int = 256, maxiter: int = 200,
                 seed: Optional[int] = None,
                 progress: Optional[ProgressTrace] = None):
        if p < 1:
            raise ValueError("p must be >= 1")
        if optimizer not in ("cobyla", "nelder-mead"):
            raise ValueError("optimizer must be 'cobyla' or 'nelder-mead'")
        if restarts < 1:
            raise ValueError("restarts must be positive")
        self.p = p
        self.optimizer = optimizer
        self.restarts = restarts
        self.shots = shots
        self.maxiter = maxiter
        self.progress = progress
        self._rng = np.random.default_rng(seed)

    def solve(self, model: Model) -> QAOAResult:
        ising = model.to_ising() if isinstance(model, QUBO) else model
        energies = basis_energies(ising)
        sim = StatevectorSimulator(seed=int(self._rng.integers(2 ** 31)))
        nfev = 0
        progress = self.progress
        running_best = math.inf

        def expectation(angles: np.ndarray) -> float:
            nonlocal nfev, running_best
            nfev += 1
            gammas, betas = angles[: self.p], angles[self.p:]
            state = sim.run(qaoa_circuit(ising, gammas, betas))
            probabilities = np.abs(state) ** 2
            value = float(probabilities @ energies)
            if progress is not None:
                running_best = min(running_best, value)
                progress.record(
                    iteration=nfev - 1,
                    best_energy=running_best,
                    current_energy=value,
                )
            return value

        collector = telemetry.get_collector()
        best_angles: Optional[np.ndarray] = None
        best_value = math.inf
        with telemetry.span("annealing.qaoa.solve"):
            for _ in range(self.restarts):
                start = np.concatenate([
                    self._rng.uniform(0, math.pi, self.p),     # gammas
                    self._rng.uniform(0, math.pi / 2, self.p),  # betas
                ])
                method = ("COBYLA" if self.optimizer == "cobyla"
                          else "Nelder-Mead")
                result = scipy_optimize.minimize(
                    expectation, start, method=method,
                    options={"maxiter": self.maxiter},
                )
                if result.fun < best_value:
                    best_value = float(result.fun)
                    best_angles = np.asarray(result.x)
                if collector is not None:
                    collector.record("annealing.qaoa.best_expectation",
                                     best_value)
        if collector is not None:
            collector.count("annealing.qaoa.energy_evaluations", nfev)
            collector.count("annealing.qaoa.restarts", self.restarts)
            collector.gauge("annealing.problem_size", ising.num_spins)
            collector.gauge("annealing.qaoa.depth", self.p)

        gammas, betas = best_angles[: self.p], best_angles[self.p:]
        final_state = sim.run(qaoa_circuit(ising, gammas, betas))
        probabilities = np.abs(final_state) ** 2
        probabilities = probabilities / probabilities.sum()
        samples = self._sample(probabilities, energies, ising.num_spins)
        ratio = approximation_ratio(best_value, energies)
        return QAOAResult(
            gammas=gammas, betas=betas, expectation=best_value,
            samples=samples, approximation_ratio=ratio, nfev=nfev,
        )

    def _sample(self, probabilities: np.ndarray, energies: np.ndarray,
                num_spins: int) -> SampleSet:
        telemetry.count("quantum.shots", self.shots)
        outcomes = self._rng.choice(
            probabilities.size, size=self.shots, p=probabilities
        )
        samples: List[Sample] = []
        for outcome, count in zip(*np.unique(outcomes, return_counts=True)):
            bits = tuple(
                (int(outcome) >> (num_spins - 1 - q)) & 1
                for q in range(num_spins)
            )
            samples.append(
                Sample(bits, float(energies[outcome]), int(count))
            )
        return SampleSet(samples)


def approximation_ratio(value: float, energies: np.ndarray) -> float:
    """Normalized quality in [0, 1]: 1 at the minimum, 0 at the maximum."""
    lowest = float(energies.min())
    highest = float(energies.max())
    if highest == lowest:
        return 1.0
    return (highest - value) / (highest - lowest)
