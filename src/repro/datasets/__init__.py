"""Synthetic dataset generators used across experiments and examples."""

from .synthetic import (
    make_blobs,
    make_circles,
    make_linearly_separable,
    make_moons,
    make_parity,
    make_regression_wave,
    make_xor,
    minmax_scale,
    train_test_split,
)

__all__ = [
    "make_blobs",
    "make_circles",
    "make_linearly_separable",
    "make_moons",
    "make_parity",
    "make_regression_wave",
    "make_xor",
    "minmax_scale",
    "train_test_split",
]
