"""Synthetic datasets for the classification and regression experiments.

All generators return ``(X, y)`` with ``X`` of shape ``(n, d)`` float64
and ``y`` integer labels in {0, 1} (classification) or float targets
(regression), and accept a seed for reproducibility.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

Dataset = Tuple[np.ndarray, np.ndarray]


def make_moons(n_samples: int = 100, noise: float = 0.1,
               seed: Optional[int] = None) -> Dataset:
    """Two interleaving half circles — the canonical nonlinear task."""
    _check(n_samples, noise)
    rng = np.random.default_rng(seed)
    half = n_samples // 2
    rest = n_samples - half
    angles_outer = rng.uniform(0, math.pi, half)
    angles_inner = rng.uniform(0, math.pi, rest)
    outer = np.column_stack([np.cos(angles_outer), np.sin(angles_outer)])
    inner = np.column_stack(
        [1.0 - np.cos(angles_inner), 0.5 - np.sin(angles_inner)]
    )
    X = np.vstack([outer, inner])
    X += rng.normal(scale=noise, size=X.shape)
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(rest, dtype=int)])
    return _shuffle(X, y, rng)


def make_circles(n_samples: int = 100, noise: float = 0.05,
                 factor: float = 0.5,
                 seed: Optional[int] = None) -> Dataset:
    """Concentric circles; linearly inseparable in the raw features."""
    _check(n_samples, noise)
    if not 0 < factor < 1:
        raise ValueError("factor must be in (0, 1)")
    rng = np.random.default_rng(seed)
    half = n_samples // 2
    rest = n_samples - half
    outer_angles = rng.uniform(0, 2 * math.pi, half)
    inner_angles = rng.uniform(0, 2 * math.pi, rest)
    outer = np.column_stack([np.cos(outer_angles), np.sin(outer_angles)])
    inner = factor * np.column_stack(
        [np.cos(inner_angles), np.sin(inner_angles)]
    )
    X = np.vstack([outer, inner]) + rng.normal(
        scale=noise, size=(n_samples, 2)
    )
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(rest, dtype=int)])
    return _shuffle(X, y, rng)


def make_blobs(n_samples: int = 100, centers: int = 2, spread: float = 0.5,
               dim: int = 2, seed: Optional[int] = None) -> Dataset:
    """Gaussian blobs; labels cycle through the centers."""
    _check(n_samples, spread)
    if centers < 2:
        raise ValueError("need at least two centers")
    rng = np.random.default_rng(seed)
    locations = rng.uniform(-3, 3, size=(centers, dim))
    assignments = np.arange(n_samples) % centers
    X = locations[assignments] + rng.normal(
        scale=spread, size=(n_samples, dim)
    )
    return _shuffle(X, assignments.astype(int), rng)


def make_xor(n_samples: int = 100, noise: float = 0.1,
             seed: Optional[int] = None) -> Dataset:
    """The XOR quadrant problem: label = sign(x0) != sign(x1)."""
    _check(n_samples, noise)
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n_samples, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X += rng.normal(scale=noise, size=X.shape)
    return X, y


def make_parity(num_bits: int = 4, n_samples: Optional[int] = None,
                seed: Optional[int] = None) -> Dataset:
    """Bit strings labeled by parity; the classic linear-kernel killer.

    With ``n_samples=None`` the full truth table (``2**num_bits`` rows)
    is returned in random order.
    """
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    rng = np.random.default_rng(seed)
    total = 2 ** num_bits
    rows = np.array(
        [[(i >> (num_bits - 1 - b)) & 1 for b in range(num_bits)]
         for i in range(total)],
        dtype=float,
    )
    labels = rows.sum(axis=1).astype(int) % 2
    if n_samples is None:
        return _shuffle(rows, labels, rng)
    picks = rng.integers(total, size=n_samples)
    return rows[picks], labels[picks]


def make_linearly_separable(n_samples: int = 100, dim: int = 2,
                            margin: float = 0.2,
                            seed: Optional[int] = None) -> Dataset:
    """Points split by a random hyperplane with a guaranteed margin."""
    _check(n_samples, margin)
    rng = np.random.default_rng(seed)
    normal = rng.normal(size=dim)
    normal /= np.linalg.norm(normal)
    X = np.empty((0, dim))
    while X.shape[0] < n_samples:
        candidates = rng.uniform(-1, 1, size=(2 * n_samples, dim))
        keep = np.abs(candidates @ normal) >= margin
        X = np.vstack([X, candidates[keep]])
    X = X[:n_samples]
    y = (X @ normal > 0).astype(int)
    return X, y


def make_regression_wave(n_samples: int = 100, noise: float = 0.05,
                         seed: Optional[int] = None) -> Dataset:
    """1-D regression target ``sin(pi x)`` on [-1, 1] with noise."""
    _check(n_samples, noise)
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n_samples, 1))
    y = np.sin(math.pi * x[:, 0]) + rng.normal(scale=noise, size=n_samples)
    return x, y


def train_test_split(X: np.ndarray, y: np.ndarray, test_fraction: float = 0.3,
                     seed: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_test, y_train, y_test)."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    order = rng.permutation(X.shape[0])
    cut = int(round(X.shape[0] * (1 - test_fraction)))
    if cut in (0, X.shape[0]):
        raise ValueError("split leaves an empty train or test set")
    train, test = order[:cut], order[cut:]
    return X[train], X[test], y[train], y[test]


def minmax_scale(X: np.ndarray, low: float = 0.0,
                 high: float = 1.0) -> np.ndarray:
    """Column-wise rescale into [low, high]; constant columns map to low."""
    X = np.asarray(X, dtype=float)
    mins = X.min(axis=0)
    spans = X.max(axis=0) - mins
    spans[spans == 0] = 1.0
    return low + (high - low) * (X - mins) / spans


def _shuffle(X: np.ndarray, y: np.ndarray,
             rng: np.random.Generator) -> Dataset:
    order = rng.permutation(X.shape[0])
    return X[order], y[order]


def _check(n_samples: int, noise: float) -> None:
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if noise < 0:
        raise ValueError("noise must be non-negative")
