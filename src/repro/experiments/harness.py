"""Experiment harness: registry, result container, table formatting.

Every experiment in DESIGN.md registers a runner here. Runners return
an :class:`ExperimentResult` whose rows are the table/series the
benchmark prints, so ``benchmarks/bench_e*.py``, ``EXPERIMENTS.md`` and
ad-hoc exploration all share one code path:

    from repro.experiments import run_experiment, format_table
    print(format_table(run_experiment("E8", num_relations=6)))
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import telemetry


@dataclass
class ExperimentResult:
    """One experiment's output table.

    When telemetry is enabled, :func:`run_experiment` also attaches a
    run-provenance record and the metrics collected during the run
    (counter deltas, span timings, gauges, series); both stay ``None``
    otherwise.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]]
    notes: str = ""
    provenance: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None

    def column(self, name: str) -> List[Any]:
        """Extract one column across all rows."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.columns}")
        return [row.get(name) for row in self.rows]


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}
_TITLES: Dict[str, str] = {}


def register(experiment_id: str, title: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(function: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"{experiment_id} registered twice")
        _REGISTRY[experiment_id] = function
        _TITLES[experiment_id] = title
        return function

    return wrap


def available_experiments() -> Dict[str, str]:
    """Mapping of experiment id -> title."""
    return dict(_TITLES)


def experiment_accepts(experiment_id: str, parameter: str) -> bool:
    """Whether a registered runner takes ``parameter`` as a keyword.

    Lets the CLI forward cross-cutting knobs (``--solver``) only to the
    experiments they apply to.
    """
    from . import ablations, foundations, learning, optimization  # noqa: F401

    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    signature = inspect.signature(_REGISTRY[experiment_id])
    return parameter in signature.parameters


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    # Import the runner modules lazily so registration happens on
    # first use without import cycles.
    from . import ablations, foundations, learning, optimization  # noqa: F401

    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    collector = telemetry.get_collector()
    tracer = telemetry.get_tracer()
    if collector is None and tracer is None:
        return _REGISTRY[experiment_id](**kwargs)
    counters_before = (collector.counters_snapshot()
                       if collector is not None else None)
    start = time.perf_counter()
    # telemetry.span aggregates on the collector (mirroring onto the
    # tracer's timeline) or, tracer-only, emits a bare begin/end pair.
    with telemetry.span(f"experiment.{experiment_id}"):
        result = _REGISTRY[experiment_id](**kwargs)
    duration = time.perf_counter() - start
    if tracer is not None:
        for index, row in enumerate(result.rows):
            tracer.instant(
                f"experiment.{experiment_id}.row",
                category="experiment",
                args={"index": index,
                      **{key: value for key, value in row.items()
                         if isinstance(value, (bool, int, float, str))}},
            )
    if collector is not None:
        provenance = telemetry.collect_provenance(
            experiment_id, kwargs, duration_seconds=duration,
            title=_TITLES[experiment_id],
        ).to_dict()
        if tracer is not None:
            provenance["trace_events"] = tracer.event_count
        result.provenance = provenance
        result.metrics = collector.snapshot(
            counters_since=counters_before
        )
    return result


def format_table(result: ExperimentResult,
                 float_format: str = "{:.4g}") -> str:
    """Render a result as an aligned text table (paper-style)."""
    headers = result.columns
    body: List[List[str]] = []
    for row in result.rows:
        rendered = []
        for column in headers:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"{result.experiment_id}: {result.title}",
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for rendered in body:
        lines.append(
            "  ".join(rendered[i].ljust(widths[i])
                      for i in range(len(headers)))
        )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def solve_jobs(jobs: Sequence[Any], solver: Any = "sa",
               config: Any = None, workers: int = 0,
               mode: str = "process", **service_kwargs) -> List[Any]:
    """Solve a batch of compiled problems, optionally concurrently.

    ``jobs`` entries are :class:`~repro.compile.CompiledProblem`
    records or ``(problem[, solver[, config]])`` tuples; results come
    back in input order. With ``workers=0`` (the default) every job
    runs sequentially through :func:`repro.compile.solve` — the
    reference path. With ``workers > 0`` the batch runs through a
    temporary :class:`~repro.service.SolveService` worker pool, which
    returns bit-for-bit identical results under seeded configs; this
    requires registry solver *names*, not solver instances.

    Experiments with independent per-instance solves route their
    solver arm through this helper so a single ``workers`` knob (and
    the ``--workers`` CLI flag) parallelizes them.
    """
    specs = list(jobs)
    if workers:
        from ..service import SolveService

        with SolveService(max_workers=workers, mode=mode,
                          **service_kwargs) as service:
            return service.solve_many(specs, solver=solver,
                                      config=config)
    from ..compile import solve as dispatch_solve

    results = []
    for spec in specs:
        job_solver, job_config = solver, config
        if isinstance(spec, tuple):
            problem = spec[0]
            if len(spec) > 1:
                job_solver = spec[1]
            if len(spec) > 2:
                job_config = spec[2]
        else:
            problem = spec
        results.append(dispatch_solve(problem, solver=job_solver,
                                      config=job_config))
    return results


def run_pipeline(instances: Sequence[Any], formulation: Any,
                 solve: Any = "sa", configs: Any = None,
                 workers: int = 0, mode: str = "process",
                 provenance: Optional[Dict[str, Any]] = None,
                 **service_kwargs) -> List[Any]:
    """Run a batch of instances through an optimization pipeline.

    The pipeline-era sibling of :func:`solve_jobs`: ``formulation`` is
    a registered name or :class:`~repro.pipeline.FormulationStrategy`,
    ``solve`` a solver name / ``"classical"`` /
    :class:`~repro.pipeline.SolveStrategy`, ``configs`` an optional
    per-instance config list. ``workers=0`` runs in-process (the
    reference path); ``workers > 0`` attaches a temporary
    :class:`~repro.service.SolveService` warm pool — plans are
    bit-for-bit identical under seeded configs, just concurrent.
    Returns :class:`~repro.pipeline.AnnotatedPlan` records in input
    order.
    """
    from ..pipeline import OptimizationPipeline

    items = list(instances)
    if workers:
        from ..service import SolveService

        with SolveService(max_workers=workers, mode=mode,
                          **service_kwargs) as service:
            pipeline = OptimizationPipeline(formulation, solve=solve,
                                            service=service)
            return pipeline.optimize_workload(
                items, configs=configs, provenance=provenance
            )
    pipeline = OptimizationPipeline(formulation, solve=solve)
    return pipeline.optimize_workload(items, configs=configs,
                                      provenance=provenance)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the standard aggregate for cost ratios."""
    import math

    values = [max(float(v), 1e-300) for v in values]
    if not values:
        raise ValueError("empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def to_csv(result: ExperimentResult) -> str:
    """Render a result as CSV (header + one line per row).

    Cells are comma-escaped by quoting; floats keep full precision so
    downstream plotting scripts lose nothing.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=result.columns,
                            extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({c: row.get(c, "") for c in result.columns})
    return buffer.getvalue()
