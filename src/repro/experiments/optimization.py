"""Optimization experiments: E8 (join order), E9 (MQO), E10 (index
selection), E11 (transaction scheduling), E12 (QAOA depth), E14
(SA vs SQA on barrier instances)."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..annealing import (
    QAOASolver,
    IsingModel,
    ParallelTemperingSolver,
    SimulatedAnnealingSolver,
    SimulatedQuantumAnnealingSolver,
    solve_ising_exact,
)
from ..compile import SolverConfig
from ..db.indexsel import (
    IndexSelectionProblem,
    solve_index_selection_exact,
    solve_index_selection_greedy,
)
from ..db.joinorder import (
    dp_optimal,
    greedy_goo,
    solve_join_order_annealing,
)
from ..db.mqo import (
    MQOProblem,
    solve_mqo_exhaustive,
    solve_mqo_greedy,
)
from ..db.txsched import (
    TransactionSchedulingProblem,
    schedule_fcfs,
    schedule_greedy_first_fit,
)
from ..db.workloads import random_join_graph
from .harness import (
    ExperimentResult,
    geometric_mean,
    register,
    run_pipeline,
)


@register("E8", "Join ordering: QUBO+SA vs exact DP vs greedy GOO")
def join_order(topologies: Sequence[str] = ("chain", "star", "cycle",
                                            "clique"),
               sizes: Sequence[int] = (4, 6, 8),
               instances_per_cell: int = 3,
               seed: int = 0,
               solver: str = "sa",
               workers: int = 0) -> ExperimentResult:
    """Cost ratio to the bushy-DP optimum, per topology and size, plus
    optimizer wall-clock. The claim: annealing tracks the optimum where
    DP's runtime explodes, and beats greedy on adversarial shapes.
    ``solver`` picks the annealing arm's backend by registry name;
    ``workers > 0`` runs each cell's independent annealing solves
    through the solve service concurrently (same seeds, identical
    results — cost ratios do not change). The annealing arm runs
    through the staged optimization pipeline (compile → dispatch →
    2-opt polish in plan assembly), which is bit-for-bit the old
    direct compile+solve+polish path."""
    from ..pipeline import JoinOrderFormulation

    rng = np.random.default_rng(seed)
    rows = []
    for topology in topologies:
        for n in sizes:
            greedy_ratios: List[float] = []
            annealed_ratios: List[float] = []
            dp_times: List[float] = []
            batch = []
            for _ in range(instances_per_cell):
                graph = random_join_graph(
                    n, topology, seed=int(rng.integers(2 ** 31))
                )
                start = time.perf_counter()
                _, dp_cost = dp_optimal(graph, bushy=True,
                                        avoid_cross_products=False)
                dp_times.append(time.perf_counter() - start)
                _, greedy_cost = greedy_goo(graph)
                config = SolverConfig(
                    num_sweeps=400, num_reads=20,
                    seed=int(rng.integers(2 ** 31)),
                )
                greedy_ratios.append(greedy_cost / dp_cost)
                batch.append((graph, config, dp_cost))
            start = time.perf_counter()
            plans = run_pipeline(
                [graph for graph, _, _ in batch],
                JoinOrderFormulation(polish=True),
                solve=solver,
                configs=[config for _, config, _ in batch],
                workers=workers,
            )
            for (graph, _, dp_cost), plan in zip(batch, plans):
                annealed_ratios.append(plan.cost / dp_cost)
            annealing_seconds = ((time.perf_counter() - start)
                                 / max(len(batch), 1))
            rows.append({
                "topology": topology,
                "relations": n,
                "greedy_vs_dp": geometric_mean(greedy_ratios),
                "annealed_vs_dp": geometric_mean(annealed_ratios),
                "dp_seconds": float(np.mean(dp_times)),
                "sa_seconds": annealing_seconds,
            })
    return ExperimentResult(
        "E8", "Join ordering (cost ratios to bushy DP optimum)",
        ["topology", "relations", "greedy_vs_dp", "annealed_vs_dp",
         "dp_seconds", "sa_seconds"],
        rows,
        notes="ratios are geometric means; 1.0 = matched the optimum. "
              "The annealed plan is left-deep, so small ratios > 1 on "
              "bushy-friendly topologies are expected. sa_seconds is "
              "the per-instance average of the annealing arm (compile "
              "+ solve + polish), which runs through the solve "
              "service when workers > 0.",
    )


@register("E9", "Multiple-query optimization: annealing vs exact vs greedy")
def mqo(query_counts: Sequence[int] = (3, 5, 7, 9),
        plans_per_query: int = 3, instances_per_cell: int = 3,
        seed: int = 0, solver: str = "sa") -> ExperimentResult:
    """Trummer-Koch MQO: cost ratio to the exhaustive optimum and the
    point where exhaustive enumeration stops being viable. The
    annealing arm runs through the staged optimization pipeline at the
    module's deterministic default config (identical solutions to the
    direct ``solve_mqo_annealing`` call)."""
    from ..pipeline import OptimizationPipeline

    pipeline = OptimizationPipeline("mqo", solve=solver)
    rng = np.random.default_rng(seed)
    rows = []
    for num_queries in query_counts:
        annealed_ratios: List[float] = []
        greedy_ratios: List[float] = []
        exhaustive_times: List[float] = []
        for _ in range(instances_per_cell):
            problem = MQOProblem.random(
                num_queries, plans_per_query,
                seed=int(rng.integers(2 ** 31)),
            )
            start = time.perf_counter()
            _, exact_cost = solve_mqo_exhaustive(problem)
            exhaustive_times.append(time.perf_counter() - start)
            _, greedy_cost = solve_mqo_greedy(problem)
            annealed_cost = pipeline.optimize(problem).cost
            greedy_ratios.append(greedy_cost / exact_cost)
            annealed_ratios.append(annealed_cost / exact_cost)
        rows.append({
            "queries": num_queries,
            "plan_space": plans_per_query ** num_queries,
            "greedy_vs_exact": geometric_mean(greedy_ratios),
            "annealed_vs_exact": geometric_mean(annealed_ratios),
            "exhaustive_seconds": float(np.mean(exhaustive_times)),
        })
    return ExperimentResult(
        "E9", "MQO (cost ratios to exhaustive optimum)",
        ["queries", "plan_space", "greedy_vs_exact", "annealed_vs_exact",
         "exhaustive_seconds"],
        rows,
        notes="exhaustive time grows with plans^queries; annealing "
              "stays near 1.0 at fixed budget",
    )


@register("E10", "Index selection under a storage budget")
def index_selection(candidate_counts: Sequence[int] = (10, 14, 18),
                    instances_per_cell: int = 3,
                    seed: int = 0, solver: str = "sa") -> ExperimentResult:
    """Benefit recovered (fraction of the exact optimum) by greedy and
    QUBO+SA, with interacting (overlapping) indexes. The annealing arm
    runs through the staged optimization pipeline; the plan's
    ``benefit`` estimate equals the direct
    ``solve_index_selection_annealing`` return bit-for-bit."""
    from ..pipeline import OptimizationPipeline

    pipeline = OptimizationPipeline("indexsel", solve=solver)
    rng = np.random.default_rng(seed)
    rows = []
    for count in candidate_counts:
        greedy_fractions: List[float] = []
        annealed_fractions: List[float] = []
        for _ in range(instances_per_cell):
            problem = IndexSelectionProblem.random(
                count, seed=int(rng.integers(2 ** 31))
            )
            _, exact_benefit = solve_index_selection_exact(problem)
            _, greedy_benefit = solve_index_selection_greedy(problem)
            annealed_benefit = pipeline.optimize(
                problem
            ).estimates["benefit"]
            if exact_benefit > 0:
                greedy_fractions.append(greedy_benefit / exact_benefit)
                annealed_fractions.append(annealed_benefit / exact_benefit)
        rows.append({
            "candidates": count,
            "greedy_fraction_of_optimum": float(np.mean(greedy_fractions)),
            "annealed_fraction_of_optimum": float(
                np.mean(annealed_fractions)
            ),
        })
    return ExperimentResult(
        "E10", "Index selection (fraction of exact benefit)",
        ["candidates", "greedy_fraction_of_optimum",
         "annealed_fraction_of_optimum"],
        rows,
        notes="1.0 = optimal; interactions are what trip up greedy",
    )


@register("E11", "Transaction scheduling: annealed colouring vs baselines")
def transaction_scheduling(transaction_counts: Sequence[int] = (8, 12, 16),
                           conflict_levels: Sequence[int] = (10, 20),
                           seed: int = 0,
                           solver: str = "sa") -> ExperimentResult:
    """Makespan (conflict-free batches) of FCFS, greedy colouring and
    the annealed QUBO colouring, at two conflict densities (controlled
    through the object-pool size).

    The annealing arm reproduces
    :func:`repro.db.txsched.minimum_slots_annealing` through the
    pipeline: linear scan upward from one slot, one fixed-slot
    ``txsched`` pipeline per count, greedy fallback when no colouring
    is valid — identical schedules at the module's default config."""
    from ..pipeline import OptimizationPipeline, TransactionSchedulingFormulation

    rng = np.random.default_rng(seed)
    rows = []
    for num_transactions in transaction_counts:
        for num_objects in conflict_levels:
            problem = TransactionSchedulingProblem.random(
                num_transactions, num_objects=num_objects,
                seed=int(rng.integers(2 ** 31)),
            )
            fcfs = schedule_fcfs(problem)
            greedy = schedule_greedy_first_fit(problem)
            annealed = greedy
            for k in range(1, problem.makespan(greedy) + 1):
                plan = OptimizationPipeline(
                    TransactionSchedulingFormulation(num_slots=k),
                    solve=solver,
                ).optimize(problem)
                if plan.feasible:
                    annealed = plan.solution
                    break
            rows.append({
                "transactions": num_transactions,
                "objects": num_objects,
                "conflicts": len(problem.conflicts),
                "fcfs_slots": problem.makespan(fcfs),
                "greedy_slots": problem.makespan(greedy),
                "annealed_slots": problem.makespan(annealed),
                "annealed_valid": problem.is_valid(annealed),
            })
    return ExperimentResult(
        "E11", "Transaction scheduling (slots = makespan, lower wins)",
        ["transactions", "objects", "conflicts", "fcfs_slots",
         "greedy_slots", "annealed_slots", "annealed_valid"],
        rows,
        notes="fewer objects = denser conflicts = more slots needed",
    )


@register("E12", "QAOA approximation ratio improves with depth")
def qaoa_depth(depths: Sequence[int] = (1, 2, 3, 4),
               num_spins: int = 8, instances: int = 3,
               seed: int = 0) -> ExperimentResult:
    """MaxCut-style random Ising instances: expectation-level
    approximation ratio and ground-state sampling probability vs p."""
    rng = np.random.default_rng(seed)
    models = [
        IsingModel.random(num_spins, density=0.5,
                          seed=int(rng.integers(2 ** 31)))
        for _ in range(instances)
    ]
    optima = [solve_ising_exact(m)[1] for m in models]
    rows = []
    for p in depths:
        ratios: List[float] = []
        hit_rates: List[float] = []
        for model, optimum in zip(models, optima):
            solver = QAOASolver(p=p, restarts=2, shots=256,
                                seed=int(rng.integers(2 ** 31)))
            result = solver.solve(model)
            ratios.append(result.approximation_ratio)
            hit_rates.append(
                result.samples.success_probability(optimum)
            )
        rows.append({
            "p": p,
            "approximation_ratio": float(np.mean(ratios)),
            "ground_state_hit_rate": float(np.mean(hit_rates)),
        })
    return ExperimentResult(
        "E12", "QAOA depth sweep (random Ising instances)",
        ["p", "approximation_ratio", "ground_state_hit_rate"],
        rows,
        notes="both columns should rise with p",
    )


def weak_strong_cluster_instance(cluster_size: int = 4,
                                 strong_field: float = 1.0,
                                 weak_field: Optional[float] = None,
                                 gap: float = 1.0) -> IsingModel:
    """The Denchev-style weak-strong cluster pair.

    Two ferromagnetic clusters joined by a ferromagnetic bridge. The
    'strong' cluster is pinned to +1 by a field of -strong_field; the
    'weak' cluster feels +weak_field pulling it to -1 against the
    bridge. With ``2 * weak_field * k > 2`` the global optimum has the
    weak cluster flipped to -1 (paying the bridge) while the fully
    aligned state is a *local* optimum. The two minima are separated
    by a tall, thin barrier — the whole weak cluster must flip
    together, breaking ``O(k)`` internal couplings along the way.
    Thermal annealing must climb that barrier; quantum tunnelling
    threads it — the canonical SQA-beats-SA setup.

    By default ``weak_field`` is chosen as ``(2 + gap) / (2 k)`` so the
    energy gap between the two minima stays fixed at ``gap`` while the
    barrier height grows linearly with the cluster size ``k`` — the
    regime where the thermal/quantum separation is cleanest.
    """
    if weak_field is None:
        weak_field = (2.0 + gap) / (2.0 * cluster_size)
    n = 2 * cluster_size
    h = {i: weak_field for i in range(cluster_size)}
    h.update({i: -strong_field for i in range(cluster_size, n)})
    j: Dict = {}
    for cluster_start in (0, cluster_size):
        members = range(cluster_start, cluster_start + cluster_size)
        members = list(members)
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1:]:
                j[(a, b)] = -1.0
    j[(0, cluster_size)] = -1.0  # bridge
    return IsingModel(n, h=h, j=j)


@register("E14", "SQA beats thermal SA on tall-thin-barrier instances")
def sa_vs_sqa(cluster_sizes: Sequence[int] = (3, 4, 5, 6, 7),
              num_reads: int = 30, num_sweeps: int = 300,
              trotter_slices: Sequence[int] = (20,),
              seed: int = 0) -> ExperimentResult:
    """Ground-state hit probability of SA vs SQA on weak-strong
    cluster instances, where the global optimum hides behind a barrier
    whose height grows with the cluster size."""
    rows = []
    rng = np.random.default_rng(seed)
    for size in cluster_sizes:
        model = weak_strong_cluster_instance(size)
        _, optimum = solve_ising_exact(model)
        sa = SimulatedAnnealingSolver(
            num_sweeps=num_sweeps, num_reads=num_reads,
            seed=int(rng.integers(2 ** 31)),
        ).solve(model)
        pt = ParallelTemperingSolver(
            num_replicas=8, num_sweeps=num_sweeps,
            num_reads=num_reads,
            seed=int(rng.integers(2 ** 31)),
        ).solve(model)
        row: Dict[str, object] = {
            "cluster_size": size,
            "spins": 2 * size,
            "sa_hit_rate": sa.success_probability(optimum),
            "pt_hit_rate": pt.success_probability(optimum),
        }
        for slices in trotter_slices:
            sqa = SimulatedQuantumAnnealingSolver(
                num_sweeps=num_sweeps, num_reads=num_reads,
                num_slices=slices,
                seed=int(rng.integers(2 ** 31)),
            ).solve(model)
            row[f"sqa_hit_rate_P{slices}"] = sqa.success_probability(
                optimum
            )
        rows.append(row)
    columns = ["cluster_size", "spins", "sa_hit_rate", "pt_hit_rate"]
    columns += [f"sqa_hit_rate_P{p}" for p in trotter_slices]
    return ExperimentResult(
        "E14", "SA vs SQA on weak-strong clusters (hit rate)",
        columns, rows,
        notes="expected crossover: single-temperature SA falls off as "
              "the barrier grows while SQA's worldline moves keep "
              "tunnelling. Parallel tempering (8 replicas = 8x the "
              "sweep work) crosses the barrier thermally and is shown "
              "as the honest strong-classical reference.",
    )


@register("E15", "Learned (RL) join ordering vs the other optimizer families")
def rl_join_order(topologies: Sequence[str] = ("chain", "star", "cycle"),
                  num_relations: int = 6, instances_per_cell: int = 3,
                  episodes: int = 1500,
                  seed: int = 0, solver: str = "sa") -> ExperimentResult:
    """Tabular Q-learning against greedy, annealed-QUBO and the exact
    left-deep optimum — the tutorial's 'new techniques' comparison of
    optimizer families on one playing field."""
    from ..db.joinorder import exhaustive_left_deep
    from ..db.rl_optimizer import solve_join_order_rl

    rng = np.random.default_rng(seed)
    rows = []
    for topology in topologies:
        rl_ratios: List[float] = []
        greedy_ratios: List[float] = []
        annealed_ratios: List[float] = []
        for _ in range(instances_per_cell):
            graph = random_join_graph(
                num_relations, topology,
                seed=int(rng.integers(2 ** 31)),
            )
            _, optimum = exhaustive_left_deep(graph)
            _, rl_cost = solve_join_order_rl(
                graph, episodes=episodes,
                seed=int(rng.integers(2 ** 31)),
            )
            _, greedy_cost = greedy_goo(graph)
            decoded = solve_join_order_annealing(
                graph,
                solver=solver,
                config=SolverConfig(
                    num_sweeps=400, num_reads=20,
                    seed=int(rng.integers(2 ** 31)),
                ),
            )
            rl_ratios.append(rl_cost / optimum)
            greedy_ratios.append(greedy_cost / optimum)
            annealed_ratios.append(decoded.cost / optimum)
        rows.append({
            "topology": topology,
            "rl_vs_optimal": geometric_mean(rl_ratios),
            "greedy_vs_optimal": geometric_mean(greedy_ratios),
            "annealed_vs_optimal": geometric_mean(annealed_ratios),
        })
    return ExperimentResult(
        "E15", "RL join ordering (cost ratios to left-deep optimum)",
        ["topology", "rl_vs_optimal", "greedy_vs_optimal",
         "annealed_vs_optimal"],
        rows,
        notes="greedy builds bushy trees so its ratio can dip below 1; "
              "RL and annealing are restricted to left-deep plans",
    )


@register("E19", "Data partitioning: annealed balanced min-cut vs "
                 "Kernighan-Lin")
def data_partitioning(fragment_counts: Sequence[int] = (8, 12, 16),
                      instances_per_cell: int = 3,
                      seed: int = 0,
                      solver: str = "sa") -> ExperimentResult:
    """Cut weight and shard imbalance of the annealed Ising partition
    vs Kernighan-Lin bisection, against the exact balanced optimum.

    KL balances fragment *counts*; the Ising objective balances
    *sizes* — on heterogeneous fragments that difference is the story.
    The annealed arm runs through the staged optimization pipeline
    (identical assignments to the direct ``partition_annealing`` call
    under the module's default config).
    """
    from ..db.partitioning import (
        PartitioningProblem,
        partition_exact,
        partition_kernighan_lin,
    )
    from ..pipeline import OptimizationPipeline

    pipeline = OptimizationPipeline("partitioning", solve=solver)
    rng = np.random.default_rng(seed)
    rows = []
    for count in fragment_counts:
        annealed_cuts: List[float] = []
        kl_cuts: List[float] = []
        annealed_imbalances: List[float] = []
        kl_imbalances: List[float] = []
        exact_cuts: List[float] = []
        exact_imbalances: List[float] = []
        for _ in range(instances_per_cell):
            problem = PartitioningProblem.random(
                count, seed=int(rng.integers(2 ** 31))
            )
            total_size = sum(problem.sizes)
            if count <= 16:
                exact_assignment, _ = partition_exact(problem)
                exact_cuts.append(problem.cut_weight(exact_assignment))
                exact_imbalances.append(
                    problem.imbalance(exact_assignment) / total_size
                )
            annealed = pipeline.optimize(problem).solution
            kl = partition_kernighan_lin(
                problem, seed=int(rng.integers(2 ** 31))
            )
            annealed_cuts.append(problem.cut_weight(annealed))
            kl_cuts.append(problem.cut_weight(kl))
            annealed_imbalances.append(
                problem.imbalance(annealed) / total_size
            )
            kl_imbalances.append(problem.imbalance(kl) / total_size)
        rows.append({
            "fragments": count,
            "exact_cut": float(np.mean(exact_cuts)),
            "annealed_cut": float(np.mean(annealed_cuts)),
            "kl_cut": float(np.mean(kl_cuts)),
            "exact_imbalance": float(np.mean(exact_imbalances)),
            "annealed_imbalance": float(np.mean(annealed_imbalances)),
            "kl_imbalance": float(np.mean(kl_imbalances)),
        })
    return ExperimentResult(
        "E19", "Data partitioning (cut weight / normalized imbalance)",
        ["fragments", "exact_cut", "annealed_cut", "kl_cut",
         "exact_imbalance", "annealed_imbalance", "kl_imbalance"],
        rows,
        notes="imbalance is |size difference| / total size; KL "
              "balances counts, not sizes, hence its larger imbalance",
    )
