"""Foundations experiments: E1 (simulator scaling), E4 (barren
plateaus), E5 (encoding comparison), E6 (noise impact), E7 (optimizer
comparison under shot noise)."""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..datasets import make_moons, minmax_scale, train_test_split
from ..qml.barren import exponential_decay_rate, variance_scan
from ..qml.encoding import (
    AmplitudeEncoding,
    AngleEncoding,
    IQPEncoding,
)
from ..qml.models import VariationalClassifier
from ..qml.ansatz import hardware_efficient_ansatz
from ..qml.gradients import expectation_function
from ..qml.optimizers import SPSA, Adam, GradientDescent
from ..quantum.density import DensityMatrixSimulator
from ..quantum.measurement import expectation_with_shots
from ..quantum.noise import NoiseModel
from ..quantum.operators import PauliSum, single_z
from ..quantum.random_circuits import random_layered_circuit
from ..quantum.statevector import StatevectorSimulator
from .harness import ExperimentResult, register


@register("E1", "Statevector simulation cost grows exponentially in qubits")
def simulator_scaling(qubit_range: Sequence[int] = tuple(range(2, 13)),
                      depth: int = 10, repeats: int = 3,
                      seed: int = 0) -> ExperimentResult:
    """Wall-clock per random layered circuit vs qubit count.

    The claim: time per circuit scales ~2**n, which is why classical
    simulation caps out and hardware matters.
    """
    sim = StatevectorSimulator()
    rows = []
    previous: Optional[float] = None
    for n in qubit_range:
        circuit = random_layered_circuit(n, depth, seed=seed)
        start = time.perf_counter()
        for _ in range(repeats):
            sim.run(circuit)
        elapsed = (time.perf_counter() - start) / repeats
        rows.append({
            "qubits": n,
            "gates": len(circuit),
            "seconds_per_run": elapsed,
            "ratio_to_previous": (elapsed / previous) if previous else 1.0,
            "amplitudes": 2 ** n,
        })
        previous = elapsed
    return ExperimentResult(
        "E1", "Simulator scaling",
        ["qubits", "gates", "seconds_per_run", "ratio_to_previous",
         "amplitudes"],
        rows,
        notes="ratio_to_previous -> ~2 once the 2**n state dominates",
    )


@register("E4", "Barren plateaus: gradient variance decays exponentially")
def barren_plateaus(qubit_range: Sequence[int] = (2, 4, 6, 8, 10),
                    depth: int = 4, num_samples: int = 50,
                    seed: int = 0) -> ExperimentResult:
    """Gradient variance vs qubit count for random HEA circuits."""
    scan = variance_scan(list(qubit_range), depth=depth,
                         num_samples=num_samples, seed=seed)
    rows = [
        {
            "qubits": s.num_qubits,
            "gradient_variance": s.variance,
            "gradient_mean": s.mean,
        }
        for s in scan
    ]
    rate = exponential_decay_rate(scan)
    return ExperimentResult(
        "E4", "Barren plateaus",
        ["qubits", "gradient_variance", "gradient_mean"],
        rows,
        notes=f"fitted decay rate {rate:.3f} per qubit "
              "(positive = exponential suppression)",
    )


@register("E5", "Data encoding choice drives classifier accuracy")
def encoding_comparison(n_train: int = 60, n_test: int = 40,
                        epochs: int = 25, seed: int = 0) -> ExperimentResult:
    """Same VQC budget, four encodings, moons data."""
    X, y = make_moons(n_train + n_test, noise=0.15, seed=seed)
    X = minmax_scale(X)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=n_test / (n_train + n_test), seed=seed
    )
    encodings = {
        "angle": AngleEncoding(2, scaling=np.pi),
        "angle+entangle": AngleEncoding(2, scaling=np.pi, entangle=True),
        "iqp_depth2": IQPEncoding(2, depth=2, scaling=np.pi),
        "amplitude": AmplitudeEncoding(2),
        "reuploading": AngleEncoding(2, scaling=np.pi),
    }
    rows = []
    for name, encoding in encodings.items():
        reuploads = 2 if name == "reuploading" else 1
        clf = VariationalClassifier(
            encoding, num_layers=2, epochs=epochs,
            data_reuploads=reuploads, seed=seed,
        )
        clf.fit(X_train, y_train)
        rows.append({
            "encoding": name,
            "train_accuracy": clf.score(X_train, y_train),
            "test_accuracy": clf.score(X_test, y_test),
            "num_weights": clf.num_weights,
        })
    return ExperimentResult(
        "E5", "Encoding comparison (moons)",
        ["encoding", "train_accuracy", "test_accuracy", "num_weights"],
        rows,
    )


@register("E6", "Depolarizing noise degrades VQC accuracy")
def noise_impact(error_rates: Sequence[float] = (0.0, 0.01, 0.03, 0.05,
                                                 0.1, 0.2),
                 n_samples: int = 60, epochs: int = 25,
                 seed: int = 0) -> ExperimentResult:
    """Train noiselessly, evaluate under increasing gate noise.

    This isolates inference-time noise, the dominant effect on NISQ
    hardware for models trained in simulation.
    """
    X, y = make_moons(n_samples, noise=0.1, seed=seed)
    X = minmax_scale(X)
    clf = VariationalClassifier(2, num_layers=2, epochs=epochs, seed=seed)
    clf.fit(X, y)
    observable = PauliSum([single_z(0, 2)])
    classes = clf.classes_
    rows = []
    for rate in error_rates:
        noise = NoiseModel.depolarizing(rate) if rate > 0 else None
        sim = DensityMatrixSimulator(noise_model=noise)
        correct = 0
        for features, label in zip(X, y):
            circuit = clf._full_circuit(features).bind(
                dict(zip(clf._weight_params, clf.weights_))
            )
            output = sim.expectation(circuit, observable)
            predicted = classes[1] if output >= 0 else classes[0]
            correct += int(predicted == label)
        rows.append({
            "error_rate": rate,
            "accuracy": correct / len(y),
        })
    return ExperimentResult(
        "E6", "Noise impact on a trained VQC",
        ["error_rate", "accuracy"],
        rows,
        notes="graceful degradation, collapsing to chance at high rates",
    )


@register("E7", "Optimizer comparison under shot noise")
def optimizer_comparison(shots: int = 128, eval_budget: int = 600,
                         num_qubits: int = 3,
                         seed: int = 0) -> ExperimentResult:
    """Minimize a VQC energy with GD / Adam / SPSA using shot-based
    expectation values, at a *fixed total circuit-evaluation budget*.

    SPSA spends 2 evaluations per step regardless of dimension, while
    parameter-shift gradients cost ``2 * P + 1``; at equal hardware
    budget SPSA takes many more steps — the reason it is the default
    on real devices.
    """
    circuit, params = hardware_efficient_ansatz(num_qubits, 2)
    observable = PauliSum([single_z(0, num_qubits)])
    exact = expectation_function(circuit, observable)
    rng = np.random.default_rng(seed)

    def noisy(values):
        bound = circuit.bind(dict(zip(params, values)))
        return expectation_with_shots(bound, observable, shots, rng=rng)

    def noisy_gradient(values):
        # Shot-noisy parameter shift (the hardware recipe).
        grad = np.zeros(len(values))
        for k in range(len(values)):
            shifted = np.array(values, dtype=float)
            shifted[k] += np.pi / 2
            plus = noisy(shifted)
            shifted[k] -= np.pi
            minus = noisy(shifted)
            grad[k] = 0.5 * (plus - minus)
        return grad

    x0 = rng.uniform(0, 2 * np.pi, size=len(params))
    gradient_evals_per_step = 2 * len(params) + 1
    optimizers = {
        "gd": (GradientDescent(learning_rate=0.2), noisy_gradient,
               gradient_evals_per_step),
        "adam": (Adam(learning_rate=0.2), noisy_gradient,
                 gradient_evals_per_step),
        "spsa": (SPSA(a=0.4, c=0.2, seed=seed), None, 2),
    }
    rows = []
    for name, (optimizer, gradient, per_step) in optimizers.items():
        steps = max(1, eval_budget // per_step)
        result = optimizer.minimize(noisy, x0.copy(), gradient=gradient,
                                    max_iter=steps)
        rows.append({
            "optimizer": name,
            "final_energy": exact(result.x),
            "steps": steps,
            "circuit_evals_per_step": per_step,
            "total_circuit_evals": per_step * steps,
        })
    return ExperimentResult(
        "E7", "Optimizers under shot noise (fixed evaluation budget)",
        ["optimizer", "final_energy", "steps", "circuit_evals_per_step",
         "total_circuit_evals"],
        rows,
        notes="lower final_energy is better; floor is -1.0. All rows "
              "spend (about) the same number of circuit executions.",
    )


@register("E16", "Amplitude estimation converges quadratically faster "
                 "than Monte Carlo sampling")
def amplitude_estimation_scaling(eval_qubit_range: Sequence[int] = (2, 3,
                                                                    4, 5,
                                                                    6, 7),
                                 target_amplitude: float = 0.3,
                                 mc_trials: int = 200,
                                 seed: int = 0) -> ExperimentResult:
    """Estimation error vs oracle budget for QAE and classical
    sampling on the same preparation circuit.

    QAE with m evaluation qubits spends ``2**m - 1`` (controlled)
    Grover calls and achieves additive error ~``pi / 2**m``; classical
    sampling with the same number of circuit shots has RMS error
    ``sqrt(a (1 - a) / shots)`` — error ~ 1/budget vs 1/sqrt(budget),
    the canonical quadratic speedup for aggregate estimation.
    """
    import math as _math

    from ..quantum.amplitude_estimation import (
        amplitude_estimation,
        classical_sample_estimate,
    )
    from ..quantum.circuit import Circuit

    theta = 2.0 * _math.asin(_math.sqrt(target_amplitude))
    preparation = Circuit(1).ry(theta, 0)
    rng = np.random.default_rng(seed)
    rows = []
    for m in eval_qubit_range:
        qae = amplitude_estimation(preparation, [1], num_eval_qubits=m)
        budget = qae.grover_calls
        mc_errors = []
        for _ in range(mc_trials):
            estimate = classical_sample_estimate(
                preparation, [1], shots=max(1, budget),
                seed=int(rng.integers(2 ** 31)),
            )
            mc_errors.append((estimate - target_amplitude) ** 2)
        rows.append({
            "oracle_calls": budget,
            "qae_error": qae.error,
            "mc_rms_error": float(np.sqrt(np.mean(mc_errors))),
        })
    return ExperimentResult(
        "E16", "Amplitude estimation vs Monte Carlo (same oracle budget)",
        ["oracle_calls", "qae_error", "mc_rms_error"],
        rows,
        notes="qae_error falls ~1/budget, mc_rms_error ~1/sqrt(budget); "
              "the gap widens with budget",
    )


@register("E20", "Zero-noise extrapolation recovers noisy expectations")
def zne_recovery(error_rates: Sequence[float] = (0.005, 0.01, 0.02,
                                                 0.04),
                 depth: int = 3, seed: int = 0) -> ExperimentResult:
    """Error of the raw noisy expectation vs the ZNE-mitigated one,
    across gate error rates — the NISQ error-mitigation workflow run
    against this library's own noise models."""
    from ..quantum.circuit import Circuit
    from ..quantum.mitigation import zero_noise_extrapolation
    from ..quantum.operators import PauliString

    circuit = Circuit(2)
    for _ in range(depth):
        circuit.h(0).cx(0, 1).ry(0.3, 0).rz(0.2, 1)
    observable = PauliString("ZZ")
    ideal = StatevectorSimulator().expectation(circuit, observable)
    rows = []
    for rate in error_rates:
        noise = NoiseModel.depolarizing(rate)
        result = zero_noise_extrapolation(
            circuit, observable, noise,
            scale_factors=(1.0, 3.0, 5.0), order=2,
        )
        rows.append({
            "error_rate": rate,
            "noisy_error": abs(result.noisy_value - ideal),
            "mitigated_error": abs(result.mitigated_value - ideal),
            "improvement_factor": (
                abs(result.noisy_value - ideal)
                / max(abs(result.mitigated_value - ideal), 1e-12)
            ),
        })
    return ExperimentResult(
        "E20", "ZNE recovery (|error| vs ideal <ZZ>)",
        ["error_rate", "noisy_error", "mitigated_error",
         "improvement_factor"],
        rows,
        notes="mitigated error should sit well below the raw noisy "
              "error until the noise is too strong to extrapolate",
    )
