"""Experiment harness: every DESIGN.md experiment as a runnable.

Usage::

    from repro.experiments import run_experiment, format_table
    print(format_table(run_experiment("E8")))
"""

from .harness import (
    ExperimentResult,
    available_experiments,
    format_table,
    geometric_mean,
    register,
    run_experiment,
    to_csv,
)

# Importing the runner modules registers all experiments eagerly so
# available_experiments() is complete right after import.
from . import ablations, foundations, learning, optimization  # noqa: E402,F401

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "format_table",
    "geometric_mean",
    "register",
    "run_experiment",
    "to_csv",
]
