"""Ablations of the design choices DESIGN.md flags.

* A1 — QUBO penalty-weight scale around the analytic rule.
* A2 — join-order decode path: raw / repair / repair + 2-opt polish.
* A3 — SQA Trotter-slice count on a tall-barrier instance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..annealing import (
    SimulatedQuantumAnnealingSolver,
    solve_ising_exact,
)
from ..compile import SolverConfig
from ..db.joinorder import exhaustive_left_deep
from ..db.workloads import random_join_graph
from .harness import (
    ExperimentResult,
    geometric_mean,
    register,
    run_pipeline,
)


@register("A1", "Penalty-weight ablation for the join-order QUBO")
def penalty_weight_ablation(scales: Sequence[float] = (0.01, 0.05, 0.25,
                                                       1.0, 4.0, 16.0),
                            num_relations: int = 5, instances: int = 4,
                            seed: int = 0,
                            solver: str = "sa",
                            workers: int = 0) -> ExperimentResult:
    """Sweep the penalty multiplier around the analytic weight.

    Reports the fraction of annealer reads whose one-hot constraints
    hold without repair, and the decoded cost ratio to the optimal
    left-deep plan. Too small -> invalid encodings; too large ->
    penalty barriers freeze the annealer. ``workers > 0`` runs each
    scale's per-graph solves concurrently through the solve service
    (same seeds, identical rows). Each scale is a
    ``JoinOrderFormulation(penalty_scale=...)`` pipeline with the
    polish disabled, so the decoded cost is the annealer's alone; the
    per-read validity fractions come off the plan's retained
    :class:`~repro.compile.SolveResult`.
    """
    from ..pipeline import JoinOrderFormulation

    rng = np.random.default_rng(seed)
    graphs = [
        random_join_graph(num_relations, "star",
                          seed=int(rng.integers(2 ** 31)))
        for _ in range(instances)
    ]
    optima = [exhaustive_left_deep(g)[1] for g in graphs]
    rows = []
    for scale in scales:
        valid_fractions: List[float] = []
        ratios: List[float] = []
        configs = [
            SolverConfig(num_sweeps=300, num_reads=20,
                         seed=int(rng.integers(2 ** 31)))
            for _ in graphs
        ]
        plans = run_pipeline(
            graphs,
            JoinOrderFormulation(penalty_scale=scale, polish=False),
            solve=solver,
            configs=configs,
            workers=workers,
        )
        for plan, optimum in zip(plans, optima):
            result = plan.result
            valid_fractions.append(
                sum(d.valid for d in result.solutions)
                / len(result.solutions)
            )
            ratios.append(plan.cost / optimum)
        rows.append({
            "penalty_scale": scale,
            "valid_read_fraction": float(np.mean(valid_fractions)),
            "cost_vs_optimal": geometric_mean(ratios),
        })
    return ExperimentResult(
        "A1", "Join-order QUBO penalty-weight ablation",
        ["penalty_scale", "valid_read_fraction", "cost_vs_optimal"],
        rows,
        notes="scale 1.0 is the analytic rule; below ~0.05x the "
              "one-hot encodings break (valid fraction collapses). "
              "Oversized weights stay benign here because the "
              "auto-scaled beta schedule absorbs them — itself a "
              "finding this ablation documents.",
    )


@register("A2", "Join-order decode-path ablation")
def decode_path_ablation(num_relations: int = 7, instances: int = 5,
                         topologies: Sequence[str] = ("star", "cycle"),
                         seed: int = 0,
                         solver: str = "sa") -> ExperimentResult:
    """Decode alone vs decode + 2-opt polish vs 2-opt from random.

    Quantifies how much of the hybrid pipeline's quality comes from
    the annealer versus the classical polish, per topology. The
    honest finding this ablation documents: on star/chain graphs the
    annealer's decoded order is already near-optimal, while on cycle
    graphs the permutation QUBO is hard for single-flip annealing and
    the classical polish carries most of the final quality.

    One polishing pipeline run yields both arms: the raw decode is the
    retained solve result's best read, the polished order is the
    assembled plan.
    """
    from ..db.cost import left_deep_cost
    from ..db.joinorder import two_opt_polish
    from ..pipeline import JoinOrderFormulation, OptimizationPipeline

    pipeline = OptimizationPipeline(JoinOrderFormulation(polish=True),
                                    solve=solver)
    rng = np.random.default_rng(seed)
    rows = []
    for topology in topologies:
        accumulator: Dict[str, List[float]] = {
            "repair_only": [], "repair_plus_polish": [],
            "polish_of_random": [],
        }
        for _ in range(instances):
            graph = random_join_graph(num_relations, topology,
                                      seed=int(rng.integers(2 ** 31)))
            _, optimum = exhaustive_left_deep(graph)
            plan = pipeline.optimize(
                graph,
                config=SolverConfig(
                    num_sweeps=300, num_reads=20,
                    seed=int(rng.integers(2 ** 31)),
                ),
            )
            best = plan.result.solution
            accumulator["repair_only"].append(best.cost / optimum)
            accumulator["repair_plus_polish"].append(
                plan.cost / optimum
            )
            random_order = list(rng.permutation(num_relations))
            accumulator["polish_of_random"].append(
                left_deep_cost(graph,
                               two_opt_polish(graph, random_order))
                / optimum
            )
        for name, values in accumulator.items():
            rows.append({
                "topology": topology,
                "decode_path": name,
                "cost_vs_optimal": geometric_mean(values),
            })
    return ExperimentResult(
        "A2", "Join-order decode-path ablation",
        ["topology", "decode_path", "cost_vs_optimal"],
        rows,
        notes="polish contribution is topology-dependent; 2-opt alone "
              "is a strong heuristic at this scale",
    )


@register("A3", "SQA Trotter-slice ablation")
def trotter_slice_ablation(slice_counts: Sequence[int] = (2, 5, 10, 20,
                                                          40),
                           cluster_size: int = 6, num_reads: int = 30,
                           num_sweeps: int = 300,
                           seed: int = 0) -> ExperimentResult:
    """Ground-state hit rate vs number of Trotter slices P on a
    tall-barrier weak-strong instance. Small P approximates thermal
    dynamics; the quantum advantage needs enough imaginary-time
    resolution."""
    from .optimization import weak_strong_cluster_instance

    model = weak_strong_cluster_instance(cluster_size)
    _, optimum = solve_ising_exact(model)
    rng = np.random.default_rng(seed)
    rows = []
    for slices in slice_counts:
        solver = SimulatedQuantumAnnealingSolver(
            num_sweeps=num_sweeps, num_reads=num_reads,
            num_slices=slices, seed=int(rng.integers(2 ** 31)),
        )
        samples = solver.solve(model)
        rows.append({
            "trotter_slices": slices,
            "hit_rate": samples.success_probability(optimum),
        })
    return ExperimentResult(
        "A3", "SQA Trotter-slice ablation (weak-strong cluster)",
        ["trotter_slices", "hit_rate"],
        rows,
        notes="hit rate rises with P, peaks, then degrades: at a "
              "fixed sweep budget very large P dilutes the per-slice "
              "dynamics (each slice gets beta/P), so there is an "
              "optimal Trotter resolution",
    )
