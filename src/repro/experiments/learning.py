"""Supervised-learning experiments: E2 (VQC vs classical baselines),
E3 (quantum kernels vs classical kernels), E13 (learned cardinality
estimation)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..baselines import MLP, SVM, LinearRegression, LogisticRegression
from ..baselines.kernels import median_heuristic_gamma
from ..datasets import (
    make_circles,
    make_moons,
    make_parity,
    make_xor,
    minmax_scale,
    train_test_split,
)
from ..db.cardinality import (
    evaluate_q_errors,
    histogram_estimates,
    make_cardinality_dataset,
)
from ..qml.encoding import AngleEncoding, IQPEncoding
from ..qml.kernels import (
    FidelityQuantumKernel,
    QuantumKernelClassifier,
    kernel_target_alignment,
)
from ..qml.models import VariationalClassifier, VariationalRegressor
from .harness import ExperimentResult, register

_DATASETS = {
    "moons": lambda n, seed: make_moons(n, noise=0.15, seed=seed),
    "circles": lambda n, seed: make_circles(n, noise=0.05, seed=seed),
    "xor": lambda n, seed: make_xor(n, noise=0.05, seed=seed),
}


@register("E2", "VQC classifiers vs classical baselines")
def vqc_vs_classical(datasets: Sequence[str] = ("moons", "circles", "xor"),
                     n_samples: int = 100, epochs: int = 25,
                     seed: int = 0) -> ExperimentResult:
    """Test accuracy of the VQC against logistic regression, RBF-SVM
    and a small MLP on three nonlinear 2-D tasks."""
    rows = []
    for name in datasets:
        if name not in _DATASETS:
            raise KeyError(f"unknown dataset {name!r}")
        X, y = _DATASETS[name](n_samples, seed)
        X = minmax_scale(X)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=0.35, seed=seed
        )
        vqc = VariationalClassifier(
            AngleEncoding(2, scaling=np.pi),
            num_layers=2, epochs=epochs, seed=seed,
        )
        vqc.fit(X_train, y_train)
        logistic = LogisticRegression(max_iter=400).fit(X_train, y_train)
        svm = SVM(kernel="rbf", gamma=median_heuristic_gamma(X_train) * 4,
                  C=5.0, seed=seed).fit(X_train, y_train)
        mlp = MLP(hidden=(16,), max_iter=300, learning_rate=0.02,
                  seed=seed).fit(X_train, y_train)
        rows.append({
            "dataset": name,
            "vqc": vqc.score(X_test, y_test),
            "logistic": logistic.score(X_test, y_test),
            "svm_rbf": svm.score(X_test, y_test),
            "mlp": mlp.score(X_test, y_test),
        })
    return ExperimentResult(
        "E2", "Test accuracy: VQC vs classical",
        ["dataset", "vqc", "logistic", "svm_rbf", "mlp"],
        rows,
        notes="VQC should beat logistic on nonlinear tasks and sit in "
              "the same band as SVM/MLP",
    )


@register("E3", "Quantum kernels: alignment and accuracy vs depth")
def quantum_kernel_depth(depths: Sequence[int] = (1, 2, 3),
                         n_samples: int = 80,
                         seed: int = 0) -> ExperimentResult:
    """Fidelity-kernel SVM accuracy on circles + parity as IQP feature
    map depth grows, against linear- and RBF-kernel SVMs."""
    rows = []
    for dataset_name in ("circles", "parity"):
        if dataset_name == "circles":
            X, y = make_circles(n_samples, noise=0.05, seed=seed)
            X = minmax_scale(X, 0.0, np.pi)
        else:
            X, y = make_parity(4, n_samples=n_samples, seed=seed)
            X = X * np.pi
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_fraction=0.3, seed=seed
        )
        linear = SVM(kernel="linear", C=5.0, seed=seed)
        linear.fit(X_train, y_train)
        rbf = SVM(kernel="rbf", gamma=median_heuristic_gamma(X_train),
                  C=5.0, seed=seed).fit(X_train, y_train)
        row: Dict[str, object] = {
            "dataset": dataset_name,
            "svm_linear": linear.score(X_test, y_test),
            "svm_rbf": rbf.score(X_test, y_test),
        }
        for depth in depths:
            kernel = FidelityQuantumKernel(
                IQPEncoding(X.shape[1], depth=depth)
            )
            clf = QuantumKernelClassifier(kernel=kernel, C=5.0, seed=seed)
            clf.fit(X_train, y_train)
            row[f"qkernel_d{depth}"] = clf.score(X_test, y_test)
            row[f"alignment_d{depth}"] = kernel_target_alignment(
                kernel(X_train), y_train
            )
        rows.append(row)
    columns = ["dataset", "svm_linear", "svm_rbf"]
    columns += [f"qkernel_d{d}" for d in depths]
    columns += [f"alignment_d{d}" for d in depths]
    return ExperimentResult(
        "E3", "Quantum kernel vs classical kernels",
        columns, rows,
        notes="parity is the linear-kernel killer; the IQP kernel "
              "should dominate it",
    )


@register("E13", "Learned cardinality estimation q-errors")
def cardinality_estimation(num_rows: int = 2000, num_queries: int = 150,
                           correlation: float = 0.9, epochs: int = 30,
                           seed: int = 0) -> ExperimentResult:
    """Median/p90 q-error of histogram, linear, MLP and VQC estimators
    on a correlated-column range-query workload."""
    dataset = make_cardinality_dataset(
        num_rows=num_rows, num_queries=num_queries,
        correlation=correlation, seed=seed,
    )
    features = dataset.features
    labels = dataset.log_cardinalities
    order = np.random.default_rng(seed).permutation(num_queries)
    cut = int(0.7 * num_queries)
    train, test = order[:cut], order[cut:]
    truths = dataset.cardinalities[test]

    def summarize(name, estimates):
        summary = evaluate_q_errors(estimates, truths)
        return {
            "estimator": name,
            "median_q_error": summary["median"],
            "p90_q_error": summary["p90"],
            "max_q_error": summary["max"],
        }

    rows = []
    histogram = histogram_estimates(dataset)[test]
    rows.append(summarize("histogram", histogram))

    linear = LinearRegression().fit(features[train], labels[train])
    rows.append(summarize(
        "linear(log)", np.expm1(np.clip(linear.predict(features[test]),
                                        0.0, 30.0))
    ))

    mlp = MLP(hidden=(32, 16), task="regression", max_iter=400,
              learning_rate=0.01, seed=seed)
    mlp.fit(features[train], labels[train])
    rows.append(summarize(
        "mlp(log)", np.expm1(np.clip(mlp.predict(features[test]),
                                     0.0, 30.0))
    ))

    vqc = VariationalRegressor(
        AngleEncoding(features.shape[1], scaling=1.5),
        num_layers=2, epochs=epochs, batch_size=24, seed=seed,
    )
    vqc.fit(features[train], labels[train])
    rows.append(summarize(
        "vqc(log)", np.expm1(np.clip(vqc.predict(features[test]),
                                     0.0, 30.0))
    ))
    return ExperimentResult(
        "E13", "Cardinality estimation q-errors (correlated columns)",
        ["estimator", "median_q_error", "p90_q_error", "max_q_error"],
        rows,
        notes="learned estimators beat the independence-assumption "
              "histogram; MLP leads, VQC is competitive with linear",
    )


@register("E17", "Quantum-kernel estimation cost: accuracy vs shot budget")
def kernel_shot_budget(shot_budgets: Sequence[Optional[int]] = (8, 32, 128,
                                                                512, None),
                       n_samples: int = 60,
                       seed: int = 0) -> ExperimentResult:
    """Kernel-SVM accuracy and Gram-matrix error as the per-entry shot
    budget grows (None = exact simulation).

    Estimating each kernel entry on hardware costs shots; too few and
    the Gram matrix is so noisy the SVM fails. This quantifies the
    estimation cost the tutorial attaches to kernel methods.
    """
    X, y = make_circles(n_samples, noise=0.05, seed=seed)
    X = minmax_scale(X, 0.0, np.pi)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=0.3, seed=seed
    )
    encoding = IQPEncoding(2, depth=2)
    exact_gram = FidelityQuantumKernel(encoding)(X_train)
    rows = []
    for shots in shot_budgets:
        kernel = FidelityQuantumKernel(encoding, shots=shots, seed=seed)
        clf = QuantumKernelClassifier(kernel=kernel, C=5.0, seed=seed)
        clf.fit(X_train, y_train)
        gram = kernel(X_train)
        rows.append({
            "shots_per_entry": "exact" if shots is None else shots,
            "gram_rms_error": float(
                np.sqrt(((gram - exact_gram) ** 2).mean())
            ),
            "test_accuracy": clf.score(X_test, y_test),
        })
    return ExperimentResult(
        "E17", "Quantum kernel accuracy vs shot budget (circles)",
        ["shots_per_entry", "gram_rms_error", "test_accuracy"],
        rows,
        notes="accuracy recovers once the per-entry error drops below "
              "the class margin; error falls as 1/sqrt(shots)",
    )


@register("E18", "QUBO feature selection matches exact mRMR subsets")
def feature_selection(feature_counts: Sequence[int] = (8, 12, 16),
                      num_selected: int = 4, n_samples: int = 600,
                      instances_per_cell: int = 3,
                      seed: int = 0) -> ExperimentResult:
    """Objective recovered (fraction of the exact optimum) by greedy
    mRMR and QUBO annealing on datasets with informative, redundant
    and noise features — the annealer-friendly ML preprocessing
    problem the 'new techniques' thread highlights."""
    from ..qml.feature_selection import (
        FeatureSelectionProblem,
        select_features_annealing,
        select_features_exact,
        select_features_greedy,
    )

    rng = np.random.default_rng(seed)
    rows = []
    for num_features in feature_counts:
        greedy_fractions = []
        annealed_fractions = []
        for _ in range(instances_per_cell):
            local = np.random.default_rng(int(rng.integers(2 ** 31)))
            informative = local.normal(size=(n_samples, 3))
            labels = (informative.sum(axis=1) > 0).astype(int)
            copies = informative[:, :2] + local.normal(
                scale=0.15, size=(n_samples, 2)
            )
            noise = local.normal(
                size=(n_samples, num_features - 5)
            )
            X = np.column_stack([informative, copies, noise])
            problem = FeatureSelectionProblem.from_data(
                X, labels, num_selected=num_selected
            )
            _, exact_value = select_features_exact(problem)
            _, greedy_value = select_features_greedy(problem)
            _, annealed_value = select_features_annealing(problem)
            if exact_value > 0:
                greedy_fractions.append(greedy_value / exact_value)
                annealed_fractions.append(annealed_value / exact_value)
        rows.append({
            "features": num_features,
            "greedy_fraction_of_optimum": float(np.mean(greedy_fractions)),
            "annealed_fraction_of_optimum": float(
                np.mean(annealed_fractions)
            ),
        })
    return ExperimentResult(
        "E18", "Feature selection (fraction of exact mRMR objective)",
        ["features", "greedy_fraction_of_optimum",
         "annealed_fraction_of_optimum"],
        rows,
        notes="1.0 = optimal subset; redundancy interactions are what "
              "make this quadratic (and annealer-shaped)",
    )
