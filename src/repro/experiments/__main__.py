"""Command-line experiment runner.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments E8         # run one at full scale
    python -m repro.experiments E8 E12     # run several
"""

from __future__ import annotations

import sys
import time

from .harness import available_experiments, format_table, run_experiment


def main(argv) -> int:
    experiments = available_experiments()
    if not argv:
        print("Available experiments:")
        for experiment_id in sorted(experiments,
                                    key=lambda e: int(e[1:])):
            print(f"  {experiment_id:<4} {experiments[experiment_id]}")
        print("\nRun with: python -m repro.experiments <id> [<id> ...]")
        return 0
    unknown = [e for e in argv if e not in experiments]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    for experiment_id in argv:
        start = time.time()
        result = run_experiment(experiment_id)
        print(format_table(result))
        print(f"[{time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
