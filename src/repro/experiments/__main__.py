"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments E8              # run one at full scale
    python -m repro.experiments E8 E12          # run several
    python -m repro.experiments E8 --telemetry  # + spans/counters report
    python -m repro.experiments E8 --telemetry --json-out e8.json
    python -m repro.experiments E8 --set "sizes=(4,)" --set seed=1
    python -m repro.experiments E8 --solver sqa  # swap the backend
    python -m repro.experiments E8 --trace out.json  # event timeline
    python -m repro.experiments bench-compare base.json cand.json
    python -m repro.experiments metrics-report metrics.json
    python -m repro.experiments obs-report trace.json --list
    python -m repro.experiments serve --workers 2 --port 8351

``--solver name`` forwards a solver-registry name (``sa``, ``sqa``,
``tabu``, ``qaoa``, ``exact``, ``pt``) to every selected experiment
with a ``solver`` knob — the annealing arm of E8/E9/E10/E11/E15/E19
and the A1/A2 ablations — leaving solver-specific experiments (E12,
E14, A3) untouched.
``--set key=value`` forwards keyword overrides to every experiment run
(values are parsed as Python literals, falling back to strings), which
is how CI runs experiments at reduced scale. ``--json-out`` writes one
record per experiment with the result rows, a provenance block
(experiment id, kwargs, seed, version, git SHA, duration) and the
metrics snapshot — the same schema as the ``BENCH_*.json`` trajectory
files written by ``benchmarks/conftest.py``.

``--trace FILE`` additionally records an event-level timeline (spans,
per-gate events, solver convergence rows, memory samples) and writes
it as Chrome ``trace_event`` JSON — open the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``. It implies
``--telemetry`` so span mirroring has spans to mirror.

``bench-compare`` is a subcommand, not a flag: it diffs two
``repro-bench/v1`` documents and exits nonzero when the candidate
regressed beyond tolerance (see
:mod:`repro.telemetry.bench_compare`). ``metrics-report`` renders a
``repro-metrics/v1`` snapshot (or sampler JSONL) as a text dashboard
with latency quantiles and an SLO health section (see
:mod:`repro.telemetry.metrics_report`). ``obs-report`` joins a Chrome
trace, a metrics snapshot and flight capsules by ``trace_id`` into
per-job timelines (see :mod:`repro.telemetry.obs_report`).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import time
from typing import Any, Dict, List

from .. import telemetry
from .harness import (
    available_experiments,
    experiment_accepts,
    format_table,
    run_experiment,
)


def _parse_setting(text: str) -> tuple:
    """``key=value`` -> (key, literal-parsed value)."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ValueError(
            f"--set expects key=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars/arrays that leak into result rows."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    return repr(value)


def _experiment_record(result) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }
    if result.provenance is not None:
        record["provenance"] = result.provenance
    if result.metrics is not None:
        record["metrics"] = result.metrics
    return record


def main(argv) -> int:
    argv = list(argv)
    if argv and argv[0] == "bench-compare":
        from ..telemetry import bench_compare

        return bench_compare.main(argv[1:])
    if argv and argv[0] == "serve-bench":
        from ..service import bench as serve_bench

        return serve_bench.main(argv[1:])
    if argv and argv[0] == "metrics-report":
        from ..telemetry import metrics_report

        return metrics_report.main(argv[1:])
    if argv and argv[0] == "obs-report":
        from ..telemetry import obs_report

        return obs_report.main(argv[1:])
    if argv and argv[0] == "pipeline-bench":
        from ..pipeline import bench as pipeline_bench

        return pipeline_bench.main(argv[1:])
    if argv and argv[0] == "serve":
        from ..server import cli as server_cli

        return server_cli.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run DESIGN.md experiments from the registry.",
    )
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (e.g. E8 A1); none lists all")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect spans/counters/provenance and print "
                             "a report per experiment")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write results + provenance + metrics as JSON "
                             "(implies --telemetry)")
    parser.add_argument("--set", dest="settings", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="keyword override forwarded to every "
                             "experiment (python literal; repeatable)")
    parser.add_argument("--solver", metavar="NAME",
                        help="solver registry name (e.g. sa, sqa, tabu) "
                             "forwarded to every experiment that takes a "
                             "solver knob; see repro.compile."
                             "available_solvers()")
    parser.add_argument("--workers", type=int, metavar="N",
                        help="run batchable solver arms through the "
                             "solve service with N concurrent workers "
                             "(experiments with a 'workers' knob: E8, "
                             "A1); results are identical, only faster")
    parser.add_argument("--trace", metavar="FILE",
                        help="record an event timeline and write Chrome "
                             "trace_event JSON (open in Perfetto); "
                             "implies --telemetry")
    args = parser.parse_args(argv)

    if args.solver is not None:
        from ..compile import available_solvers

        if args.solver not in available_solvers():
            names = ", ".join(available_solvers())
            print(f"unknown solver {args.solver!r}; registered solvers: "
                  f"{names}", file=sys.stderr)
            return 2

    experiments = available_experiments()
    if not args.ids:
        print("Available experiments:")
        for experiment_id in sorted(experiments,
                                    key=lambda e: (e[0], int(e[1:]))):
            print(f"  {experiment_id:<4} {experiments[experiment_id]}")
        print("\nRun with: python -m repro.experiments <id> [<id> ...]")
        return 0
    unknown = [e for e in args.ids if e not in experiments]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    try:
        overrides = dict(_parse_setting(s) for s in args.settings)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    use_telemetry = (args.telemetry or args.json_out is not None
                     or args.trace is not None or telemetry.is_enabled())
    tracer = (telemetry.enable_tracing() if args.trace is not None
              else None)
    trace_path = (os.path.abspath(args.trace)
                  if args.trace is not None else None)
    records: List[Dict[str, Any]] = []
    for experiment_id in args.ids:
        # One fresh collector per experiment so counters, spans and the
        # attached metrics snapshot are scoped to that run alone.
        collector = telemetry.enable() if use_telemetry else None
        kwargs = dict(overrides)
        if (args.solver is not None
                and experiment_accepts(experiment_id, "solver")):
            kwargs["solver"] = args.solver
        if (args.workers is not None
                and experiment_accepts(experiment_id, "workers")):
            kwargs["workers"] = args.workers
        start = time.perf_counter()
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - start
        if result.provenance is not None and trace_path is not None:
            result.provenance["trace_path"] = trace_path
        print(format_table(result))
        if collector is not None:
            span_path = f"experiment.{experiment_id}"
            span = collector.snapshot()["spans"].get(span_path, {})
            print(f"[{span.get('total_seconds', elapsed):.1f}s]")
            print(telemetry.render_report(
                collector, provenance=result.provenance
            ))
            print()
            records.append(_experiment_record(result))
            telemetry.disable()
        else:
            print(f"[{elapsed:.1f}s]\n")
    if tracer is not None:
        tracer.write_chrome_trace(trace_path, metadata={
            "schema": "repro-trace/v1",
            "experiments": list(args.ids),
            "event_count": tracer.event_count,
        })
        print(f"wrote trace {trace_path} "
              f"({tracer.event_count} events, "
              f"{tracer.dropped_events} dropped)")
        telemetry.disable_tracing()
    if args.json_out is not None:
        document = {
            "schema": "repro-telemetry/v1",
            "experiments": records,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      default=_json_default)
            handle.write("\n")
        print(f"wrote {os.path.abspath(args.json_out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
