"""repro — Quantum machine learning for database research.

A from-scratch reproduction of the system surface of the SIGMOD 2023
tutorial "Quantum Machine Learning: Foundation, New Techniques, and
Opportunities for Database Research":

* :mod:`repro.quantum` — circuit IR + statevector / density-matrix
  simulators, noise channels, Pauli observables.
* :mod:`repro.qml` — encodings, ansätze, parameter-shift gradients,
  optimizers, variational models, quantum kernels, barren-plateau
  diagnostics.
* :mod:`repro.annealing` — QUBO/Ising modelling, simulated (quantum)
  annealing, tabu, exact solvers, QAOA.
* :mod:`repro.compile` — the problem-compilation IR
  (:class:`~repro.compile.CompiledProblem`, constraint primitives,
  analytic penalty weights) and the string-addressable solver
  registry behind ``repro.compile.solve``.
* :mod:`repro.db` — relational substrate and the QUBO formulations of
  join ordering, multiple-query optimization, index selection and
  transaction scheduling, plus learned cardinality estimation.
* :mod:`repro.baselines` — from-scratch classical ML baselines.
* :mod:`repro.datasets` — synthetic dataset generators.
* :mod:`repro.experiments` — runners regenerating every experiment in
  DESIGN.md.
* :mod:`repro.telemetry` — spans, counters/gauges, and run-provenance
  records across all of the above (off by default; see
  ``repro.telemetry.enable`` / ``REPRO_TELEMETRY=1``).
"""

# Single source of truth for the package version; pyproject.toml reads
# it via ``[tool.setuptools.dynamic]``. Keep it a plain literal so
# setuptools can extract it statically without importing the package.
__version__ = "1.1.0"

from . import (
    annealing,
    baselines,
    compile,
    datasets,
    db,
    experiments,
    qml,
    quantum,
    telemetry,
)

__all__ = [
    "annealing",
    "baselines",
    "compile",
    "datasets",
    "db",
    "experiments",
    "qml",
    "quantum",
    "telemetry",
    "__version__",
]
