"""The five database formulations as registered pipeline strategies.

Each strategy wraps the corresponding :mod:`repro.db` compiler class
and its module-level deterministic ``DEFAULT_SOLVER_CONFIG`` — the
pipeline therefore dispatches the exact compiled problem + config the
free functions (``solve_join_order_annealing`` & co.) use, making
seeded pipeline solutions bit-for-bit identical to direct ones.

The registry is string-addressable like the solver registry: look up
with :func:`get_formulation`, enumerate with
:func:`available_formulations`; unknown names raise with the list of
registered alternatives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from ..compile import CompiledProblem, SolverConfig
from ..db.indexsel import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    solve_index_selection_greedy,
)
from ..db.indexsel import DEFAULT_SOLVER_CONFIG as INDEXSEL_CONFIG
from ..db.joinorder import (
    JoinOrderDecoded,
    JoinOrderQUBO,
    two_opt_polish,
)
from ..db.joinorder import DEFAULT_SOLVER_CONFIG as JOINORDER_CONFIG
from ..db.mqo import MQOProblem, MQOQUBO, solve_mqo_greedy
from ..db.mqo import DEFAULT_SOLVER_CONFIG as MQO_CONFIG
from ..db.partitioning import (
    PartitioningIsing,
    PartitioningProblem,
    partition_kernighan_lin,
)
from ..db.partitioning import DEFAULT_SOLVER_CONFIG as PARTITIONING_CONFIG
from ..db.txsched import (
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    schedule_greedy_first_fit,
)
from ..db.txsched import DEFAULT_SOLVER_CONFIG as TXSCHED_CONFIG
from ..db.cost import left_deep_cost, log_cost_proxy
from ..db.query import JoinGraph, left_deep_tree
from .stages import FormulationStrategy, PreCheck

_FORMULATIONS: Dict[str, Type[FormulationStrategy]] = {}


def register_formulation(cls: Type[FormulationStrategy]
                         ) -> Type[FormulationStrategy]:
    """Class decorator adding a strategy to the registry by its name."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("strategy classes must set a concrete name")
    if cls.name in _FORMULATIONS:
        raise ValueError(f"formulation {cls.name!r} already registered")
    _FORMULATIONS[cls.name] = cls
    return cls


def available_formulations() -> Dict[str, str]:
    """Registered formulation names mapped to their descriptions."""
    return {name: _FORMULATIONS[name].description
            for name in sorted(_FORMULATIONS)}


def get_formulation(name: str, **kwargs: Any) -> FormulationStrategy:
    """Instantiate a registered strategy; unknown names list the
    registered alternatives."""
    try:
        cls = _FORMULATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown formulation {name!r}; registered: "
            f"{', '.join(sorted(_FORMULATIONS))}"
        ) from None
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Join ordering
# ----------------------------------------------------------------------
@register_formulation
class JoinOrderFormulation(FormulationStrategy):
    """Left-deep join ordering over a :class:`JoinGraph` (E8).

    ``polish`` applies the classical 2-opt refinement to the decoded
    order inside plan assembly — the same hybrid step
    ``solve_join_order_annealing(polish=True)`` performs.
    """

    name = "joinorder"
    description = "left-deep join ordering (one-hot position QUBO)"

    def __init__(self, penalty_scale: float = 1.0, polish: bool = True,
                 max_variables: Optional[int] = None):
        self.penalty_scale = penalty_scale
        self.polish = polish
        self.max_variables = max_variables

    def instance_type(self) -> type:
        return JoinGraph

    def num_variables(self, graph: JoinGraph) -> int:
        return graph.num_relations ** 2

    def compile(self, graph: JoinGraph) -> CompiledProblem:
        return JoinOrderQUBO(
            graph, penalty_scale=self.penalty_scale
        ).compile()

    def default_config(self) -> SolverConfig:
        return JOINORDER_CONFIG

    def classical_baseline(self, graph: JoinGraph) -> JoinOrderDecoded:
        order = two_opt_polish(graph, list(range(graph.num_relations)))
        return JoinOrderDecoded(
            order=order,
            cost=left_deep_cost(graph, order),
            log_proxy=log_cost_proxy(graph, order),
            valid=True,
        )

    def feasible(self, graph: JoinGraph,
                 decoded: JoinOrderDecoded) -> bool:
        return sorted(decoded.order) == list(range(graph.num_relations))

    def finalize(self, graph: JoinGraph,
                 decoded: JoinOrderDecoded) -> JoinOrderDecoded:
        if not self.polish:
            return decoded
        order = two_opt_polish(graph, decoded.order)
        return JoinOrderDecoded(
            order=order,
            cost=left_deep_cost(graph, order),
            log_proxy=log_cost_proxy(graph, order),
            valid=decoded.valid,
        )

    def annotate(self, graph: JoinGraph,
                 decoded: JoinOrderDecoded) -> Dict[str, Any]:
        return {
            "cost": decoded.cost,
            "log_cost_proxy": decoded.log_proxy,
            "encoding_valid": bool(decoded.valid),
            "num_relations": graph.num_relations,
        }

    def render(self, graph: JoinGraph,
               decoded: JoinOrderDecoded) -> str:
        return left_deep_tree(decoded.order).display(graph.names)

    def describe(self) -> Dict[str, Any]:
        out = super().describe()
        out["penalty_scale"] = self.penalty_scale
        out["polish"] = self.polish
        return out


# ----------------------------------------------------------------------
# Multiple-query optimization
# ----------------------------------------------------------------------
@register_formulation
class MQOFormulation(FormulationStrategy):
    """One plan per query with cross-query sharing savings (E9)."""

    name = "mqo"
    description = "multiple-query optimization (plan-choice QUBO)"

    def __init__(self, penalty_scale: float = 1.0,
                 max_variables: Optional[int] = None):
        self.penalty_scale = penalty_scale
        self.max_variables = max_variables

    def instance_type(self) -> type:
        return MQOProblem

    def num_variables(self, problem: MQOProblem) -> int:
        return problem.num_plans

    def compile(self, problem: MQOProblem) -> CompiledProblem:
        return MQOQUBO(
            problem, penalty_scale=self.penalty_scale
        ).compile()

    def default_config(self) -> SolverConfig:
        return MQO_CONFIG

    def classical_baseline(self, problem: MQOProblem) -> List[int]:
        return solve_mqo_greedy(problem)[0]

    def feasible(self, problem: MQOProblem,
                 selection: List[int]) -> bool:
        return (len(selection) == problem.num_queries and all(
            0 <= k < len(problem.plan_costs[q])
            for q, k in enumerate(selection)
        ))

    def annotate(self, problem: MQOProblem,
                 selection: List[int]) -> Dict[str, Any]:
        return {
            "cost": problem.total_cost(selection),
            "num_queries": problem.num_queries,
            "num_plans": problem.num_plans,
        }

    def render(self, problem: MQOProblem,
               selection: List[int]) -> str:
        return " ".join(f"Q{q}:P{k}" for q, k in enumerate(selection))


# ----------------------------------------------------------------------
# Index selection
# ----------------------------------------------------------------------
@register_formulation
class IndexSelectionFormulation(FormulationStrategy):
    """Budgeted index selection with overlap-adjusted benefits (E10).

    The plan's ``cost`` is the *negated* net benefit so the
    lower-is-better convention holds pipeline-wide; the raw benefit is
    also in the estimates.
    """

    name = "indexsel"
    description = "index selection under a storage budget (slack QUBO)"

    def __init__(self, penalty_scale: float = 1.0,
                 max_variables: Optional[int] = None):
        self.penalty_scale = penalty_scale
        self.max_variables = max_variables

    def instance_type(self) -> type:
        return IndexSelectionProblem

    def num_variables(self, problem: IndexSelectionProblem) -> int:
        return (problem.num_candidates
                + max(1, problem.budget.bit_length()))

    def compile(self, problem: IndexSelectionProblem) -> CompiledProblem:
        return IndexSelectionQUBO(
            problem, penalty_scale=self.penalty_scale
        ).compile()

    def default_config(self) -> SolverConfig:
        return INDEXSEL_CONFIG

    def classical_baseline(self,
                           problem: IndexSelectionProblem) -> List[int]:
        return solve_index_selection_greedy(problem)[0]

    def feasible(self, problem: IndexSelectionProblem,
                 selection: List[int]) -> bool:
        return problem.is_feasible(selection)

    def annotate(self, problem: IndexSelectionProblem,
                 selection: List[int]) -> Dict[str, Any]:
        benefit = max(problem.total_benefit(selection), 0.0)
        return {
            "cost": -benefit,
            "benefit": benefit,
            "total_size": problem.total_size(selection),
            "budget": problem.budget,
        }

    def render(self, problem: IndexSelectionProblem,
               selection: List[int]) -> str:
        chosen = ", ".join(f"I{i}" for i in sorted(selection)) or "none"
        return (f"{{{chosen}}} "
                f"({problem.total_size(selection)}/{problem.budget})")

    def pre_check(self) -> PreCheck:
        def check_budget(problem: Any) -> Optional[str]:
            if not isinstance(problem, IndexSelectionProblem):
                return None  # the type check reports this one
            smallest = min(problem.sizes)
            if smallest > problem.budget:
                return (
                    f"no candidate index fits the budget (smallest "
                    f"size {smallest} > budget {problem.budget}) — "
                    f"raise the budget or prune candidates"
                )
            return None

        return super().pre_check().add(
            f"{self.name}.budget_feasible", check_budget
        )


# ----------------------------------------------------------------------
# Transaction scheduling
# ----------------------------------------------------------------------
@register_formulation
class TransactionSchedulingFormulation(FormulationStrategy):
    """Conflict-free slot assignment (graph colouring, E11).

    ``num_slots=None`` sizes the colouring per instance at the greedy
    first-fit makespan — the same ceiling
    :func:`repro.db.txsched.minimum_slots_annealing` scans up to, and
    always sufficient for a valid schedule.
    """

    name = "txsched"
    description = "transaction scheduling (conflict-colouring QUBO)"

    def __init__(self, num_slots: Optional[int] = None,
                 penalty_scale: float = 1.0,
                 max_variables: Optional[int] = None):
        if num_slots is not None and num_slots < 1:
            raise ValueError("num_slots must be positive")
        self.num_slots = num_slots
        self.penalty_scale = penalty_scale
        self.max_variables = max_variables

    def instance_type(self) -> type:
        return TransactionSchedulingProblem

    def slots_for(self, problem: TransactionSchedulingProblem) -> int:
        if self.num_slots is not None:
            return self.num_slots
        return problem.makespan(schedule_greedy_first_fit(problem))

    def num_variables(self,
                      problem: TransactionSchedulingProblem) -> int:
        return problem.num_transactions * self.slots_for(problem)

    def compile(self, problem: TransactionSchedulingProblem
                ) -> CompiledProblem:
        return TransactionSchedulingQUBO(
            problem, self.slots_for(problem),
            penalty_scale=self.penalty_scale,
        ).compile()

    def default_config(self) -> SolverConfig:
        return TXSCHED_CONFIG

    def classical_baseline(self, problem: TransactionSchedulingProblem
                           ) -> List[int]:
        return schedule_greedy_first_fit(problem)

    def feasible(self, problem: TransactionSchedulingProblem,
                 schedule: List[int]) -> bool:
        return problem.is_valid(schedule)

    def annotate(self, problem: TransactionSchedulingProblem,
                 schedule: List[int]) -> Dict[str, Any]:
        return {
            "cost": float(problem.makespan(schedule)),
            "makespan": problem.makespan(schedule),
            "conflict_violations":
                problem.num_conflict_violations(schedule),
            "num_transactions": problem.num_transactions,
        }

    def render(self, problem: TransactionSchedulingProblem,
               schedule: List[int]) -> str:
        slots: Dict[int, List[int]] = {}
        for t, slot in enumerate(schedule):
            slots.setdefault(slot, []).append(t)
        return " | ".join(
            f"s{slot}:" + ",".join(f"t{t}" for t in slots[slot])
            for slot in sorted(slots)
        )

    def describe(self) -> Dict[str, Any]:
        out = super().describe()
        out["num_slots"] = self.num_slots
        return out


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@register_formulation
class PartitioningFormulation(FormulationStrategy):
    """Balanced two-way sharding as min-cut Ising (E19)."""

    name = "partitioning"
    description = "balanced min-cut data partitioning (native Ising)"

    def __init__(self, balance_weight: Optional[float] = None,
                 penalty_scale: float = 1.0,
                 max_variables: Optional[int] = None):
        self.balance_weight = balance_weight
        self.penalty_scale = penalty_scale
        self.max_variables = max_variables

    def instance_type(self) -> type:
        return PartitioningProblem

    def num_variables(self, problem: PartitioningProblem) -> int:
        return problem.num_fragments

    def compile(self, problem: PartitioningProblem) -> CompiledProblem:
        return PartitioningIsing(
            problem, balance_weight=self.balance_weight,
            penalty_scale=self.penalty_scale,
        ).compile()

    def default_config(self) -> SolverConfig:
        return PARTITIONING_CONFIG

    def classical_baseline(self,
                           problem: PartitioningProblem) -> List[int]:
        return partition_kernighan_lin(problem, seed=0)

    def feasible(self, problem: PartitioningProblem,
                 assignment: List[int]) -> bool:
        return (len(assignment) == problem.num_fragments
                and all(a in (0, 1) for a in assignment))

    def annotate(self, problem: PartitioningProblem,
                 assignment: List[int]) -> Dict[str, Any]:
        return {
            "cost": problem.cut_weight(assignment),
            "cut_weight": problem.cut_weight(assignment),
            "imbalance": problem.imbalance(assignment),
            "num_fragments": problem.num_fragments,
        }

    def render(self, problem: PartitioningProblem,
               assignment: List[int]) -> str:
        shard0 = [i for i, a in enumerate(assignment) if a == 0]
        shard1 = [i for i, a in enumerate(assignment) if a == 1]
        return (
            "shard0:{" + ",".join(f"f{i}" for i in shard0) + "} "
            "shard1:{" + ",".join(f"f{i}" for i in shard1) + "}"
        )
