"""Staged query-optimization pipeline over ``repro.db`` + ``repro.compile``.

PostBOUND-style structure: a query/workload instance flows through
pre-check → formulation → solve strategy → plan assembly and comes out
as an :class:`AnnotatedPlan` with cost estimates, stage provenance and
convergence references. All five database formulations are registered
:class:`FormulationStrategy` implementations; solver choice (any
registry solver, the service warm pool, or a classical baseline) is
declarative data, so mixed quantum/classical configurations are plain
strings — and A/B-able via ``bench-compare`` on the generated
JOB-style workloads from :mod:`repro.db.workloads`.

    from repro.pipeline import OptimizationPipeline
    plan = OptimizationPipeline("joinorder", solve="sa").optimize(graph)
"""

from .formulations import (
    IndexSelectionFormulation,
    JoinOrderFormulation,
    MQOFormulation,
    PartitioningFormulation,
    TransactionSchedulingFormulation,
    available_formulations,
    get_formulation,
    register_formulation,
)
from .pipeline import OptimizationPipeline
from .plan import (
    PLAN_SCHEMA,
    PLAN_STATUSES,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_REJECTED,
    AnnotatedPlan,
    StageReport,
    validate_plan_document,
)
from .stages import (
    CLASSICAL,
    FormulationStrategy,
    PlanAssembly,
    PreCheck,
    PreCheckResult,
    SolveStrategy,
    as_solve_strategy,
)

__all__ = [
    "IndexSelectionFormulation",
    "JoinOrderFormulation",
    "MQOFormulation",
    "PartitioningFormulation",
    "TransactionSchedulingFormulation",
    "available_formulations",
    "get_formulation",
    "register_formulation",
    "OptimizationPipeline",
    "PLAN_SCHEMA",
    "PLAN_STATUSES",
    "STATUS_INFEASIBLE",
    "STATUS_OK",
    "STATUS_REJECTED",
    "AnnotatedPlan",
    "StageReport",
    "validate_plan_document",
    "CLASSICAL",
    "FormulationStrategy",
    "PlanAssembly",
    "PreCheck",
    "PreCheckResult",
    "SolveStrategy",
    "as_solve_strategy",
]
