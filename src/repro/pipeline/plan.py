"""The pipeline's output artifact: an annotated, provenance-carrying plan.

Every pipeline run — whatever the formulation, solver or outcome —
produces one :class:`AnnotatedPlan`. A plan that made it through every
stage carries the decoded domain solution, cost estimates from
:mod:`repro.db.cost`-backed annotators, and the solve provenance
(solver, config, seed, convergence reference). A plan that *didn't*
carries the stage that stopped it: a pre-check rejection lists the
failing predicates, a formulation failure records the exception
instead of propagating it.

The plan is JSON-first: :meth:`AnnotatedPlan.to_dict` produces a pure
JSON document (numpy scalars unwrapped, dataclasses expanded, the
unpicklable :class:`~repro.compile.SolveResult` dropped) so workload
runs can be archived, diffed and validated in CI.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Every stage passed; ``solution`` is a decoded, feasible plan.
STATUS_OK = "ok"
#: The pre-check stage rejected the instance; no solve was attempted.
STATUS_REJECTED = "rejected"
#: The formulation (or feasibility) failed; the plan is unusable.
STATUS_INFEASIBLE = "infeasible"

PLAN_STATUSES = (STATUS_OK, STATUS_REJECTED, STATUS_INFEASIBLE)

#: Schema tag for serialized plan documents.
PLAN_SCHEMA = "repro-pipeline/v1"


def json_safe(value: Any) -> Any:
    """Recursively convert a value into plain JSON types.

    Dataclasses expand to dicts, numpy scalars unwrap through
    ``item()``, arrays through ``tolist()``, tuples/sets become lists,
    and anything else unrecognized falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_safe(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return json_safe(tolist())
    return repr(value)


@dataclass
class StageReport:
    """Provenance of one pipeline stage: what ran, for how long, how it
    went. ``detail`` is stage-specific (pre-check predicate lists,
    formulation metadata, solver identity, assembly annotations)."""

    stage: str
    status: str
    seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "status": self.status,
            "seconds": float(self.seconds),
            "detail": json_safe(self.detail),
        }


@dataclass
class AnnotatedPlan:
    """One pipeline run's outcome, annotated with costs and provenance.

    Attributes
    ----------
    formulation / solver:
        The formulation-strategy name and the solver that produced the
        solution (``"classical"`` for baseline arms, ``None`` when no
        solve stage ran).
    status:
        ``"ok"``, ``"rejected"`` (pre-check) or ``"infeasible"``
        (formulation raised, or the decoded solution violated the
        problem's hard constraints).
    solution:
        The decoded domain solution (join order, plan selection, index
        set, schedule, shard assignment) — ``None`` unless ``ok``.
    cost:
        The formulation's primary scalar cost (lower is better;
        join-order C_out, MQO total cost, negated index benefit, ...).
    estimates:
        All cost estimates the assembly stage computed, keyed by
        metric name (always includes ``"cost"`` when ``ok``).
    plan:
        Optional human-readable rendering (e.g. the join-tree string).
    provenance:
        Stage reports plus solver provenance plus workload/instance
        identification — everything needed to reproduce the run.
    convergence:
        The uniform per-iteration convergence rows when the solve
        config recorded them (see :class:`repro.telemetry.progress`).
    result:
        The full in-process :class:`~repro.compile.SolveResult`
        (samples, all decoded reads). Excluded from serialization.
    """

    formulation: str
    solver: Optional[str]
    status: str
    solution: Any = None
    feasible: bool = False
    cost: Optional[float] = None
    estimates: Dict[str, Any] = field(default_factory=dict)
    plan: Optional[str] = None
    provenance: Dict[str, Any] = field(default_factory=dict)
    convergence: Optional[List[Dict[str, Any]]] = None
    result: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.status not in PLAN_STATUSES:
            raise ValueError(
                f"status must be one of {PLAN_STATUSES}, "
                f"got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe document (drops the in-process ``result``)."""
        return {
            "schema": PLAN_SCHEMA,
            "formulation": self.formulation,
            "solver": self.solver,
            "status": self.status,
            "solution": json_safe(self.solution),
            "feasible": bool(self.feasible),
            "cost": None if self.cost is None else float(self.cost),
            "estimates": json_safe(self.estimates),
            "plan": self.plan,
            "provenance": json_safe(self.provenance),
            "convergence_rows": (len(self.convergence)
                                 if self.convergence is not None else 0),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        cost = "None" if self.cost is None else f"{self.cost:g}"
        return (
            f"AnnotatedPlan(formulation={self.formulation!r}, "
            f"solver={self.solver!r}, status={self.status!r}, "
            f"feasible={self.feasible}, cost={cost})"
        )


def validate_plan_document(document: Any) -> List[str]:
    """Structural check of a serialized plan; returns problem strings.

    Used by the pipeline-bench CLI and the CI smoke step to validate
    emitted ``AnnotatedPlan`` JSON without re-importing the producer.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["plan document is not an object"]
    if document.get("schema") != PLAN_SCHEMA:
        problems.append(
            f"schema tag is {document.get('schema')!r}, "
            f"expected {PLAN_SCHEMA!r}"
        )
    for key in ("formulation", "status"):
        if not isinstance(document.get(key), str):
            problems.append(f"missing string field {key!r}")
    if document.get("status") not in PLAN_STATUSES:
        problems.append(
            f"status {document.get('status')!r} not in {PLAN_STATUSES}"
        )
    if not isinstance(document.get("provenance"), dict):
        problems.append("missing object 'provenance'")
    else:
        stages = document["provenance"].get("stages")
        if not isinstance(stages, list) or not stages:
            problems.append("provenance.stages is not a non-empty list")
    if document.get("status") == STATUS_OK:
        if not isinstance(document.get("estimates"), dict):
            problems.append("ok plan missing object 'estimates'")
        cost = document.get("cost")
        if not isinstance(cost, (int, float)) or isinstance(cost, bool):
            problems.append(f"ok plan has non-numeric cost: {cost!r}")
    return problems
