"""``pipeline-bench``: run generated workloads through the pipeline.

The benchmark/CI driver for :class:`~repro.pipeline.OptimizationPipeline`:
generate a deterministic JOB-style join-ordering workload
(:func:`repro.db.workloads.generate_join_workload`), run it through one
or more solver arms, validate every emitted ``AnnotatedPlan``, and
write two artifacts:

* ``--json-out`` — the full plan suite (``repro-pipeline/v1``): one
  serialized plan per query per arm, plus per-arm summaries;
* ``--bench-out`` — a ``repro-bench/v1`` document whose workload
  record keys timings by the *workload*, not the solver (the solver is
  a top-level field, kept out of ``params``), so two runs over the
  same ``workload_key`` with different solvers A/B directly in
  ``bench-compare``::

      python -m repro.experiments pipeline-bench --solvers sa \\
          --bench-out bench_sa.json
      python -m repro.experiments pipeline-bench --solvers classical \\
          --bench-out bench_classical.json
      python -m repro.experiments bench-compare bench_sa.json \\
          bench_classical.json --tolerance 0.5

Exits nonzero if any plan fails validation, is rejected, infeasible,
or (with ``--workers``) service routing diverges from the declared
workload size.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
from dataclasses import replace
from time import perf_counter
from typing import Any, Dict, List, Optional

from ..db.workloads import JoinWorkload, generate_join_workload
from ..telemetry.bench_schema import BENCH_SCHEMA
from .formulations import JoinOrderFormulation
from .pipeline import OptimizationPipeline
from .plan import AnnotatedPlan, validate_plan_document
from .stages import CLASSICAL, SolveStrategy

#: Suite-level schema tag for ``--json-out`` documents.
SUITE_SCHEMA = "repro-pipeline/v1"


def _csv(text: str) -> List[str]:
    return [token.strip() for token in text.split(",") if token.strip()]


def _mean_cost(costs: List[float]) -> Optional[float]:
    if not costs:
        return None
    if all(cost > 0 for cost in costs):
        return math.exp(sum(math.log(cost) for cost in costs)
                        / len(costs))
    return sum(costs) / len(costs)


def run_arm(workload: JoinWorkload, solver: str, *,
            polish: bool = False,
            sweeps: Optional[int] = None,
            reads: Optional[int] = None,
            workers: int = 0) -> Dict[str, Any]:
    """Run one solver arm over the workload; returns the arm record."""
    formulation = JoinOrderFormulation(polish=polish)
    strategy = SolveStrategy(solver=solver)
    if solver != CLASSICAL and (sweeps is not None
                                or reads is not None):
        config = formulation.default_config()
        if sweeps is not None:
            config = replace(config, num_sweeps=sweeps)
        if reads is not None:
            config = replace(config, num_reads=reads)
        strategy = strategy.with_config(config)

    provenance = {"workload_key": workload.workload_key}
    started = perf_counter()
    if workers > 0 and solver != CLASSICAL:
        from ..service import SolveService

        with SolveService(max_workers=workers, mode="process") as service:
            pipeline = OptimizationPipeline(
                formulation, solve=strategy, service=service
            )
            plans = pipeline.optimize_workload(
                workload.graphs(), provenance=provenance
            )
    else:
        pipeline = OptimizationPipeline(formulation, solve=strategy)
        plans = pipeline.optimize_workload(
            workload.graphs(), provenance=provenance
        )
    seconds = perf_counter() - started

    # Post-annotate each plan with its instance identity so a plan is
    # traceable to its generator coordinates without the workload file.
    for plan, instance in zip(plans, workload.instances):
        plan.provenance["instance"] = {
            "instance_key": instance.instance_key,
            "topology": instance.topology,
            "num_relations": instance.num_relations,
            "seed": instance.seed,
        }

    costs = [plan.cost for plan in plans if plan.cost is not None]
    summary = {
        "queries": len(plans),
        "ok": sum(1 for plan in plans if plan.status == "ok"),
        "rejected": sum(1 for plan in plans
                        if plan.status == "rejected"),
        "infeasible": sum(1 for plan in plans
                          if plan.status == "infeasible"),
        "feasible": sum(1 for plan in plans if plan.feasible),
        "mean_cost": _mean_cost(costs),
        "total_seconds": seconds,
        "per_query_seconds": (seconds / len(plans) if plans
                              else seconds),
    }
    return {
        "solver": solver,
        "workers": workers,
        "pipeline": pipeline.describe(),
        "summary": summary,
        "plans": plans,
    }


def arm_problems(arm: Dict[str, Any]) -> List[str]:
    """Validation failures of one arm's emitted plans."""
    problems: List[str] = []
    for index, plan in enumerate(arm["plans"]):
        assert isinstance(plan, AnnotatedPlan)
        document = plan.to_dict()
        for problem in validate_plan_document(document):
            problems.append(
                f"{arm['solver']}[{index}]: {problem}"
            )
        if plan.status != "ok":
            problems.append(
                f"{arm['solver']}[{index}]: status {plan.status!r} "
                f"({plan.provenance.get('stages', [])[-1:]})"
            )
        elif not plan.feasible:
            problems.append(
                f"{arm['solver']}[{index}]: infeasible solution"
            )
    return problems


def write_suite(path: str, workload: JoinWorkload,
                arms: List[Dict[str, Any]]) -> None:
    document = {
        "schema": SUITE_SCHEMA,
        "workload": {
            "workload_key": workload.workload_key,
            "base_key": workload.base_key,
            "params": workload.params,
            "num_queries": len(workload),
        },
        "arms": [
            {
                "solver": arm["solver"],
                "workers": arm["workers"],
                "pipeline": arm["pipeline"],
                "summary": arm["summary"],
                "plans": [plan.to_dict() for plan in arm["plans"]],
            }
            for arm in arms
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_bench(path: str, workload: JoinWorkload,
                arms: List[Dict[str, Any]]) -> None:
    """``repro-bench/v1`` document for ``bench-compare`` A/B runs.

    One record per arm. With a single arm the record is named
    ``pipeline`` and its ``params`` identify only the *workload* — so
    two single-arm runs with different solvers compare seconds
    head-to-head. Multi-arm runs qualify the name with the solver to
    keep workload names unique.
    """
    records = []
    for arm in arms:
        name = ("pipeline" if len(arms) == 1
                else f"pipeline_{arm['solver']}")
        summary = arm["summary"]
        records.append({
            "name": name,
            "solver": arm["solver"],
            "params": {
                "workload_key": workload.workload_key,
                "num_queries": len(workload),
                "workers": arm["workers"],
                **workload.params,
            },
            "total_seconds": summary["total_seconds"],
            "per_query_seconds": summary["per_query_seconds"],
            "mean_cost": summary["mean_cost"],
            "ok_fraction": (summary["ok"] / summary["queries"]
                            if summary["queries"] else 0.0),
        })
    document = {
        "schema": BENCH_SCHEMA,
        "provenance": {
            "source": "pipeline-bench",
            "workload_key": workload.workload_key,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workloads": records,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments pipeline-bench",
        description="Run a generated join-order workload through the "
                    "optimization pipeline.",
    )
    parser.add_argument("--topologies", default="chain,star",
                        metavar="LIST",
                        help="comma list of topologies "
                             "(default %(default)s)")
    parser.add_argument("--sizes", default="4,5", metavar="LIST",
                        help="comma list of relation counts "
                             "(default %(default)s)")
    parser.add_argument("--instances-per-cell", type=int, default=5,
                        metavar="N",
                        help="queries per (topology, size) cell "
                             "(default %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default %(default)s)")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="truncate the workload to N queries")
    parser.add_argument("--solvers", default="sa", metavar="LIST",
                        help="comma list of solver arms; registry "
                             "names plus 'classical' "
                             "(default %(default)s)")
    parser.add_argument("--sweeps", type=int, default=None,
                        help="override num_sweeps for solver arms")
    parser.add_argument("--reads", type=int, default=None,
                        help="override num_reads for solver arms")
    parser.add_argument("--polish", action="store_true",
                        help="apply the classical 2-opt polish during "
                             "plan assembly")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="route solves through a SolveService warm "
                             "pool with N workers (0 = in-process)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the full plan suite "
                             "(repro-pipeline/v1)")
    parser.add_argument("--bench-out", metavar="FILE",
                        help="write a repro-bench/v1 record for "
                             "bench-compare A/B")
    args = parser.parse_args(argv)

    try:
        workload = generate_join_workload(
            topologies=_csv(args.topologies),
            sizes=[int(n) for n in _csv(args.sizes)],
            instances_per_cell=args.instances_per_cell,
            seed=args.seed,
            limit=args.limit,
        )
    except ValueError as error:
        print(f"workload generation failed: {error}", file=sys.stderr)
        return 2
    print(f"workload {workload.workload_key}: {len(workload)} queries "
          f"({workload.params['topologies']} x "
          f"{workload.params['sizes']} x "
          f"{workload.params['instances_per_cell']}"
          f"{', limit ' + str(args.limit) if args.limit else ''})")

    solvers = _csv(args.solvers)
    if not solvers:
        print("need at least one solver arm", file=sys.stderr)
        return 2
    arms = []
    for solver in solvers:
        try:
            arm = run_arm(
                workload, solver, polish=args.polish,
                sweeps=args.sweeps, reads=args.reads,
                workers=args.workers,
            )
        except ValueError as error:
            print(f"arm {solver!r} failed: {error}", file=sys.stderr)
            return 2
        summary = arm["summary"]
        mean_cost = summary["mean_cost"]
        print(f"  arm {solver:<10} {summary['ok']}/{summary['queries']}"
              f" ok  {summary['total_seconds']:.2f}s"
              f"  mean cost {mean_cost:.4g}" if mean_cost is not None
              else f"  arm {solver:<10} no costs")
        arms.append(arm)

    problems: List[str] = []
    for arm in arms:
        problems.extend(arm_problems(arm))
    if args.json_out:
        write_suite(args.json_out, workload, arms)
        print(f"wrote {os.path.abspath(args.json_out)}")
    if args.bench_out:
        write_bench(args.bench_out, workload, arms)
        print(f"wrote {os.path.abspath(args.bench_out)}")
    if problems:
        for problem in problems:
            print(f"PLAN INVALID: {problem}", file=sys.stderr)
        return 1
    total = sum(len(arm["plans"]) for arm in arms)
    print(f"pipeline-bench OK: {total} plans across {len(arms)} arm(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
