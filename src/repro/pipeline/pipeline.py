"""The staged optimization pipeline driver.

An :class:`OptimizationPipeline` wires the four stages of
:mod:`repro.pipeline.stages` into one callable unit:

    pipeline = OptimizationPipeline("joinorder", solve="sa")
    plan = pipeline.optimize(graph)          # -> AnnotatedPlan

Failure semantics (regression-tested, see ``tests/pipeline``):

* A pre-check rejection produces a ``rejected`` plan whose provenance
  lists every failing predicate — it never raises.
* A formulation (or solver) that raises produces an ``infeasible``
  plan carrying the exception type/message in the stage report —
  one broken instance cannot take down a workload run.
* Unknown formulation or solver names raise ``ValueError`` at
  *construction* listing the registered alternatives.

When a :class:`~repro.service.SolveService` is attached, workload runs
compile every instance first and submit all solve jobs before
gathering, so PR 7's warm pool and same-model batch folding apply
across the whole batch. Service execution is bit-for-bit identical to
direct dispatch, preserving pipeline/direct parity.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compile import CompiledProblem, SolverConfig, available_solvers
from ..compile import solve as dispatch_solve
from ..telemetry import context as _context
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .formulations import get_formulation
from .plan import (
    STATUS_INFEASIBLE,
    STATUS_REJECTED,
    AnnotatedPlan,
    StageReport,
)
from .stages import (
    CLASSICAL,
    STAGE_ASSEMBLY,
    STAGE_FORMULATION,
    STAGE_PRE_CHECK,
    STAGE_SOLVE,
    FormulationStrategy,
    PlanAssembly,
    PreCheck,
    as_solve_strategy,
)


class OptimizationPipeline:
    """Pre-check → formulation → solve strategy → plan assembly.

    Parameters
    ----------
    formulation:
        A registered formulation name (``"joinorder"``, ``"mqo"``,
        ``"indexsel"``, ``"txsched"``, ``"partitioning"``) or a
        :class:`FormulationStrategy` instance.
    solve:
        A registry solver name, ``"classical"`` for the formulation's
        baseline, or a :class:`SolveStrategy` for full control
        (explicit config, repair hook).
    pre_check:
        Extra predicates merged *after* the formulation's own.
    assembly:
        Alternative :class:`PlanAssembly` (annotation/rendering hook).
    service:
        Optional :class:`~repro.service.SolveService`; solves route
        through its warm worker pool instead of in-process dispatch.
    """

    def __init__(self, formulation: Any, solve: Any = "sa", *,
                 pre_check: Optional[PreCheck] = None,
                 assembly: Optional[PlanAssembly] = None,
                 service: Any = None):
        if isinstance(formulation, str):
            formulation = get_formulation(formulation)
        if not isinstance(formulation, FormulationStrategy):
            raise TypeError(
                "formulation must be a registered name or a "
                f"FormulationStrategy, got {type(formulation).__name__}"
            )
        self.formulation = formulation
        self.solve_strategy = as_solve_strategy(solve)
        if not self.solve_strategy.is_classical:
            registered = available_solvers()
            if self.solve_strategy.solver not in registered:
                raise ValueError(
                    f"unknown solver {self.solve_strategy.solver!r}; "
                    f"registered: {', '.join(sorted(registered))}, "
                    f"plus {CLASSICAL!r} for the classical baseline"
                )
        self.pre_check = formulation.pre_check().merge(pre_check)
        self.assembly = assembly if assembly is not None else PlanAssembly()
        self.service = service

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Configuration summary (also embedded in plan provenance)."""
        return {
            "formulation": self.formulation.describe(),
            "solve": self.solve_strategy.describe(),
            "pre_check": [name for name, _ in self.pre_check.checks],
            "service": (None if self.service is None
                        else repr(self.service)),
        }

    # ------------------------------------------------------------------
    def optimize(self, instance: Any, *,
                 config: Optional[SolverConfig] = None,
                 provenance: Optional[Dict[str, Any]] = None
                 ) -> AnnotatedPlan:
        """Run one instance through all four stages.

        ``config`` overrides the solve strategy's config for this call
        only (``None`` keeps the strategy's, falling back to the
        formulation's deterministic default). ``provenance`` is merged
        into the plan's provenance (workload/instance keys).

        With the trace-context layer enabled (``REPRO_CONTEXT=1``),
        each call mints a pipeline-entry context: stage trace events,
        service job events, and worker-side spans all carry the same
        ``trace_id``, which is also recorded in the plan's provenance.
        """
        context = self._mint_context()
        with self._scoped(context):
            stages, problem, failure = self._pre_and_compile(
                instance, provenance
            )
            plan = failure if failure is not None else \
                self._solve_and_assemble(
                    instance, problem, stages, config, provenance
                )
        if context is not None:
            plan.provenance["trace_id"] = context.trace_id
        return plan

    def optimize_workload(self, instances: Sequence[Any], *,
                          configs: Optional[Sequence[
                              Optional[SolverConfig]]] = None,
                          provenance: Optional[Dict[str, Any]] = None
                          ) -> List[AnnotatedPlan]:
        """Run a batch of instances; order is preserved.

        Without a service this is a sequential loop over
        :meth:`optimize`. With one, all instances are pre-checked and
        compiled first, then every solve job is submitted before any
        result is gathered — the warm pool runs them concurrently and
        folds same-model jobs into single dispatches.
        """
        items = list(instances)
        if configs is None:
            configs = [None] * len(items)
        configs = list(configs)
        if len(configs) != len(items):
            raise ValueError(
                f"configs length {len(configs)} != "
                f"instances length {len(items)}"
            )

        def item_provenance(index: int) -> Dict[str, Any]:
            merged = dict(provenance or {})
            merged["workload_index"] = index
            return merged

        if self.service is None or self.solve_strategy.is_classical:
            return [
                self.optimize(instance, config=config,
                              provenance=item_provenance(index))
                for index, (instance, config)
                in enumerate(zip(items, configs))
            ]

        # Two-phase service path: compile everything, submit
        # everything, then gather — maximizing warm-pool concurrency
        # and cross-job batch folding.
        plans: List[Optional[AnnotatedPlan]] = [None] * len(items)
        pending: List[Tuple[int, Any, CompiledProblem,
                            List[StageReport],
                            Optional[SolverConfig]]] = []
        # One trace context per instance: the compile, submit, and
        # gather phases of an instance all run under the same trace_id
        # even though the loops are batched.
        contexts = {index: self._mint_context()
                    for index in range(len(items))}
        for index, (instance, config) in enumerate(zip(items, configs)):
            with self._scoped(contexts[index]):
                stages, problem, failure = self._pre_and_compile(
                    instance, item_provenance(index)
                )
            if failure is not None:
                plans[index] = failure
            else:
                pending.append((index, instance, problem, stages,
                                config))

        handles = []
        for index, instance, problem, stages, config in pending:
            started = perf_counter()
            resolved = self.solve_strategy.resolve_config(
                self.formulation, config
            )
            with self._scoped(contexts[index]):
                handles.append((started, self.service.submit(
                    problem, self.solve_strategy.solver, resolved,
                    repair=self.solve_strategy.repair, block=True,
                )))

        for (index, instance, problem, stages, config), \
                (started, handle) in zip(pending, handles):
            with self._scoped(contexts[index]):
                try:
                    result = handle.result()
                except Exception as exc:  # noqa: BLE001 — the plan
                    self._push(stages, self._error_report(
                        STAGE_SOLVE, exc, perf_counter() - started,
                        solver=self.solve_strategy.solver,
                    ))
                    plans[index] = self.assembly.failure(
                        self.formulation, self.solve_strategy,
                        STATUS_INFEASIBLE, stages,
                        item_provenance(index),
                    )
                    continue
                self._push(stages, StageReport(
                    STAGE_SOLVE, "ok", perf_counter() - started, {
                        "solver": self.solve_strategy.solver,
                        "via_service": True,
                        "energy": result.energy,
                    },
                ))
                plans[index] = self._assemble(
                    instance, result.solution, result.feasible, result,
                    stages, item_provenance(index),
                )
        for index, plan in enumerate(plans):
            if contexts[index] is not None and plan is not None:
                plan.provenance["trace_id"] = \
                    contexts[index].trace_id
        return plans

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _push(self, stages: List[StageReport],
              report: StageReport) -> None:
        """Append a stage report, mirroring it into metrics/trace."""
        stages.append(report)
        self._note_stage(report)

    def _note_stage(self, report: StageReport) -> None:
        """Observe one stage into ``pipeline_stage_seconds`` and the
        event trace. Both layers are off by default; the disabled cost
        is two attribute reads."""
        registry = _metrics.get_registry()
        if registry is not None:
            registry.histogram(
                "pipeline_stage_seconds",
                "wall clock per pipeline stage, by formulation",
                ("stage", "formulation"),
            ).labels(stage=report.stage,
                     formulation=self.formulation.name,
                     ).observe(report.seconds)
        tracer = _trace.get_tracer()
        if tracer is not None:
            tracer.complete(
                f"pipeline.{report.stage}",
                tracer.timestamp_us() - report.seconds * 1e6,
                category="stage",
                args={"status": report.status,
                      "formulation": self.formulation.name},
            )

    def _mint_context(self):
        """A fresh pipeline-entry context, or ``None`` when off."""
        state = _context.get_context_state()
        if state is None:
            return None
        return state.mint(stage="pipeline")

    @staticmethod
    def _scoped(context):
        """Activate ``context`` for a ``with`` block (no-op when off)."""
        state = _context.get_context_state()
        if state is None or context is None:
            return nullcontext()
        return state.activate(context)

    def _pre_and_compile(self, instance: Any,
                         provenance: Optional[Dict[str, Any]]
                         ) -> Tuple[List[StageReport],
                                    Optional[CompiledProblem],
                                    Optional[AnnotatedPlan]]:
        """Stages 1-2; returns (reports, problem, failure plan)."""
        stages: List[StageReport] = []
        started = perf_counter()
        check = self.pre_check.run(instance)
        self._push(stages, StageReport(
            STAGE_PRE_CHECK,
            "ok" if check.passed else "rejected",
            perf_counter() - started,
            {"checked": check.checked, "failures": check.failures},
        ))
        if not check.passed:
            return stages, None, self.assembly.failure(
                self.formulation, self.solve_strategy, STATUS_REJECTED,
                stages, provenance,
            )

        if self.solve_strategy.is_classical:
            self._push(stages, StageReport(
                STAGE_FORMULATION, "skipped", 0.0,
                {"reason": "classical baseline needs no compiled "
                           "problem"},
            ))
            return stages, None, None

        started = perf_counter()
        try:
            problem = self.formulation.compile(instance)
        except Exception as exc:  # noqa: BLE001 — becomes the plan
            self._push(stages, self._error_report(
                STAGE_FORMULATION, exc, perf_counter() - started,
            ))
            return stages, None, self.assembly.failure(
                self.formulation, self.solve_strategy,
                STATUS_INFEASIBLE, stages, provenance,
            )
        self._push(stages, StageReport(
            STAGE_FORMULATION, "ok", perf_counter() - started, {
                "problem": problem.name,
                "num_variables": problem.num_variables,
            },
        ))
        return stages, problem, None

    def _solve_and_assemble(self, instance: Any,
                            problem: Optional[CompiledProblem],
                            stages: List[StageReport],
                            config: Optional[SolverConfig],
                            provenance: Optional[Dict[str, Any]]
                            ) -> AnnotatedPlan:
        """Stages 3-4 for the in-process (non-workload-service) path."""
        started = perf_counter()
        try:
            if self.solve_strategy.is_classical:
                solution = self.formulation.classical_baseline(instance)
                feasible = self.formulation.feasible(instance, solution)
                result = None
                detail: Dict[str, Any] = {"solver": CLASSICAL}
            else:
                resolved = self.solve_strategy.resolve_config(
                    self.formulation, config
                )
                if self.service is not None:
                    result = self.service.submit(
                        problem, self.solve_strategy.solver, resolved,
                        repair=self.solve_strategy.repair, block=True,
                    ).result()
                else:
                    result = dispatch_solve(
                        problem, solver=self.solve_strategy.solver,
                        config=resolved,
                        repair=self.solve_strategy.repair,
                    )
                solution = result.solution
                feasible = result.feasible
                detail = {
                    "solver": self.solve_strategy.solver,
                    "via_service": self.service is not None,
                    "energy": result.energy,
                }
        except Exception as exc:  # noqa: BLE001 — becomes the plan
            self._push(stages, self._error_report(
                STAGE_SOLVE, exc, perf_counter() - started,
                solver=self.solve_strategy.solver,
            ))
            return self.assembly.failure(
                self.formulation, self.solve_strategy,
                STATUS_INFEASIBLE, stages, provenance,
            )
        self._push(stages, StageReport(
            STAGE_SOLVE, "ok", perf_counter() - started, detail
        ))
        return self._assemble(instance, solution, feasible, result,
                              stages, provenance)

    def _assemble(self, instance: Any, solution: Any, feasible: bool,
                  result: Any, stages: List[StageReport],
                  provenance: Optional[Dict[str, Any]]
                  ) -> AnnotatedPlan:
        started = perf_counter()
        try:
            plan = self.assembly.assemble(
                self.formulation, instance, self.solve_strategy,
                solution, feasible, stages, result=result,
                extra_provenance=provenance,
            )
        except Exception as exc:  # noqa: BLE001 — becomes the plan
            self._push(stages, self._error_report(
                STAGE_ASSEMBLY, exc, perf_counter() - started,
            ))
            return self.assembly.failure(
                self.formulation, self.solve_strategy,
                STATUS_INFEASIBLE, stages, provenance,
            )
        # The assembly stage's own report is appended post hoc — the
        # plan's provenance already rendered the earlier reports.
        report = StageReport(
            STAGE_ASSEMBLY, "ok", perf_counter() - started,
            {"status": plan.status},
        )
        plan.provenance["stages"].append(report.to_dict())
        self._note_stage(report)
        return plan

    @staticmethod
    def _error_report(stage: str, exc: BaseException, seconds: float,
                      **extra: Any) -> StageReport:
        detail = {"error_type": type(exc).__name__, "error": str(exc)}
        detail.update(extra)
        return StageReport(stage, "error", seconds, detail)

    def __repr__(self) -> str:
        return (
            f"OptimizationPipeline(formulation="
            f"{self.formulation.name!r}, "
            f"solver={self.solve_strategy.solver!r}, "
            f"service={'attached' if self.service else 'none'})"
        )
