"""The four pluggable pipeline stages.

PostBOUND-style staged optimization: a query/workload instance flows
through

1. :class:`PreCheck` — named predicates that decide whether a
   formulation supports the instance, each returning an *actionable*
   failure reason instead of a bare boolean;
2. :class:`FormulationStrategy` — the per-problem compiler (join
   ordering, MQO, index selection, transaction scheduling,
   partitioning) lowered to a :class:`~repro.compile.CompiledProblem`;
3. :class:`SolveStrategy` — a declarative choice of *how* to solve:
   any registry solver name, routed through a
   :class:`~repro.service.SolveService` warm pool when one is
   attached, or the formulation's classical baseline (the literal
   string ``"classical"``) — so mixed quantum/classical pipelines are
   plain data;
4. :class:`PlanAssembly` — decodes the solve output into an
   :class:`~repro.pipeline.plan.AnnotatedPlan` with cost estimates,
   a human-readable rendering, stage provenance and the convergence
   trace reference.

The stages are deliberately thin protocols: the concrete formulation
strategies live in :mod:`repro.pipeline.formulations`, the driver in
:mod:`repro.pipeline.pipeline`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from ..compile import CompiledProblem, SolveResult, SolverConfig
from .plan import (
    STATUS_INFEASIBLE,
    STATUS_OK,
    AnnotatedPlan,
    StageReport,
    json_safe,
)

#: Stage names as they appear in provenance, in pipeline order.
STAGE_PRE_CHECK = "pre_check"
STAGE_FORMULATION = "formulation"
STAGE_SOLVE = "solve"
STAGE_ASSEMBLY = "assembly"

#: Sentinel solver name selecting the formulation's classical baseline.
CLASSICAL = "classical"

#: A pre-check predicate: ``func(instance)`` returns ``None`` when the
#: check passes, or a human-actionable failure reason string.
Predicate = Callable[[Any], Optional[str]]


# ----------------------------------------------------------------------
# Stage 1: pre-check
# ----------------------------------------------------------------------
@dataclass
class PreCheckResult:
    """Outcome of running every predicate against one instance."""

    passed: bool
    failures: List[Dict[str, str]] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)

    @property
    def reasons(self) -> List[str]:
        return [failure["reason"] for failure in self.failures]

    @property
    def failed_checks(self) -> List[str]:
        return [failure["check"] for failure in self.failures]


class PreCheck:
    """An ordered set of named support predicates.

    Each check is ``(name, predicate)``; a predicate returns ``None``
    on success or a failure-reason string. Predicates that *raise* are
    reported as failures (with the exception text) rather than
    propagating — a broken check must never take the pipeline down.
    All predicates run even after a failure, so a rejection lists
    every violated requirement at once.
    """

    def __init__(self, checks: Iterable[Tuple[str, Predicate]] = ()):
        self.checks: List[Tuple[str, Predicate]] = list(checks)
        names = [name for name, _ in self.checks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate check names: {names}")

    def add(self, name: str, predicate: Predicate) -> "PreCheck":
        """Append a named predicate (chainable)."""
        if any(existing == name for existing, _ in self.checks):
            raise ValueError(f"duplicate check name: {name!r}")
        self.checks.append((name, predicate))
        return self

    def merge(self, other: Optional["PreCheck"]) -> "PreCheck":
        """A new PreCheck running this stage's checks then ``other``'s."""
        if other is None:
            return PreCheck(self.checks)
        return PreCheck(self.checks + other.checks)

    def run(self, instance: Any) -> PreCheckResult:
        failures: List[Dict[str, str]] = []
        checked: List[str] = []
        for name, predicate in self.checks:
            checked.append(name)
            try:
                reason = predicate(instance)
            except Exception as exc:  # noqa: BLE001 — reported, not raised
                reason = (f"check raised {type(exc).__name__}: {exc}")
            if reason is not None:
                failures.append({"check": name, "reason": str(reason)})
        return PreCheckResult(
            passed=not failures, failures=failures, checked=checked
        )

    def __len__(self) -> int:
        return len(self.checks)

    def __repr__(self) -> str:
        return f"PreCheck({[name for name, _ in self.checks]})"


# ----------------------------------------------------------------------
# Stage 2: formulation
# ----------------------------------------------------------------------
class FormulationStrategy(abc.ABC):
    """One database problem's route onto the shared compile/solve IR.

    Concrete strategies wrap the existing :mod:`repro.db` compilers
    (``JoinOrderQUBO``, ``MQOQUBO``, ...) so the pipeline dispatches
    the *identical* :class:`~repro.compile.CompiledProblem` and default
    :class:`~repro.compile.SolverConfig` the module-level ``solve_*``
    functions use — seeded solutions through the pipeline are
    bit-for-bit the direct ones.
    """

    #: Registry key (subclasses override).
    name: str = "abstract"
    #: One-line human description.
    description: str = ""

    #: Upper bound on compiled variables accepted by the pre-check;
    #: ``None`` disables the bound.
    max_variables: Optional[int] = None

    # -- required per-problem hooks ------------------------------------
    @abc.abstractmethod
    def instance_type(self) -> type:
        """The domain type instances must be (pre-check predicate)."""

    @abc.abstractmethod
    def num_variables(self, instance: Any) -> int:
        """Compiled variable count *without* compiling (pre-check)."""

    @abc.abstractmethod
    def compile(self, instance: Any) -> CompiledProblem:
        """Lower the instance to the shared IR."""

    @abc.abstractmethod
    def default_config(self) -> SolverConfig:
        """The module's deterministic default solver config."""

    @abc.abstractmethod
    def classical_baseline(self, instance: Any) -> Any:
        """Deterministic classical solution (the ``"classical"`` arm)."""

    @abc.abstractmethod
    def feasible(self, instance: Any, solution: Any) -> bool:
        """Whether a solution satisfies the instance's hard constraints."""

    @abc.abstractmethod
    def annotate(self, instance: Any, solution: Any) -> Dict[str, Any]:
        """Cost estimates for the assembled plan.

        Must include ``"cost"`` — the formulation's primary
        lower-is-better scalar (:mod:`repro.db.cost` C_out for join
        ordering, total plan cost for MQO, *negated* benefit for index
        selection, makespan for scheduling, cut weight for
        partitioning).
        """

    # -- optional hooks -------------------------------------------------
    def finalize(self, instance: Any, solution: Any) -> Any:
        """Post-solve refinement hook (e.g. 2-opt polish); identity by
        default. Runs inside plan assembly, before annotation."""
        return solution

    def render(self, instance: Any, solution: Any) -> Optional[str]:
        """Optional human-readable plan string."""
        return None

    def pre_check(self) -> PreCheck:
        """The formulation's support predicates.

        Base implementation: instance-type check plus the optional
        ``max_variables`` bound. Subclasses extend via
        ``super().pre_check().add(...)``.
        """
        expected = self.instance_type()

        def check_type(instance: Any) -> Optional[str]:
            if not isinstance(instance, expected):
                return (
                    f"{self.name} expects a {expected.__name__}, "
                    f"got {type(instance).__name__}"
                )
            return None

        def check_size(instance: Any) -> Optional[str]:
            if self.max_variables is None:
                return None
            needed = self.num_variables(instance)
            if needed > self.max_variables:
                return (
                    f"instance compiles to {needed} variables, over "
                    f"this strategy's max_variables={self.max_variables}"
                    f" — shrink the instance or raise the bound"
                )
            return None

        return PreCheck([
            (f"{self.name}.instance_type", check_type),
            (f"{self.name}.max_variables", check_size),
        ])

    def describe(self) -> Dict[str, Any]:
        """Provenance record of this strategy's identity and knobs."""
        return {
            "name": self.name,
            "description": self.description,
            "max_variables": self.max_variables,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Stage 3: solve strategy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveStrategy:
    """Declarative choice of how a compiled problem gets solved.

    ``solver`` is a registry name (``"sa"``, ``"exact"``, ...) or
    :data:`CLASSICAL` for the formulation's classical baseline.
    ``config=None`` means the formulation's deterministic default —
    exactly what the module-level ``solve_*`` functions use, keeping
    pipeline runs bit-for-bit comparable to direct ones.
    """

    solver: str = "sa"
    config: Optional[SolverConfig] = None
    repair: bool = False

    @property
    def is_classical(self) -> bool:
        return self.solver == CLASSICAL

    def resolve_config(self,
                       formulation: FormulationStrategy,
                       override: Optional[SolverConfig] = None
                       ) -> Optional[SolverConfig]:
        """Per-call override > strategy config > formulation default."""
        if self.is_classical:
            return None
        if override is not None:
            return override
        if self.config is not None:
            return self.config
        return formulation.default_config()

    def with_config(self, config: Optional[SolverConfig]
                    ) -> "SolveStrategy":
        return replace(self, config=config)

    def describe(self) -> Dict[str, Any]:
        return {
            "solver": self.solver,
            "config": (None if self.config is None
                       else json_safe(self.config)),
            "repair": self.repair,
        }


def as_solve_strategy(solve: Any) -> SolveStrategy:
    """Coerce ``str`` / ``SolveStrategy`` / ``None`` to a strategy."""
    if solve is None:
        return SolveStrategy()
    if isinstance(solve, SolveStrategy):
        return solve
    if isinstance(solve, str):
        return SolveStrategy(solver=solve)
    raise TypeError(
        "solve must be a solver name string or a SolveStrategy, "
        f"got {type(solve).__name__}"
    )


# ----------------------------------------------------------------------
# Stage 4: plan assembly
# ----------------------------------------------------------------------
class PlanAssembly:
    """Turns a solve outcome into an :class:`AnnotatedPlan`.

    Runs the formulation's ``finalize`` hook (polish), computes cost
    estimates and the rendering, derives the plan status from
    feasibility, and threads stage reports + solver provenance +
    caller-supplied identification (workload/instance keys) into the
    plan's ``provenance``.
    """

    def assemble(self,
                 formulation: FormulationStrategy,
                 instance: Any,
                 solve: SolveStrategy,
                 solution: Any,
                 feasible: bool,
                 stages: Sequence[StageReport],
                 result: Optional[SolveResult] = None,
                 extra_provenance: Optional[Dict[str, Any]] = None
                 ) -> AnnotatedPlan:
        solution = formulation.finalize(instance, solution)
        estimates = formulation.annotate(instance, solution)
        if "cost" not in estimates:
            raise ValueError(
                f"{formulation.name}.annotate() must include 'cost'"
            )
        rendering = formulation.render(instance, solution)
        status = STATUS_OK if feasible else STATUS_INFEASIBLE
        provenance: Dict[str, Any] = {
            "formulation": formulation.describe(),
            "solve": solve.describe(),
            "stages": [report.to_dict() for report in stages],
        }
        if result is not None:
            provenance["solver"] = json_safe(result.provenance)
        if extra_provenance:
            provenance.update(json_safe(extra_provenance))
        return AnnotatedPlan(
            formulation=formulation.name,
            solver=solve.solver,
            status=status,
            solution=solution,
            feasible=bool(feasible),
            cost=float(estimates["cost"]),
            estimates=estimates,
            plan=rendering,
            provenance=provenance,
            convergence=(None if result is None else result.convergence),
            result=result,
        )

    def failure(self,
                formulation: FormulationStrategy,
                solve: SolveStrategy,
                status: str,
                stages: Sequence[StageReport],
                extra_provenance: Optional[Dict[str, Any]] = None
                ) -> AnnotatedPlan:
        """A rejected/infeasible plan whose provenance says why."""
        provenance: Dict[str, Any] = {
            "formulation": formulation.describe(),
            "solve": solve.describe(),
            "stages": [report.to_dict() for report in stages],
        }
        if extra_provenance:
            provenance.update(json_safe(extra_provenance))
        return AnnotatedPlan(
            formulation=formulation.name,
            solver=None,
            status=status,
            provenance=provenance,
        )
