"""Live labeled metrics: counters, gauges, histograms, timers.

The :class:`Collector` (PR 1) aggregates *named scalars* — one number
per key. Serving-layer questions ("p95 queue wait", "cache hit ratio
by outcome", "per-solver execution time") need *labeled instruments
with distributions*, which is what this module provides:

* :class:`Counter` — monotonically increasing totals, optionally
  split by label values (``service_jobs_total{status="timeout"}``).
* :class:`Gauge` — last-written (or max-tracked) values.
* :class:`Histogram` — fixed log-spaced buckets **plus** a bounded
  reservoir of raw observations, so exports carry both
  Prometheus-style bucket counts and exact p50/p95/p99 for runs that
  fit the reservoir.
* :class:`Timer` — a context manager observing elapsed seconds into a
  histogram series.

Everything hangs off a thread-safe :class:`MetricsRegistry` with
snapshot/merge support (worker-process registries fold into the
parent, mirroring :meth:`Collector.merge_snapshot`) and two export
formats: the Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`) and ``repro-metrics/v1`` JSON
(:meth:`MetricsRegistry.to_json`) consumed by ``python -m
repro.experiments metrics-report``.

The warm-pool service layer (PR 7) contributes its own instrument
family on top of the original job/queue/cache set:
``service_worker_respawns_total`` (reap-and-replace events; exported
as an explicit 0 on healthy runs), ``service_batch_folds_total``
(cross-job folds of same-model submissions),
``service_pool_dispatch_total{kind="warm"|"cold"}`` (worker model
cache hits vs shm attaches), ``service_shm_bytes_total`` and
``service_shm_segments`` (shared-memory transport volume and live
segments). Worker registries merge at pool *drain*, so
``service_metrics_merges_total`` counts drained workers, not jobs.

Like the collector and the tracer, metrics are **off by default and
cheap when off**: instrumented hot paths fetch :func:`get_registry`
once per *operation* (a solve, a batch run, a service dispatch) and
fall through when it is ``None``, so the disabled cost is one function
call + identity check per operation, never per sweep or per gate.

Enable with ``REPRO_METRICS=1`` or::

    from repro.telemetry import metrics
    registry = metrics.enable_metrics()
    ... instrumented code ...
    print(registry.to_prometheus())

Run as a script to validate a Prometheus text file (the CI format
checker)::

    python -m repro.telemetry.metrics metrics.prom
"""

from __future__ import annotations

import json
import math
import random
import re
import threading
import time
from bisect import bisect_left
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

ENV_VAR = "REPRO_METRICS"

#: Schema tag carried by every registry snapshot / JSON export.
METRICS_SCHEMA = "repro-metrics/v1"

#: Default histogram buckets: log-spaced upper bounds covering 100us
#: to 500s with a 1/2.5/5 mantissa ladder — wide enough for queue
#: waits and solver runtimes alike. An implicit +Inf bucket catches
#: everything beyond.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-4, 3)
    for mantissa in (1.0, 2.5, 5.0)
)

#: Per-series reservoir capacity. Quantiles are exact while a series
#: has at most this many observations; beyond it the reservoir decays
#: into a uniform sample (Algorithm R) and quantiles are estimates.
RESERVOIR_SIZE = 2048

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def quantile(sorted_values: Sequence[float], q: float
             ) -> Optional[float]:
    """Linear-interpolation quantile of pre-sorted values."""
    if not sorted_values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile fraction must be in [0, 1]")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


class Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_series", "_start", "elapsed")

    def __init__(self, series: "HistogramSeries"):
        self._series = series
        self._start = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        self._series.observe(self.elapsed)
        return False


# ----------------------------------------------------------------------
# Per-label-set series (the objects hot paths actually update)
# ----------------------------------------------------------------------
class CounterSeries:
    """One label set of a :class:`Counter`."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeSeries:
    """One label set of a :class:`Gauge`."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Keep the running maximum (peak-tracking gauges)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramSeries:
    """One label set of a :class:`Histogram`: buckets + reservoir."""

    __slots__ = ("_lock", "_buckets", "_bucket_counts", "_count",
                 "_sum", "_reservoir", "_rng")

    def __init__(self, buckets: Tuple[float, ...]):
        self._lock = threading.Lock()
        self._buckets = buckets
        # Per-bucket (not cumulative) counts; the final slot is the
        # overflow bucket (observations above the last bound).
        self._bucket_counts = [0] * (len(buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._reservoir: List[float] = []
        # Deterministic reservoir decay so snapshots of the same run
        # reproduce bit for bit.
        self._rng = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._bucket_counts[bisect_left(self._buckets, value)] += 1
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:  # Algorithm R: uniform sample over all observations
                slot = self._rng.randrange(self._count)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    def time(self) -> Timer:
        """A :class:`Timer` observing into this series on exit."""
        return Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Reservoir quantile (exact while the reservoir holds all
        observations, a uniform-sample estimate beyond)."""
        with self._lock:
            values = sorted(self._reservoir)
        return quantile(values, q)

    def percentiles(self) -> Dict[str, Optional[float]]:
        with self._lock:
            values = sorted(self._reservoir)
        return {
            "p50": quantile(values, 0.50),
            "p95": quantile(values, 0.95),
            "p99": quantile(values, 0.99),
        }

    def _snapshot(self, include_reservoir: bool) -> Dict[str, Any]:
        with self._lock:
            entry: Dict[str, Any] = {
                "count": self._count,
                "sum": self._sum,
                "bucket_counts": list(self._bucket_counts),
            }
            values = sorted(self._reservoir)
        entry.update(
            p50=quantile(values, 0.50),
            p95=quantile(values, 0.95),
            p99=quantile(values, 0.99),
        )
        if include_reservoir:
            entry["reservoir"] = values
        return entry

    def _merge(self, entry: Mapping[str, Any]) -> None:
        counts = entry.get("bucket_counts") or []
        reservoir = entry.get("reservoir") or []
        with self._lock:
            self._count += int(entry.get("count", 0))
            self._sum += float(entry.get("sum", 0.0))
            if len(counts) == len(self._bucket_counts):
                for index, extra in enumerate(counts):
                    self._bucket_counts[index] += int(extra)
            for value in reservoir:
                if len(self._reservoir) < RESERVOIR_SIZE:
                    self._reservoir.append(float(value))
                else:
                    slot = self._rng.randrange(len(self._reservoir))
                    self._reservoir[slot] = float(value)


_SERIES_TYPES = {
    "counter": CounterSeries,
    "gauge": GaugeSeries,
}


# ----------------------------------------------------------------------
# Instruments (name + help + labelnames -> series per label set)
# ----------------------------------------------------------------------
class _Instrument:
    """Base labeled instrument: a family of per-label-set series."""

    kind = "?"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _new_series(self):
        return _SERIES_TYPES[self.kind]()

    def labels(self, **labelvalues: Any):
        """The series for one label set (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._new_series()
        return series

    def _unlabeled(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {list(self.labelnames)}; "
                "call .labels(...) first"
            )
        return self.labels()

    def series_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        """Total across every label set."""
        return sum(series.value for _, series in self.series_items())


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    def set_max(self, value: float) -> None:
        self._unlabeled().set_max(value)

    @property
    def value(self) -> float:
        series = self._unlabeled()
        return series.value


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets if buckets is not None
                                          else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds

    def _new_series(self):
        return HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    def time(self) -> Timer:
        return self._unlabeled().time()


_INSTRUMENT_TYPES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Thread-safe named registry of labeled instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create:
    repeated calls with the same name return the same instrument, and
    conflicting re-registration (different kind, labelnames or
    buckets) raises ``ValueError`` — metric identity must be stable
    for exports to make sense.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self.created_at = time.time()

    def _get_or_create(self, kind: str, name: str, help: str,
                       labelnames: Sequence[str],
                       **kwargs: Any) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = _INSTRUMENT_TYPES[kind](
                    name, help, labelnames, **kwargs)
                self._instruments[name] = instrument
                return instrument
        if instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {kind}"
            )
        if instrument.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{list(instrument.labelnames)}, not {list(labelnames)}"
            )
        if kind == "histogram":
            buckets = kwargs.get("buckets")
            if (buckets is not None
                    and tuple(float(b) for b in buckets)
                    != instrument.buckets):
                raise ValueError(
                    f"metric {name!r} already registered with "
                    "different buckets"
                )
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None
                  ) -> Histogram:
        return self._get_or_create("histogram", name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def instrument_names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # -- export ----------------------------------------------------------
    def snapshot(self, include_reservoir: bool = True
                 ) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) view of every instrument.

        Histogram series always include precomputed p50/p95/p99;
        ``include_reservoir=False`` drops the raw reservoir values
        (the :class:`~repro.telemetry.sampler.MetricsSampler` uses
        this to keep periodic JSONL lines small).
        """
        with self._lock:
            instruments = list(self._instruments.values())
        snap: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "unix_time": time.time(),
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for instrument in instruments:
            if instrument.kind == "histogram":
                entry: Dict[str, Any] = {
                    "help": instrument.help,
                    "labelnames": list(instrument.labelnames),
                    "buckets": list(instrument.buckets),
                    "series": [
                        {"labels": instrument._label_dict(key),
                         **series._snapshot(include_reservoir)}
                        for key, series in instrument.series_items()
                    ],
                }
                snap["histograms"][instrument.name] = entry
            else:
                section = ("counters" if instrument.kind == "counter"
                           else "gauges")
                snap[section][instrument.name] = {
                    "help": instrument.help,
                    "labelnames": list(instrument.labelnames),
                    "series": [
                        {"labels": instrument._label_dict(key),
                         "value": series.value}
                        for key, series in instrument.series_items()
                    ],
                }
        return snap

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Worker processes run with their own registry and ship the
        snapshot back with the result; the parent merges so one export
        covers the fleet. Counters and histogram bucket counts / sums
        add per label set, gauges last-write-wins, reservoirs merge
        bounded (beyond capacity the merge keeps a uniform sample).
        """
        for name, entry in (snapshot.get("counters") or {}).items():
            counter = self.counter(name, entry.get("help", ""),
                                   entry.get("labelnames", ()))
            for series in entry.get("series", []):
                value = float(series.get("value", 0.0))
                if value:
                    counter.labels(**series.get("labels", {})).inc(value)
        for name, entry in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name, entry.get("help", ""),
                               entry.get("labelnames", ()))
            for series in entry.get("series", []):
                gauge.labels(**series.get("labels", {})).set(
                    float(series.get("value", 0.0)))
        for name, entry in (snapshot.get("histograms") or {}).items():
            histogram = self.histogram(name, entry.get("help", ""),
                                       entry.get("labelnames", ()),
                                       buckets=entry.get("buckets"))
            for series in entry.get("series", []):
                target = histogram.labels(**series.get("labels", {}))
                target._merge(series)

    def to_json(self, indent: Optional[int] = 2,
                include_reservoir: bool = True) -> str:
        """The snapshot as a ``repro-metrics/v1`` JSON document."""
        return json.dumps(self.snapshot(include_reservoir),
                          indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Histograms render the standard cumulative ``_bucket`` series
        (with ``le`` upper bounds and a ``+Inf`` catch-all) plus
        ``_sum`` and ``_count``, preserving the invariants scrapers
        rely on: bucket counts non-decreasing in ``le`` and the
        ``+Inf`` bucket equal to ``_count``.
        """
        lines: List[str] = []
        snap = self.snapshot(include_reservoir=False)
        for kind, section in (("counter", "counters"),
                              ("gauge", "gauges")):
            for name in sorted(snap[section]):
                entry = snap[section][name]
                if entry["help"]:
                    lines.append(f"# HELP {name} "
                                 f"{_escape_help(entry['help'])}")
                lines.append(f"# TYPE {name} {kind}")
                for series in entry["series"]:
                    lines.append(
                        f"{name}{_format_labels(series['labels'])} "
                        f"{_format_value(series['value'])}"
                    )
        for name in sorted(snap["histograms"]):
            entry = snap["histograms"][name]
            if entry["help"]:
                lines.append(f"# HELP {name} "
                             f"{_escape_help(entry['help'])}")
            lines.append(f"# TYPE {name} histogram")
            bounds = entry["buckets"]
            for series in entry["series"]:
                labels = series["labels"]
                cumulative = 0
                for bound, bucket in zip(bounds,
                                         series["bucket_counts"]):
                    cumulative += bucket
                    le_labels = {**labels, "le": _format_le(bound)}
                    lines.append(
                        f"{name}_bucket{_format_labels(le_labels)} "
                        f"{cumulative}"
                    )
                cumulative += series["bucket_counts"][-1]
                inf_labels = {**labels, "le": "+Inf"}
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} "
                    f"{cumulative}"
                )
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{_format_value(series['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{series['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()


# ----------------------------------------------------------------------
# Prometheus text formatting / validation
# ----------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_le(bound: float) -> str:
    return format(bound, ".10g")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return format(value, ".10g")


_SAMPLE_PATTERN = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r"\s+(-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|Inf)|\+Inf|NaN)$"
)
_LABEL_PAIR_PATTERN = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _parse_sample_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def validate_prometheus_text(text: str) -> List[str]:
    """Structural checks on a Prometheus text exposition document.

    Returns a list of problems (empty when the document is valid):
    unknown/missing ``# TYPE`` declarations, unparsable sample lines,
    non-finite counter values — and for histograms, the scrape
    invariants: ``le`` bounds strictly increasing, cumulative bucket
    counts non-decreasing, a ``+Inf`` bucket present and equal to the
    series ``_count``, and a finite ``_sum``.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    # (base name, frozen labels minus le) -> list of (le, count)
    buckets: Dict[Tuple[str, Any], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Any], float] = {}
    sums: Dict[Tuple[str, Any], float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram",
                                                   "summary",
                                                   "untyped"):
                problems.append(f"line {number}: malformed TYPE: {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_PATTERN.match(line)
        if match is None:
            problems.append(f"line {number}: unparsable sample: {line!r}")
            continue
        name, label_body, value_text = match.groups()
        labels = dict(_LABEL_PAIR_PATTERN.findall(label_body or ""))
        value = _parse_sample_value(value_text)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[:-len(suffix)] if name.endswith(suffix) else None
            if stripped is not None and types.get(stripped) == "histogram":
                base = stripped
                break
        declared = types.get(base)
        if declared is None:
            problems.append(
                f"line {number}: sample {name!r} has no # TYPE "
                "declaration"
            )
            continue
        if declared == "counter" and not (math.isfinite(value)
                                          and value >= 0):
            problems.append(
                f"line {number}: counter {name!r} has invalid value "
                f"{value_text}"
            )
        if declared == "histogram":
            series_labels = {key: val for key, val in labels.items()
                             if key != "le"}
            key = (base, tuple(sorted(series_labels.items())))
            if name.endswith("_bucket"):
                le_text = labels.get("le")
                if le_text is None:
                    problems.append(
                        f"line {number}: histogram bucket without "
                        f"'le' label: {line!r}"
                    )
                    continue
                buckets.setdefault(key, []).append(
                    (_parse_sample_value(le_text), value))
            elif name.endswith("_count"):
                counts[key] = value
            elif name.endswith("_sum"):
                sums[key] = value
            elif name == base:
                problems.append(
                    f"line {number}: bare histogram sample "
                    f"{name!r} (expected _bucket/_sum/_count)"
                )
    for key, series in buckets.items():
        name, labels = key
        where = f"histogram {name!r} {dict(labels) or ''}".rstrip()
        les = [le for le, _ in series]
        if les != sorted(les) or len(set(les)) != len(les):
            problems.append(f"{where}: 'le' bounds not strictly "
                            "increasing")
        values = [count for _, count in series]
        if any(later < earlier for earlier, later
               in zip(values, values[1:])):
            problems.append(f"{where}: cumulative bucket counts "
                            "decrease")
        if not les or not math.isinf(les[-1]):
            problems.append(f"{where}: missing '+Inf' bucket")
        elif key in counts and values[-1] != counts[key]:
            problems.append(
                f"{where}: '+Inf' bucket {values[-1]:g} != _count "
                f"{counts[key]:g}"
            )
        if key not in counts:
            problems.append(f"{where}: missing _count sample")
        if key not in sums:
            problems.append(f"{where}: missing _sum sample")
        elif not math.isfinite(sums[key]):
            problems.append(f"{where}: _sum is not finite")
    return problems


# ----------------------------------------------------------------------
# Global registry (single-attribute guard, mirroring the collector)
# ----------------------------------------------------------------------
_registry: Optional[MetricsRegistry] = None


def enable_metrics(registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Install (and return) the global registry; metrics flow after."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


def disable_metrics() -> None:
    """Remove the global registry; instrumented code reverts to no-ops."""
    global _registry
    _registry = None


def is_metrics_enabled() -> bool:
    return _registry is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or None when metrics are disabled.

    Hot paths fetch this once per operation and branch on it, so the
    disabled cost is a single call + identity check.
    """
    return _registry


def enable_from_env(env_var: str = ENV_VAR
                    ) -> Optional[MetricsRegistry]:
    """Enable metrics when the environment variable opts in."""
    import os

    if os.environ.get(env_var, "").strip().lower() in {"1", "true",
                                                       "yes", "on"}:
        return enable_metrics()
    return None


# ----------------------------------------------------------------------
# CLI: validate a Prometheus text file (used by CI)
# ----------------------------------------------------------------------
def main(argv: Optional[Iterable[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.metrics",
        description="Validate a Prometheus text exposition file "
                    "(format + histogram invariants).",
    )
    parser.add_argument("path", help="Prometheus text file")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    problems = validate_prometheus_text(text)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    samples = sum(1 for line in text.splitlines()
                  if line and not line.startswith("#"))
    families = sum(1 for line in text.splitlines()
                   if line.startswith("# TYPE "))
    print(f"{args.path}: valid Prometheus exposition "
          f"({families} metric families, {samples} samples)")
    return 0


enable_from_env()


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    import sys

    sys.exit(main())
