"""Event-level tracing: a timeline of *when* time was spent.

The :class:`Collector` answers "how much, how often"; the
:class:`Tracer` answers "when, in what order, on which thread". It
records timestamped begin/end span events, instant events, complete
events and counter samples into a bounded ring buffer, and exports the
Chrome ``trace_event`` JSON format — load the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` to see the run as a
flame chart — plus JSON lines for programmatic diffing.

Like the collector, tracing is **off by default and cheap when off**:
instrumented code fetches the global tracer once per operation
(:func:`get_tracer`) and falls through to no-ops when it is ``None``.
When a collector is also enabled, every :meth:`Collector.span`
activation is mirrored as a begin/end event pair automatically, so the
whole existing span hierarchy (experiments, solvers, simulator runs)
lands on the timeline without touching call sites.

Memory is sampled at span boundaries (throttled): peak RSS via
``resource.getrusage`` and, when ``trace_malloc=True``, the
``tracemalloc`` current/peak heap — emitted as Chrome counter events
that render as a memory track under the timeline.

Usage::

    from repro import telemetry
    tracer = telemetry.enable_tracing()
    ... instrumented code ...
    tracer.write_chrome_trace("out.json")    # open in Perfetto
    # or: python -m repro.experiments E8 --trace out.json
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

try:  # not available on every platform (e.g. Windows)
    import resource
except ImportError:  # pragma: no cover - linux container always has it
    resource = None  # type: ignore[assignment]

import tracemalloc

from . import context as _context

#: Default ring-buffer capacity; oldest events drop past this point so
#: memory stays bounded no matter how long the traced run is.
MAX_TRACE_EVENTS = 200_000

#: Minimum microseconds between memory samples, so span-heavy code
#: does not turn the timeline into a wall of counter events.
MEMORY_SAMPLE_INTERVAL_US = 1_000.0


def _peak_rss_kb() -> Optional[float]:
    """Peak resident set size in KiB, or None when unavailable."""
    if resource is None:
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class _TraceSpanHandle:
    """Context manager emitting one begin/end event pair."""

    __slots__ = ("_tracer", "name", "category", "args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_TraceSpanHandle":
        self._tracer.begin(self.name, category=self.category,
                           args=self.args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.end(self.name, category=self.category)
        return False


class Tracer:
    """Thread-safe, ring-buffered event recorder.

    Parameters
    ----------
    max_events:
        Ring-buffer capacity; the oldest events are dropped beyond it
        (:attr:`dropped_events` counts the casualties).
    sample_memory:
        Sample process memory at span boundaries (throttled to one
        sample per :data:`MEMORY_SAMPLE_INTERVAL_US`).
    trace_malloc:
        Additionally start :mod:`tracemalloc` and include the traced
        heap current/peak in memory samples. Off by default because
        tracemalloc slows every allocation.
    """

    def __init__(self, max_events: int = MAX_TRACE_EVENTS,
                 sample_memory: bool = True,
                 trace_malloc: bool = False):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max_events)
        self._appended = 0
        self._pid = os.getpid()
        self._epoch_ns = time.perf_counter_ns()
        self._last_memory_sample_us = -MEMORY_SAMPLE_INTERVAL_US
        self.max_events = max_events
        self.sample_memory = sample_memory
        self.trace_malloc = trace_malloc
        self.created_at = time.time()
        self._started_tracemalloc = False
        if trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # -- clock -----------------------------------------------------------
    def timestamp_us(self) -> float:
        """Microseconds since this tracer was created (monotonic)."""
        return (time.perf_counter_ns() - self._epoch_ns) / 1_000.0

    @property
    def epoch_ns(self) -> int:
        """The ``perf_counter_ns`` instant timestamps are relative to.

        ``perf_counter`` is system-wide monotonic on the platforms this
        library targets, so a child process's events can be shifted
        onto the parent's timeline by the difference of the two epochs
        (see :meth:`merge_events`).
        """
        return self._epoch_ns

    # -- event emission --------------------------------------------------
    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)
            self._appended += 1

    def _emit(self, phase: str, name: str, category: str,
              args: Optional[Dict[str, Any]] = None,
              ts: Optional[float] = None,
              extra: Optional[Dict[str, Any]] = None) -> None:
        context = _context.current_context()
        if context is not None:
            annotated = dict(args) if args else {}
            for key, value in context.annotation().items():
                annotated.setdefault(key, value)
            args = annotated
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": phase,
            "ts": self.timestamp_us() if ts is None else ts,
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        if extra:
            event.update(extra)
        self._append(event)

    def begin(self, name: str, category: str = "span",
              args: Optional[Dict[str, Any]] = None) -> None:
        """Open a duration event (Chrome ``B`` phase)."""
        self._emit("B", name, category, args)
        self._maybe_sample_memory()

    def end(self, name: str, category: str = "span",
            args: Optional[Dict[str, Any]] = None) -> None:
        """Close the innermost duration event with this name (``E``)."""
        self._emit("E", name, category, args)
        self._maybe_sample_memory()

    def instant(self, name: str, category: str = "event",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Zero-duration marker (``I``, thread scope)."""
        self._emit("I", name, category, args, extra={"s": "t"})

    def complete(self, name: str, start_us: float,
                 category: str = "span",
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Self-contained duration event (``X``) started at
        ``start_us`` (a prior :meth:`timestamp_us`) and ending now."""
        duration = max(self.timestamp_us() - start_us, 0.0)
        self._emit("X", name, category, args, ts=start_us,
                   extra={"dur": duration})

    def counter(self, name: str, values: Dict[str, float],
                category: str = "counter") -> None:
        """Counter sample (``C``); renders as a track in Perfetto."""
        self._emit("C", name, category, dict(values))

    def span(self, name: str, category: str = "span",
             args: Optional[Dict[str, Any]] = None) -> _TraceSpanHandle:
        """Context manager emitting a begin/end pair around its body."""
        return _TraceSpanHandle(self, name, category, args)

    # -- memory sampling -------------------------------------------------
    def _maybe_sample_memory(self) -> None:
        if not self.sample_memory:
            return
        now = self.timestamp_us()
        with self._lock:
            if now - self._last_memory_sample_us < MEMORY_SAMPLE_INTERVAL_US:
                return
            self._last_memory_sample_us = now
        values: Dict[str, float] = {}
        rss = _peak_rss_kb()
        if rss is not None:
            values["peak_rss_kb"] = rss
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            values["tracemalloc_current_kb"] = current / 1024.0
            values["tracemalloc_peak_kb"] = peak / 1024.0
        if values:
            self._emit("C", "memory", "memory", values, ts=now)

    # -- cross-process merge ---------------------------------------------
    def merge_events(self, events: List[Dict[str, Any]],
                     epoch_ns: Optional[int] = None) -> None:
        """Inject another tracer's events into this ring buffer.

        ``events`` is a list of raw event dicts (a worker tracer's
        :meth:`events` snapshot, shipped across the process boundary);
        ``epoch_ns`` is that tracer's :attr:`epoch_ns`. Timestamps are
        shifted by the epoch difference so child events land at their
        true position on this tracer's timeline. Events keep their
        original ``pid``/``tid``, so Perfetto renders each worker as
        its own process track.
        """
        offset_us = (0.0 if epoch_ns is None
                     else (epoch_ns - self._epoch_ns) / 1_000.0)
        with self._lock:
            for event in events:
                shifted = dict(event)
                shifted["ts"] = float(shifted.get("ts", 0.0)) + offset_us
                self._events.append(shifted)
                self._appended += 1

    # -- introspection / export ------------------------------------------
    @property
    def event_count(self) -> int:
        """Events currently held in the ring buffer."""
        with self._lock:
            return len(self._events)

    @property
    def dropped_events(self) -> int:
        """Events evicted from the ring buffer so far."""
        with self._lock:
            return self._appended - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the buffered events, sorted by timestamp.

        Sorting makes the export monotonic even when threads interleave
        their appends out of timestamp order.
        """
        with self._lock:
            snapshot = list(self._events)
        return sorted(snapshot, key=lambda event: event["ts"])

    def to_chrome_trace(self, metadata: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
        """The buffered events as a Chrome ``trace_event`` document.

        The result loads directly in Perfetto / ``chrome://tracing``.
        ``metadata`` (e.g. a provenance record) rides along in the
        top-level ``metadata`` object.
        """
        buffered = self.events()
        pids = {self._pid} | {event.get("pid", self._pid)
                              for event in buffered}
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": ("repro" if pid == self._pid
                              else f"repro worker {pid}")},
        } for pid in sorted(pids)]
        events.extend(buffered)
        document: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "dropped_events": self.dropped_events,
                **(metadata or {}),
            },
        }
        return document

    def write_chrome_trace(self, path: str,
                           metadata: Optional[Dict[str, Any]] = None
                           ) -> str:
        """Write :meth:`to_chrome_trace` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(metadata), handle)
            handle.write("\n")
        return path

    def to_jsonl(self) -> str:
        """Buffered events as JSON lines, one event per line."""
        return "\n".join(json.dumps(event, sort_keys=True)
                         for event in self.events())

    def clear(self) -> None:
        """Drop all buffered events (the epoch is left untouched)."""
        with self._lock:
            self._events.clear()
            self._appended = 0

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False


# ----------------------------------------------------------------------
# Global tracer (the single-attribute guard, mirroring the collector)
# ----------------------------------------------------------------------
_tracer: Optional[Tracer] = None


def enable_tracing(tracer: Optional[Tracer] = None, **kwargs: Any
                   ) -> Tracer:
    """Install (and return) the global tracer; events flow after this.

    ``kwargs`` are forwarded to the :class:`Tracer` constructor when no
    instance is supplied.
    """
    global _tracer
    _tracer = tracer if tracer is not None else Tracer(**kwargs)
    return _tracer


def disable_tracing() -> None:
    """Remove the global tracer; instrumented code reverts to no-ops."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = None


def is_tracing() -> bool:
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or None when tracing is disabled.

    Hot paths fetch this once per operation and branch on it, so the
    disabled cost is a single call + identity check.
    """
    return _tracer
