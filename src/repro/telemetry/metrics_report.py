"""``metrics-report``: render a metrics snapshot as a text dashboard.

Accepts any of the shapes the metrics layer writes:

* a raw ``repro-metrics/v1`` snapshot (``MetricsRegistry.to_json``,
  ``serve-bench --metrics-json``);
* a wrapper document with a ``"metrics"`` key (sampler lines,
  ``serve-bench --json-out`` documents);
* a sampler JSONL file — the last line is used unless ``--line N``
  picks another (1-based).

With two paths, the second is the baseline and the dashboard shows
deltas (candidate value with ``Δ`` against the baseline) — useful for
"what did this workload add" questions against a pre-run snapshot.
Unless ``--no-health`` is given, the default SLO ruleset (or
``--slo FILE``) is evaluated against the candidate snapshot and the
health report is appended; ``--fail-on fail`` (or ``warn``) turns the
health status into the exit code for CI.

Wired as ``python -m repro.experiments metrics-report``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, Optional

from . import health as health_mod
from .metrics import METRICS_SCHEMA


def load_snapshot(path: str, line: Optional[int] = None
                  ) -> Dict[str, Any]:
    """Load a metrics snapshot from JSON or sampler JSONL."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.strip()
    if not stripped:
        raise ValueError(f"{path}: empty file")
    try:
        document = json.loads(stripped)
    except json.JSONDecodeError:
        # Not one JSON document: treat as JSONL (one document per line).
        lines = [row for row in stripped.splitlines() if row.strip()]
        if line is not None:
            if not 1 <= line <= len(lines):
                raise ValueError(
                    f"{path}: --line {line} out of range "
                    f"(1..{len(lines)})"
                )
            row = lines[line - 1]
        else:
            row = lines[-1]
        document = json.loads(row)
    else:
        if line is not None and line != 1:
            raise ValueError(
                f"{path}: --line only applies to JSONL files"
            )
    return _unwrap(document, path)


def _unwrap(document: Any, path: str) -> Dict[str, Any]:
    if not isinstance(document, Mapping):
        raise ValueError(f"{path}: not a JSON object")
    if document.get("schema") == METRICS_SCHEMA:
        return dict(document)
    inner = document.get("metrics")
    if isinstance(inner, Mapping) and inner.get("schema") == METRICS_SCHEMA:
        return dict(inner)
    raise ValueError(
        f"{path}: no {METRICS_SCHEMA!r} snapshot found "
        "(expected a registry snapshot, a document with a 'metrics' "
        "key, or sampler JSONL)"
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _format_quantity(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not float(value).is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def _seconds_like(name: str) -> bool:
    return name.endswith("_seconds") or "_seconds_" in name


def _format_observation(name: str, value: Optional[float]) -> str:
    return (_format_seconds(value) if _seconds_like(name)
            else _format_quantity(value))


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f"{key}={value}"
                    for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _aligned(rows: List[List[str]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    widths = [max(len(row[column]) for row in rows)
              for column in range(len(rows[0]))]
    return [
        indent + "  ".join(cell.ljust(widths[column])
                           for column, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def _series_index(entry: Mapping[str, Any]) -> Dict[Any, Mapping[str, Any]]:
    index: Dict[Any, Mapping[str, Any]] = {}
    for series in entry.get("series", []):
        key = tuple(sorted((series.get("labels") or {}).items()))
        index[key] = series
    return index


def render_dashboard(snapshot: Mapping[str, Any],
                     baseline: Optional[Mapping[str, Any]] = None
                     ) -> str:
    """The text dashboard for one snapshot (optionally vs a baseline)."""
    lines = [f"metrics report ({snapshot.get('schema', '?')})"]
    if baseline is not None:
        lines[0] += "  [delta vs baseline]"

    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = [["name", "count", "mean", "p50", "p95", "p99"]]
        for name in sorted(histograms):
            entry = histograms[name]
            base_index = _series_index(
                (baseline or {}).get("histograms", {}).get(name, {}))
            for series in entry.get("series", []):
                key = tuple(sorted(
                    (series.get("labels") or {}).items()))
                count = series.get("count", 0)
                count_cell = _format_quantity(count)
                if baseline is not None:
                    base_count = base_index.get(key, {}).get("count", 0)
                    count_cell += f" (Δ{count - base_count:+,})"
                mean = (series.get("sum", 0.0) / count) if count else None
                rows.append([
                    name + _label_suffix(series.get("labels") or {}),
                    count_cell,
                    _format_observation(name, mean),
                    _format_observation(name, series.get("p50")),
                    _format_observation(name, series.get("p95")),
                    _format_observation(name, series.get("p99")),
                ])
        if len(rows) > 1:
            lines.append("histograms:")
            lines.extend(_aligned(rows))

    counters = snapshot.get("counters") or {}
    if counters:
        rows = []
        for name in sorted(counters):
            entry = counters[name]
            base_index = _series_index(
                (baseline or {}).get("counters", {}).get(name, {}))
            for series in entry.get("series", []):
                key = tuple(sorted(
                    (series.get("labels") or {}).items()))
                value = series.get("value", 0.0)
                cell = _format_quantity(value)
                if baseline is not None:
                    base = base_index.get(key, {}).get("value", 0.0)
                    cell += f" (Δ{value - base:+,.6g})"
                rows.append([
                    name + _label_suffix(series.get("labels") or {}),
                    cell,
                ])
        if rows:
            lines.append("counters:")
            lines.extend(_aligned(rows))

    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = []
        for name in sorted(gauges):
            entry = gauges[name]
            for series in entry.get("series", []):
                rows.append([
                    name + _label_suffix(series.get("labels") or {}),
                    _format_observation(name,
                                        series.get("value", 0.0))
                    if _seconds_like(name)
                    else f"{series.get('value', 0.0):,.6g}",
                ])
        if rows:
            lines.append("gauges:")
            lines.extend(_aligned(rows))

    if len(lines) == 1:
        lines.append("  (no metrics in snapshot)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments metrics-report",
        description="Render a repro-metrics/v1 snapshot (JSON or "
                    "sampler JSONL) as a text dashboard, optionally "
                    "diffed against a baseline snapshot, plus an SLO "
                    "health report.",
    )
    parser.add_argument("snapshot",
                        help="snapshot file (JSON or sampler JSONL)")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="optional baseline snapshot to diff "
                             "against")
    parser.add_argument("--line", type=int, default=None, metavar="N",
                        help="for JSONL input: use line N (1-based) "
                             "instead of the last line")
    parser.add_argument("--slo", metavar="FILE", default=None,
                        help="JSON file of SLO rules (default: the "
                             "built-in serving ruleset)")
    parser.add_argument("--no-health", action="store_true",
                        help="skip SLO evaluation")
    parser.add_argument("--fail-on", choices=("never", "fail", "warn"),
                        default="never",
                        help="exit non-zero when health status is at "
                             "least this bad (default: never)")
    args = parser.parse_args(argv)

    try:
        snapshot = load_snapshot(args.snapshot, line=args.line)
        baseline = (load_snapshot(args.baseline)
                    if args.baseline else None)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"metrics-report: {error}", file=sys.stderr)
        return 2

    print(render_dashboard(snapshot, baseline))

    if args.no_health:
        return 0
    try:
        rules = (health_mod.load_rules(args.slo) if args.slo
                 else list(health_mod.DEFAULT_SLO_RULES))
        report = health_mod.evaluate_rules(rules, snapshot)
    except (OSError, ValueError) as error:
        print(f"metrics-report: {error}", file=sys.stderr)
        return 2
    print(report.render())

    if args.fail_on == "never":
        return 0
    threshold = {"fail": ("fail",), "warn": ("warn", "fail")}
    return 1 if report.status in threshold[args.fail_on] else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
