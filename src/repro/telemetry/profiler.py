"""Stdlib sampling wall-clock profiler for individual solver calls.

A :class:`ProfileCapture` runs a daemon thread that periodically grabs
the *target* thread's stack via :func:`sys._current_frames` and
aggregates collapsed stacks into a counter — the classic wall-clock
sampling profiler, with zero dependencies and no tracing overhead on
the profiled code itself (the solver thread is never interrupted; the
sampler reads its frames from outside).

A thread-based sampler is used instead of ``signal``/``ITIMER``
because POSIX signals are only delivered to the main thread, while
solves routinely run on service dispatcher threads and inside warm
pool worker processes.

Opt-in is per solver call (``solve(..., profile=True)``) or
process-wide (:func:`enable_profiling` / ``REPRO_PROFILE=1``, which
warm-pool workers inherit through the capture flags).  The aggregated
:meth:`ProfileCapture.summary` attaches to ``SolveResult.provenance``
under ``"profile"`` and mirrors into the Chrome trace when a tracer is
live.  Sampling reads frames only — it never touches RNG state, so
profiled solves stay bit-for-bit identical.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional

from . import trace as _trace

#: Default seconds between stack samples.
DEFAULT_INTERVAL = 0.005

#: Default number of stacks/hotspots kept in a summary.
DEFAULT_TOP = 12

#: Frames kept per sampled stack (innermost preserved).
MAX_STACK_DEPTH = 24

ENV_VAR = "REPRO_PROFILE"

_TRUTHY = {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class ProfilerConfig:
    """Process-wide defaults applied when profiling is enabled."""

    interval: float = DEFAULT_INTERVAL
    top: int = DEFAULT_TOP


class ProfileCapture:
    """Context manager sampling the entering thread until exit."""

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 max_depth: int = MAX_STACK_DEPTH) -> None:
        self._interval = max(float(interval), 1e-4)
        self._max_depth = max_depth
        self._stacks: Counter = Counter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target: Optional[int] = None
        self._started = 0.0
        self._duration = 0.0

    def __enter__(self) -> "ProfileCapture":
        self._target = threading.get_ident()
        self._started = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        self._duration = time.perf_counter() - self._started
        return False

    def _sample_loop(self) -> None:
        stop = self._stop
        interval = self._interval
        target = self._target
        max_depth = self._max_depth
        while not stop.wait(interval):
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < max_depth:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:"
                    f"{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            del frame
            stack.reverse()
            self._stacks[tuple(stack)] += 1
            self._samples += 1

    @property
    def samples(self) -> int:
        return self._samples

    def summary(self, top: Optional[int] = None) -> Dict[str, Any]:
        """Aggregated result: top collapsed stacks plus leaf hotspots."""
        if top is None:
            config = _config
            top = config.top if config is not None else DEFAULT_TOP
        total = max(self._samples, 1)
        leaves: Counter = Counter()
        for stack, count in self._stacks.items():
            if stack:
                leaves[stack[-1]] += count
        return {
            "samples": self._samples,
            "interval_seconds": self._interval,
            "duration_seconds": self._duration,
            "stacks": [
                {"stack": list(stack), "samples": count,
                 "fraction": count / total}
                for stack, count in self._stacks.most_common(top)
            ],
            "hotspots": [
                {"site": site, "samples": count,
                 "fraction": count / total}
                for site, count in leaves.most_common(top)
            ],
        }


_config: Optional[ProfilerConfig] = None


def enable_profiling(interval: float = DEFAULT_INTERVAL,
                     top: int = DEFAULT_TOP) -> ProfilerConfig:
    """Turn process-wide profiling on (every ``solve`` call sampled)."""
    global _config
    _config = ProfilerConfig(interval=interval, top=top)
    return _config


def disable_profiling() -> None:
    global _config
    _config = None


def is_profiling_enabled() -> bool:
    return _config is not None


def get_profiler_config() -> Optional[ProfilerConfig]:
    """The enabled config, or ``None`` — the single-attribute guard."""
    return _config


def maybe_capture(opt_in: Optional[bool] = None
                  ) -> Optional[ProfileCapture]:
    """The hot-path entry: a capture, or ``None`` when profiling is off.

    ``opt_in=True`` forces a capture, ``False`` forces none, ``None``
    defers to the process-wide switch.
    """
    if opt_in is False:
        return None
    config = _config
    if opt_in is None and config is None:
        return None
    interval = config.interval if config is not None else DEFAULT_INTERVAL
    return ProfileCapture(interval=interval)


def mirror_to_trace(summary: Dict[str, Any], name: str) -> None:
    """Export a summary to the live tracer as an instant event."""
    tracer = _trace.get_tracer()
    if tracer is None:
        return
    tracer.instant(name, category="profile", args={
        "samples": summary.get("samples", 0),
        "duration_seconds": summary.get("duration_seconds", 0.0),
        "hotspots": [
            f"{entry['site']} ({entry['fraction']:.0%})"
            for entry in summary.get("hotspots", [])[:5]
        ],
    })


def enable_from_env(env_var: str = ENV_VAR) -> Optional[ProfilerConfig]:
    value = os.environ.get(env_var, "")
    if value.strip().lower() in _TRUTHY:
        return enable_profiling()
    return None


enable_from_env()
