"""``obs-report``: one job's story, joined across every layer.

The observability stack writes three artifacts — a Chrome trace
(``serve-bench --trace``, ``Tracer.write_chrome_trace``), a
``repro-metrics/v1`` snapshot and ``repro-flight/v1`` failure
capsules — and with the trace-context layer enabled
(``REPRO_CONTEXT=1`` / ``serve-bench --context``) every event in all
three carries a ``trace_id``. This CLI performs the join::

    python -m repro.experiments obs-report trace.json --list
    python -m repro.experiments obs-report trace.json <trace_id> \
        --metrics metrics.json --flight flight_dir/

For the selected trace it reconstructs the per-job timeline — submit,
queue wait, dispatch kind (warm/cold) and worker pid, worker-side
solve spans, convergence row count, terminal status — and appends any
flight capsules recorded for that trace. ``--pick first|failed``
selects a trace automatically (``failed`` prefers one that has a
capsule or a non-``done`` finish), which is what CI uses.

``--source server`` scopes the report to traces that entered through
the HTTP front end (:mod:`repro.server`): the server mints one trace
context per request, so its ``server.request.received`` instant and
``server.request`` span join to the service-side job events on the
same ``trace_id``. The timeline then leads with the HTTP leg — route,
method, status, request wall clock, and the handler wait between the
request arriving and the solve being submitted.

Exit status: 0 on success, 2 on unreadable input or when the requested
trace id has no events.

Wired as ``python -m repro.experiments obs-report``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Mapping, Optional

from .flight import FLIGHT_SCHEMA, validate_flight_document

__all__ = ["build_timeline", "filter_http_traces", "join_artifacts",
           "load_capsules", "load_trace_events", "main",
           "render_timeline"]


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_trace_events(path: str) -> List[Dict[str, Any]]:
    """Events from a Chrome ``trace_event`` JSON document.

    Accepts the object form (``{"traceEvents": [...]}``, what
    :meth:`Tracer.write_chrome_trace` emits) or a bare event array.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, Mapping):
        events = document.get("traceEvents")
    else:
        events = document
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array found")
    return [event for event in events if isinstance(event, Mapping)]


def load_capsules(paths: List[str]) -> List[Dict[str, Any]]:
    """Flight capsules from files and/or directories of them.

    A directory argument picks up every ``flight-*.json`` inside it
    (the :class:`~repro.telemetry.flight.FlightRecorder` naming
    scheme). Non-capsule JSON files are skipped with a warning rather
    than failing the report.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(
                os.path.join(path, "flight-*.json"))))
        else:
            files.append(path)
    capsules = []
    for filename in files:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"obs-report: skipping {filename}: {error}",
                  file=sys.stderr)
            continue
        if (not isinstance(document, Mapping)
                or document.get("schema") != FLIGHT_SCHEMA):
            print(f"obs-report: skipping {filename}: not a "
                  f"{FLIGHT_SCHEMA} capsule", file=sys.stderr)
            continue
        capsule = dict(document)
        capsule.setdefault("path", filename)
        capsules.append(capsule)
    return capsules


def load_metrics(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if path is None:
        return None
    from .metrics_report import load_snapshot
    return load_snapshot(path)


# ----------------------------------------------------------------------
# The join
# ----------------------------------------------------------------------
def _event_trace_id(event: Mapping[str, Any]) -> Optional[str]:
    args = event.get("args")
    if isinstance(args, Mapping):
        trace_id = args.get("trace_id")
        if isinstance(trace_id, str):
            return trace_id
    return None


def join_artifacts(events: List[Dict[str, Any]],
                   capsules: List[Dict[str, Any]]
                   ) -> Dict[str, Dict[str, Any]]:
    """Group trace events and capsules by ``trace_id``.

    Returns ``{trace_id: {"events": [...], "capsules": [...]}}`` in
    first-seen (timestamp) order; events without a ``trace_id`` are
    left out — they belong to no job.
    """
    traces: Dict[str, Dict[str, Any]] = {}
    for event in sorted(events, key=lambda e: float(e.get("ts", 0.0))):
        trace_id = _event_trace_id(event)
        if trace_id is None:
            continue
        entry = traces.setdefault(trace_id,
                                  {"events": [], "capsules": []})
        entry["events"].append(event)
    for capsule in capsules:
        trace_id = capsule.get("trace_id")
        if not isinstance(trace_id, str):
            continue
        entry = traces.setdefault(trace_id,
                                  {"events": [], "capsules": []})
        entry["capsules"].append(capsule)
    return traces


def build_timeline(trace_id: str, entry: Mapping[str, Any]
                   ) -> Dict[str, Any]:
    """Digest one trace's events into the per-job summary record."""
    events: List[Mapping[str, Any]] = entry["events"]
    summary: Dict[str, Any] = {
        "trace_id": trace_id,
        "job_ids": [],
        "solver": None,
        "submitted_ts": None,
        "queue_seconds": None,
        "dispatch": None,
        "worker_pid": None,
        "batched": None,
        "stages": [],
        "worker_spans": [],
        "convergence_rows": 0,
        "profile": None,
        "status": None,
        "http": None,
        "events": len(events),
    }
    for event in events:
        args = event.get("args") or {}
        name = str(event.get("name", ""))
        job_id = args.get("job_id")
        if job_id is not None and job_id not in summary["job_ids"]:
            summary["job_ids"].append(job_id)
        if args.get("solver") and summary["solver"] is None:
            summary["solver"] = args["solver"]
        if name == "server.request.received":
            http = summary["http"] or {}
            http.update({
                "received_ts": float(event.get("ts", 0.0)),
                "route": args.get("route"),
                "method": args.get("method"),
                "path": args.get("path"),
            })
            summary["http"] = http
        elif name == "server.request" and event.get("ph") == "X":
            http = summary["http"] or {}
            http.update({
                "status": args.get("status"),
                "seconds": float(event.get("dur", 0.0)) / 1e6,
            })
            http.setdefault("route", args.get("route"))
            http.setdefault("method", args.get("method"))
            summary["http"] = http
        elif name == "service.job.submitted":
            summary["submitted_ts"] = float(event.get("ts", 0.0))
        elif name == "service.job.cache_hit":
            summary["dispatch"] = "cache"
            summary["status"] = summary["status"] or "done"
        elif name == "service.job.coalesced":
            summary["dispatch"] = "coalesced"
        elif name == "service.job.dispatch":
            summary["dispatch"] = args.get("dispatch")
            summary["worker_pid"] = args.get("worker_pid")
            summary["batched"] = args.get("batched")
            if args.get("queue_seconds") is not None:
                summary["queue_seconds"] = args["queue_seconds"]
        elif name == "service.job.finish":
            summary["status"] = args.get("status")
            if args.get("queue_seconds") is not None and \
                    summary["queue_seconds"] is None:
                summary["queue_seconds"] = args["queue_seconds"]
        elif event.get("ph") == "X" and name.startswith("pipeline."):
            summary["stages"].append({
                "stage": name[len("pipeline."):],
                "seconds": float(event.get("dur", 0.0)) / 1e6,
                "status": args.get("status"),
            })
        elif event.get("cat") == "convergence":
            summary["convergence_rows"] += 1
        elif event.get("cat") == "profile":
            summary["profile"] = {
                "samples": args.get("samples"),
                "hotspots": args.get("hotspots"),
            }
        elif event.get("ph") == "B" and args.get("stage") == "worker":
            summary["worker_spans"].append({
                "name": name,
                "pid": event.get("pid"),
                "ts": float(event.get("ts", 0.0)),
            })
    http = summary["http"]
    if (http is not None and summary["submitted_ts"] is not None
            and http.get("received_ts") is not None):
        # The handler leg: request on the wire -> solve submitted.
        http["handler_wait_seconds"] = max(
            summary["submitted_ts"] - http["received_ts"], 0.0) / 1e6
    capsules = entry["capsules"]
    if summary["status"] is None and capsules:
        reasons = {capsule.get("reason") for capsule in capsules}
        summary["status"] = "/".join(sorted(str(r) for r in reasons))
    return summary


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.2f}ms"


def render_timeline(summary: Mapping[str, Any],
                    capsules: List[Mapping[str, Any]],
                    metrics: Optional[Mapping[str, Any]] = None
                    ) -> str:
    """The human-readable per-job report for one trace."""
    lines = [f"trace {summary['trace_id']}"]
    http = summary.get("http")
    if http is not None:
        line = (f"  http: {http.get('method') or '?'} "
                f"{http.get('path') or http.get('route') or '?'}"
                f" -> {http.get('status') or '?'}")
        if http.get("seconds") is not None:
            line += f" in {_ms(http['seconds'])}"
        if http.get("handler_wait_seconds") is not None:
            line += (f"   handler wait: "
                     f"{_ms(http['handler_wait_seconds'])}")
        lines.append(line)
    job_ids = summary["job_ids"]
    lines.append(
        f"  job(s): "
        f"{', '.join(str(j) for j in job_ids) if job_ids else '-'}"
        f"   solver: {summary['solver'] or '-'}"
        f"   status: {summary['status'] or '?'}")
    lines.append(
        f"  queue wait: {_ms(summary['queue_seconds'])}"
        f"   dispatch: {summary['dispatch'] or '-'}"
        + (f" (worker pid {summary['worker_pid']})"
           if summary.get("worker_pid") else "")
        + (f"   batched: {summary['batched']}"
           if summary.get("batched") else ""))
    if summary["stages"]:
        lines.append("  pipeline stages:")
        for stage in summary["stages"]:
            lines.append(
                f"    {stage['stage']:<12} {_ms(stage['seconds']):>10}"
                f"  {stage['status'] or ''}")
    if summary["worker_spans"]:
        span_names = sorted({span["name"]
                             for span in summary["worker_spans"]})
        pids = sorted({span["pid"] for span in summary["worker_spans"]})
        lines.append(
            f"  worker spans: {len(summary['worker_spans'])} "
            f"({', '.join(span_names[:4])}) on pid(s) "
            f"{', '.join(str(p) for p in pids)}")
    if summary["convergence_rows"]:
        lines.append(
            f"  convergence rows: {summary['convergence_rows']}")
    if summary["profile"]:
        hotspots = summary["profile"].get("hotspots") or []
        lines.append(
            f"  profile: {summary['profile'].get('samples', 0)} "
            f"sample(s); top: {'; '.join(hotspots[:3]) or '-'}")
    for capsule in capsules:
        detail = capsule.get("detail") or {}
        lines.append(
            f"  flight capsule: {capsule.get('reason')} "
            f"({capsule.get('event_count', 0)} event(s), "
            f"{capsule.get('path', 'in-memory')})")
        for key in ("solver", "deadline", "queue_seconds", "error",
                    "rule", "reason"):
            if detail.get(key) is not None:
                lines.append(f"    {key}: {detail[key]}")
    if metrics is not None:
        lines.append("  metrics snapshot: "
                     + _metrics_digest(metrics))
    return "\n".join(lines)


def _metrics_digest(snapshot: Mapping[str, Any]) -> str:
    """One line situating the job among the run-wide histograms."""
    parts = []
    histograms = snapshot.get("histograms") or {}
    for name in ("service_queue_wait_seconds",
                 "service_execute_seconds",
                 "pipeline_stage_seconds"):
        entry = histograms.get(name)
        if not entry:
            continue
        count = sum(series.get("count", 0)
                    for series in entry.get("series", []))
        parts.append(f"{name} n={count}")
    return ", ".join(parts) if parts else "(no service histograms)"


def render_listing(traces: Mapping[str, Mapping[str, Any]]) -> str:
    rows = [["trace_id", "job(s)", "solver", "status", "events",
             "capsules"]]
    for trace_id, entry in traces.items():
        summary = build_timeline(trace_id, entry)
        rows.append([
            trace_id,
            ",".join(str(j) for j in summary["job_ids"]) or "-",
            str(summary["solver"] or "-"),
            str(summary["status"] or "?"),
            str(summary["events"]),
            str(len(entry["capsules"])),
        ])
    widths = [max(len(row[column]) for row in rows)
              for column in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(widths[column])
                  for column, cell in enumerate(row)).rstrip()
        for row in rows)


def filter_http_traces(traces: Mapping[str, Dict[str, Any]]
                       ) -> Dict[str, Dict[str, Any]]:
    """Only traces that entered through the HTTP server."""
    return {
        trace_id: entry for trace_id, entry in traces.items()
        if any(str(event.get("name", "")).startswith("server.request")
               for event in entry["events"])
    }


def _pick_trace(traces: Mapping[str, Mapping[str, Any]],
                mode: str) -> Optional[str]:
    if not traces:
        return None
    if mode == "failed":
        for trace_id, entry in traces.items():
            summary = build_timeline(trace_id, entry)
            if entry["capsules"] or summary["status"] not in (
                    None, "done"):
                return trace_id
        return None
    return next(iter(traces))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments obs-report",
        description="Join a Chrome trace, a metrics snapshot and "
                    "flight capsules by trace_id into per-job "
                    "timelines.",
    )
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("trace_id", nargs="?", default=None,
                        help="trace id to report on (see --list)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="repro-metrics/v1 snapshot to situate "
                             "the job in")
    parser.add_argument("--flight", metavar="PATH", action="append",
                        default=[],
                        help="flight capsule file or directory "
                             "(repeatable)")
    parser.add_argument("--source", choices=("any", "server"),
                        default="any",
                        help="'server' keeps only traces with HTTP "
                             "request events (repro.server) and leads "
                             "each timeline with the request leg")
    parser.add_argument("--list", action="store_true",
                        help="list every trace id found and exit")
    parser.add_argument("--pick", choices=("first", "failed"),
                        default=None,
                        help="auto-select a trace instead of naming "
                             "one: 'first' by timestamp, 'failed' the "
                             "first with a capsule or non-done finish")
    parser.add_argument("--validate", action="store_true",
                        help="additionally validate every loaded "
                             "flight capsule; problems fail the "
                             "report")
    args = parser.parse_args(argv)

    try:
        events = load_trace_events(args.trace)
        capsules = load_capsules(args.flight)
        metrics = load_metrics(args.metrics)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"obs-report: {error}", file=sys.stderr)
        return 2

    if args.validate:
        bad = 0
        for capsule in capsules:
            for problem in validate_flight_document(capsule):
                print(f"obs-report: capsule "
                      f"{capsule.get('path', '?')}: {problem}",
                      file=sys.stderr)
                bad += 1
        if bad:
            return 2

    traces = join_artifacts(events, capsules)
    if args.source == "server":
        traces = filter_http_traces(traces)
        if not traces:
            print("obs-report: no traces with HTTP request events "
                  "(was the server run with --trace and --context?)",
                  file=sys.stderr)
            return 2
    if args.list:
        if not traces:
            print("obs-report: no trace-annotated events found "
                  "(was the run made with the context layer on?)",
                  file=sys.stderr)
            return 2
        print(render_listing(traces))
        return 0

    trace_id = args.trace_id
    if trace_id is None and args.pick is not None:
        trace_id = _pick_trace(traces, args.pick)
        if trace_id is None:
            print(f"obs-report: --pick {args.pick} matched no trace",
                  file=sys.stderr)
            return 2
    if trace_id is None:
        parser.error("name a trace_id, or use --list / --pick")
    if trace_id not in traces:
        print(f"obs-report: trace {trace_id!r} has no events "
              f"({len(traces)} trace(s) present; try --list)",
              file=sys.stderr)
        return 2

    entry = traces[trace_id]
    summary = build_timeline(trace_id, entry)
    print(render_timeline(summary, entry["capsules"], metrics))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
