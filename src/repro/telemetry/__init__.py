"""repro.telemetry — spans, counters, and run provenance.

Zero-dependency instrumentation for the whole stack. The costs the
tutorial reasons about — gate applications, circuit and gradient
evaluations, annealing sweeps, accepted/rejected moves, shots — are
collected into one in-process :class:`Collector` together with
hierarchical span timings and a run-provenance record, and export to
dict / JSON / JSONL / text report.

Telemetry is **off by default and cheap when off**: the module-level
helpers and every instrumented hot path guard on a single attribute
check (``get_collector() is None``) and fall through to no-ops, so the
disabled overhead is one function call per *operation* (circuit run,
anneal, Gram matrix), never per gate or per spin flip.

Enable it one of three ways::

    from repro import telemetry
    collector = telemetry.enable()          # 1. programmatically
    # REPRO_TELEMETRY=1 python ...          # 2. environment variable
    # python -m repro.experiments E8 --telemetry   # 3. CLI flag

    sim.run(circuit)                        # instrumented code runs
    print(telemetry.render_report(collector))
    collector.snapshot()                    # dict; .to_json(), .to_jsonl()

Alongside the collector there is a *live metrics* layer
(:mod:`repro.telemetry.metrics`): labeled counters/gauges/histograms
with Prometheus-format export, SLO health evaluation
(:mod:`repro.telemetry.health`) and a background JSONL sampler
(:mod:`repro.telemetry.sampler`). It follows the same guard pattern
(``get_registry() is None`` when off) and is enabled separately via
``enable_metrics()`` or ``REPRO_METRICS=1``.
"""

from __future__ import annotations

import os
from typing import Optional

from .collector import Collector, SpanStats
from .context import (
    ContextState,
    TraceContext,
    current_context,
    disable_context,
    enable_context,
    get_context_state,
    is_context_enabled,
)
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    disable_flight,
    enable_flight,
    flight_event,
    get_flight_recorder,
    is_flight_enabled,
    validate_flight_document,
)
from .health import (
    DEFAULT_SLO_RULES,
    HealthReport,
    SLORule,
    evaluate_rules,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    get_registry,
    is_metrics_enabled,
    validate_prometheus_text,
)
from .profiler import (
    ProfileCapture,
    ProfilerConfig,
    disable_profiling,
    enable_profiling,
    get_profiler_config,
    is_profiling_enabled,
)
from .progress import ProgressTrace
from .provenance import RunProvenance, collect_provenance, git_sha
from .report import render_report
from .sampler import MetricsSampler
from .trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    is_tracing,
)
from . import trace as _trace

__all__ = [
    "Collector",
    "ContextState",
    "Counter",
    "DEFAULT_SLO_RULES",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "ProfileCapture",
    "ProfilerConfig",
    "ProgressTrace",
    "RunProvenance",
    "SLORule",
    "SpanStats",
    "Timer",
    "TraceContext",
    "Tracer",
    "collect_provenance",
    "count",
    "current_context",
    "disable",
    "disable_context",
    "disable_flight",
    "disable_metrics",
    "disable_profiling",
    "disable_tracing",
    "enable",
    "enable_context",
    "enable_flight",
    "enable_from_env",
    "enable_metrics",
    "enable_profiling",
    "enable_tracing",
    "evaluate_rules",
    "flight_event",
    "gauge",
    "get_collector",
    "get_context_state",
    "get_flight_recorder",
    "get_profiler_config",
    "get_registry",
    "get_tracer",
    "git_sha",
    "is_context_enabled",
    "is_enabled",
    "is_flight_enabled",
    "is_metrics_enabled",
    "is_profiling_enabled",
    "is_tracing",
    "record",
    "render_report",
    "span",
    "trace_instant",
    "validate_flight_document",
]

ENV_VAR = "REPRO_TELEMETRY"

_collector: Optional[Collector] = None


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def enable(collector: Optional[Collector] = None) -> Collector:
    """Install (and return) the global collector; metrics flow after this."""
    global _collector
    _collector = collector if collector is not None else Collector()
    return _collector


def disable() -> None:
    """Remove the global collector; instrumented code reverts to no-ops."""
    global _collector
    _collector = None


def is_enabled() -> bool:
    return _collector is not None


def get_collector() -> Optional[Collector]:
    """The active collector, or None when telemetry is disabled.

    Hot paths fetch this once per operation and branch on it, so the
    disabled cost is a single call + identity check.
    """
    return _collector


def enable_from_env(env_var: str = ENV_VAR) -> Optional[Collector]:
    """Enable telemetry when the environment variable opts in."""
    if os.environ.get(env_var, "").strip().lower() in {"1", "true",
                                                       "yes", "on"}:
        return enable()
    return None


# -- module-level conveniences (each guards on the one attribute) -------
def span(name: str):
    """Span context manager; a shared no-op when telemetry is disabled.

    With a collector enabled, the span aggregates there (and mirrors
    onto the event tracer's timeline when one is active). With only a
    tracer enabled, the span becomes a bare begin/end event pair.
    """
    collector = _collector
    if collector is not None:
        return collector.span(name)
    tracer = _trace.get_tracer()
    if tracer is not None:
        return tracer.span(name)
    return _NOOP_SPAN


def trace_instant(name: str, category: str = "event",
                  args=None) -> None:
    """Instant timeline event; a no-op when tracing is disabled."""
    tracer = _trace.get_tracer()
    if tracer is not None:
        tracer.instant(name, category=category, args=args)


def count(name: str, value: float = 1) -> None:
    collector = _collector
    if collector is not None:
        collector.count(name, value)


def gauge(name: str, value: float) -> None:
    collector = _collector
    if collector is not None:
        collector.gauge(name, value)


def record(name: str, value: float) -> None:
    collector = _collector
    if collector is not None:
        collector.record(name, value)


# Honour REPRO_TELEMETRY=1 at import so library users (not just the
# CLI) can turn on collection without touching code.
enable_from_env()
