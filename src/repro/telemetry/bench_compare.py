"""Benchmark-regression watchdog: diff two ``repro-bench/v1`` files.

The perf trajectory (``BENCH_perf.json``) records how fast the engine
is *supposed* to be; this module fails loudly when a candidate run
quietly erodes it. Workloads are matched by name and compared
metric-by-metric:

* when the parameter blocks match exactly, absolute ``*_seconds``
  timings are compared (lower is better; a regression is a candidate
  time above ``baseline * (1 + tolerance)``);
* ratio metrics are always compared, because they survive machine and
  scale changes: ``speedup`` regresses when the candidate falls below
  ``baseline * (1 - tolerance)``, ``overhead_fraction`` regresses when
  the candidate exceeds ``baseline + tolerance`` (absolute slack — the
  baseline sits near zero by design);
* a baseline workload missing from the candidate is always a
  regression; extra candidate workloads are reported informationally.

When the parameter blocks differ (e.g. gating a CI smoke run against
the committed full-scale baseline) the absolute timings are
incomparable, so only the ratio metrics are enforced.

Library use::

    from repro.telemetry.bench_compare import compare_documents
    report = compare_documents(baseline_doc, candidate_doc,
                               tolerance=0.1)
    report.regressions, report.render()

CLI (exit 0 clean, 1 on regressions, 2 on unreadable/invalid input)::

    python -m repro.experiments bench-compare BENCH_perf.json cand.json
    python -m repro.telemetry.bench_compare baseline.json cand.json \
        --tolerance 0.25
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .bench_schema import (
    BenchSchemaError,
    load_document,
    workloads_by_name,
)

#: Default relative tolerance before a slowdown counts as a regression.
DEFAULT_TOLERANCE = 0.10

STATUS_OK = "ok"
STATUS_REGRESSION = "REGRESSION"
STATUS_INFO = "info"


@dataclass
class MetricComparison:
    """One (workload, metric) comparison row."""

    workload: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    status: str
    detail: str = ""

    @property
    def is_regression(self) -> bool:
        return self.status == STATUS_REGRESSION


@dataclass
class CompareReport:
    """All comparison rows plus the tolerance they were judged at."""

    tolerance: float
    rows: List[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [row for row in self.rows if row.is_regression]

    def render(self) -> str:
        """Aligned, human-readable comparison table."""
        header = ["workload", "metric", "baseline", "candidate",
                  "delta", "status"]
        body: List[List[str]] = []
        for row in self.rows:
            baseline = ("-" if row.baseline is None
                        else f"{row.baseline:.4g}")
            candidate = ("-" if row.candidate is None
                         else f"{row.candidate:.4g}")
            if row.baseline not in (None, 0) and row.candidate is not None:
                delta = f"{row.candidate / row.baseline - 1.0:+.1%}"
            else:
                delta = "-"
            status = row.status
            if row.detail:
                status = f"{status} ({row.detail})"
            body.append([row.workload, row.metric, baseline, candidate,
                         delta, status])
        widths = [max(len(header[i]), *(len(r[i]) for r in body))
                  if body else len(header[i])
                  for i in range(len(header))]
        lines = [
            "  ".join(header[i].ljust(widths[i])
                      for i in range(len(header))),
            "  ".join("-" * w for w in widths),
        ]
        for rendered in body:
            lines.append("  ".join(rendered[i].ljust(widths[i])
                                   for i in range(len(header))).rstrip())
        verdict = (f"{len(self.regressions)} regression(s) beyond "
                   f"tolerance {self.tolerance:.0%}"
                   if self.regressions
                   else f"no regressions beyond tolerance "
                        f"{self.tolerance:.0%}")
        lines.append(verdict)
        return "\n".join(lines)


def _numeric(workload: Dict[str, Any], key: str) -> Optional[float]:
    value = workload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _compare_workload(name: str, baseline: Dict[str, Any],
                      candidate: Dict[str, Any], tolerance: float,
                      rows: List[MetricComparison]) -> None:
    params_match = baseline.get("params") == candidate.get("params")
    if not params_match:
        rows.append(MetricComparison(
            name, "params", None, None, STATUS_INFO,
            "differ; comparing ratio metrics only",
        ))
    if params_match:
        seconds_keys = sorted(
            key for key in baseline
            if key.endswith("_seconds")
            and _numeric(baseline, key) is not None
            and _numeric(candidate, key) is not None
        )
        for key in seconds_keys:
            base = _numeric(baseline, key)
            cand = _numeric(candidate, key)
            slow = cand > base * (1.0 + tolerance)
            rows.append(MetricComparison(
                name, key, base, cand,
                STATUS_REGRESSION if slow else STATUS_OK,
                f"slower than {1.0 + tolerance:.2f}x baseline"
                if slow else "",
            ))
    speedup_base = _numeric(baseline, "speedup")
    speedup_cand = _numeric(candidate, "speedup")
    if speedup_base is not None and speedup_cand is not None:
        slow = speedup_cand < speedup_base * (1.0 - tolerance)
        rows.append(MetricComparison(
            name, "speedup", speedup_base, speedup_cand,
            STATUS_REGRESSION if slow else STATUS_OK,
            f"below {1.0 - tolerance:.2f}x baseline" if slow else "",
        ))
    overhead_base = _numeric(baseline, "overhead_fraction")
    overhead_cand = _numeric(candidate, "overhead_fraction")
    if overhead_base is not None and overhead_cand is not None:
        heavy = overhead_cand > overhead_base + tolerance
        rows.append(MetricComparison(
            name, "overhead_fraction", overhead_base, overhead_cand,
            STATUS_REGRESSION if heavy else STATUS_OK,
            f"exceeds baseline + {tolerance:.0%}" if heavy else "",
        ))


def compare_documents(baseline: Dict[str, Any],
                      candidate: Dict[str, Any],
                      tolerance: float = DEFAULT_TOLERANCE,
                      only: Optional[str] = None) -> CompareReport:
    """Compare two validated perf documents; see the module docstring.

    ``only`` restricts the comparison to a single workload by name —
    the CI service-throughput watchdog uses this to judge the warm-pool
    workload at a tighter tolerance than the catch-all sweep.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    baseline_index = workloads_by_name(baseline)
    candidate_index = workloads_by_name(candidate)
    if not baseline_index:
        raise BenchSchemaError(["baseline document has no workloads"])
    if only is not None:
        if only not in baseline_index:
            raise BenchSchemaError(
                [f"baseline has no workload named {only!r}"])
        baseline_index = {only: baseline_index[only]}
        candidate_index = {
            name: workload
            for name, workload in candidate_index.items()
            if name == only
        }
    report = CompareReport(tolerance=tolerance)
    for name in baseline_index:
        if name not in candidate_index:
            report.rows.append(MetricComparison(
                name, "(workload)", None, None, STATUS_REGRESSION,
                "missing from candidate",
            ))
            continue
        _compare_workload(name, baseline_index[name],
                          candidate_index[name], tolerance, report.rows)
    for name in candidate_index:
        if name not in baseline_index:
            report.rows.append(MetricComparison(
                name, "(workload)", None, None, STATUS_INFO,
                "new workload, not in baseline",
            ))
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench-compare",
        description="Fail when a candidate repro-bench/v1 run regresses "
                    "beyond tolerance versus a baseline.",
    )
    parser.add_argument("baseline", help="baseline trajectory JSON "
                                         "(e.g. the committed "
                                         "BENCH_perf.json)")
    parser.add_argument("candidate", help="candidate trajectory JSON")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRAC",
                        help="allowed slowdown fraction before failing "
                             "(default %(default)s)")
    parser.add_argument("--workload", metavar="NAME", default=None,
                        help="compare only this workload (error if the "
                             "baseline does not record it)")
    args = parser.parse_args(argv)
    try:
        baseline = load_document(args.baseline)
        candidate = load_document(args.candidate)
        report = compare_documents(baseline, candidate,
                                   tolerance=args.tolerance,
                                   only=args.workload)
    except (BenchSchemaError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(report.render())
    return 1 if report.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
