"""Run-provenance records: who ran what, where, with which inputs.

A provenance record pins down everything needed to reproduce (or
distrust) one experiment run: the experiment id, the exact kwargs, the
seed, the package version, the git commit if the source tree is a
checkout, the platform, and the measured duration. The experiment
harness attaches one to every :class:`ExperimentResult` when telemetry
is enabled, and the CLI writes it into ``--json-out`` files.
"""

from __future__ import annotations

import datetime
import functools
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class RunProvenance:
    """Reproducibility metadata for one run."""

    experiment_id: str
    kwargs: Dict[str, Any]
    seed: Optional[int]
    version: str
    git_sha: Optional[str]
    platform: str
    python: str
    started_at: str
    duration_seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "experiment_id": self.experiment_id,
            "kwargs": self.kwargs,
            "seed": self.seed,
            "version": self.version,
            "git_sha": self.git_sha,
            "platform": self.platform,
            "python": self.python,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
        }
        record.update(self.extra)
        return record


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable builtins."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    # numpy scalars and anything else: item() if available, else repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except Exception:
            pass
    return repr(value)


@functools.lru_cache(maxsize=1)
def git_sha() -> Optional[str]:
    """Short commit hash of the source checkout, or None outside git."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def collect_provenance(experiment_id: str,
                       kwargs: Optional[Dict[str, Any]] = None,
                       duration_seconds: float = 0.0,
                       started_at: Optional[str] = None,
                       **extra: Any) -> RunProvenance:
    """Assemble a :class:`RunProvenance` for one run.

    ``seed`` is lifted out of ``kwargs`` when present, matching the
    repo-wide convention that every stochastic runner takes ``seed=``.
    """
    from repro import __version__

    kwargs = dict(kwargs or {})
    seed = kwargs.get("seed")
    if seed is not None and not isinstance(seed, int):
        seed = _jsonable(seed)
    if started_at is None:
        started_at = (
            datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds")
        )
    return RunProvenance(
        experiment_id=experiment_id,
        kwargs={k: _jsonable(v) for k, v in kwargs.items()},
        seed=seed,
        version=__version__,
        git_sha=git_sha(),
        platform=platform.platform(),
        python=sys.version.split()[0],
        started_at=started_at,
        duration_seconds=float(duration_seconds),
        extra={k: _jsonable(v) for k, v in extra.items()},
    )
