"""Per-job flight recorder: a black box that dumps on failure.

A :class:`FlightRecorder` keeps a bounded ring buffer of small,
correlated events (job submitted, dispatched, reaped...), each stamped
with the active :mod:`~repro.telemetry.context` ids.  Nothing is
written anywhere until something goes wrong: when a job finishes
FAILED/TIMEOUT (wired in ``SolveService._finish``) or an SLO rule
fails (wired in :func:`repro.telemetry.health.evaluate_rules`), the
recorder dumps a ``repro-flight/v1`` JSON capsule — the recent events
for that trace plus ambient ones — in memory and, when a ``dump_dir``
is configured, to ``flight-*.json`` on disk.

Like every other telemetry layer the recorder is off by default and
cheap when off: hot paths fetch :func:`get_flight_recorder` once and
skip on ``None``.  Enable with :func:`enable_flight` or
``REPRO_FLIGHT=1`` (+ optional ``REPRO_FLIGHT_DIR=...``).

:func:`validate_flight_document` is the structural validator CI runs
against emitted capsules, mirroring
:func:`repro.pipeline.plan.validate_plan_document`.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from . import context as _context

#: Schema tag carried by every capsule.
FLIGHT_SCHEMA = "repro-flight/v1"

#: Default ring-buffer capacity (events, not bytes).
MAX_FLIGHT_EVENTS = 4096

#: In-memory capsules kept before the oldest is dropped.
MAX_CAPSULES = 64

ENV_VAR = "REPRO_FLIGHT"
ENV_DIR_VAR = "REPRO_FLIGHT_DIR"

_TRUTHY = {"1", "true", "yes", "on"}


def _json_safe(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable structures."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(item) for item in value]
    return repr(value)


class FlightRecorder:
    """Bounded ring of correlated events plus capsule dumping."""

    def __init__(self, max_events: int = MAX_FLIGHT_EVENTS,
                 dump_dir: Optional[str] = None,
                 max_capsules: int = MAX_CAPSULES) -> None:
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=max_events)
        self._sequence = itertools.count(1)
        self._capsule_sequence = itertools.count(1)
        self._dump_dir = dump_dir
        self._max_capsules = max_capsules
        self._last_breach: Optional[tuple] = None
        #: Capsules dumped so far, oldest first (bounded).
        self.capsules: List[Dict[str, Any]] = []
        #: Events evicted from the full ring (diagnostic only).
        self.dropped = 0

    # -- recording ----------------------------------------------------

    def record(self, kind: str, name: str, *,
               trace_id: Optional[str] = None,
               job_id: Optional[int] = None,
               **details: Any) -> Dict[str, Any]:
        """Append one event; ids default to the active trace context."""
        if trace_id is None or job_id is None:
            context = _context.current_context()
            if context is not None:
                if trace_id is None:
                    trace_id = context.trace_id
                if job_id is None:
                    job_id = context.job_id
        event: Dict[str, Any] = {
            "seq": next(self._sequence),
            "unix": time.time(),
            "kind": kind,
            "name": name,
            "trace_id": trace_id,
            "job_id": job_id,
        }
        if details:
            event["details"] = _json_safe(details)
        with self._lock:
            if (self._events.maxlen is not None
                    and len(self._events) == self._events.maxlen):
                self.dropped += 1
            self._events.append(event)
        return event

    def events(self, trace_id: Optional[str] = None,
               job_id: Optional[int] = None) -> List[Dict[str, Any]]:
        """Snapshot of ring events, filtered to one trace/job.

        With a filter, an event is kept when it carries the matching
        id — or carries *no* ids at all (ambient events such as SLO
        breaches still belong in every capsule).
        """
        with self._lock:
            snapshot = list(self._events)
        if trace_id is None and job_id is None:
            return snapshot
        selected = []
        for event in snapshot:
            if trace_id is not None and event["trace_id"] == trace_id:
                selected.append(event)
            elif job_id is not None and event["job_id"] == job_id:
                selected.append(event)
            elif event["trace_id"] is None and event["job_id"] is None:
                selected.append(event)
        return selected

    # -- capsules -----------------------------------------------------

    def dump(self, reason: str, *,
             trace_id: Optional[str] = None,
             job_id: Optional[int] = None,
             detail: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Build a ``repro-flight/v1`` capsule; keep and maybe write it."""
        sequence = next(self._capsule_sequence)
        document: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "trace_id": trace_id,
            "job_id": job_id,
            "created_unix": time.time(),
            "pid": os.getpid(),
            "capsule_seq": sequence,
            "detail": _json_safe(detail or {}),
            "dropped_events": self.dropped,
            "events": self.events(trace_id=trace_id, job_id=job_id),
        }
        document["event_count"] = len(document["events"])
        path = self._write(document, sequence)
        with self._lock:
            self.capsules.append(document)
            if len(self.capsules) > self._max_capsules:
                del self.capsules[0]
        if path is not None:
            document["path"] = path
        return document

    def _write(self, document: Dict[str, Any],
               sequence: int) -> Optional[str]:
        if self._dump_dir is None:
            return None
        trace_part = document["trace_id"] or "untraced"
        name = f"flight-{sequence:03d}-{document['reason']}-{trace_part}.json"
        path = os.path.join(self._dump_dir, name)
        try:
            os.makedirs(self._dump_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, default=repr)
        except OSError:
            return None
        return path

    def on_slo_breach(self, report: Any) -> Optional[Dict[str, Any]]:
        """Dump a capsule for a failing :class:`HealthReport`.

        Consecutive identical breach signatures (same failing rules)
        are deduplicated so a persistently-broken SLO polled in a loop
        does not flood the capsule store.
        """
        failing = tuple(sorted(
            result.rule for result in report.results
            if result.status == "fail"
        ))
        if not failing:
            return None
        if failing == self._last_breach:
            return None
        self._last_breach = failing
        self.record("slo", "breach", rules=list(failing))
        return self.dump("slo_breach", detail={
            "status": report.status,
            "rules": [
                {"rule": result.rule, "reason": result.reason,
                 "expr": result.expr}
                for result in report.results if result.status == "fail"
            ],
        })


_recorder: Optional[FlightRecorder] = None


def enable_flight(max_events: int = MAX_FLIGHT_EVENTS,
                  dump_dir: Optional[str] = None,
                  max_capsules: int = MAX_CAPSULES) -> FlightRecorder:
    """Install the process-wide recorder (idempotent; keeps existing)."""
    global _recorder
    if _recorder is None:
        _recorder = FlightRecorder(max_events=max_events,
                                   dump_dir=dump_dir,
                                   max_capsules=max_capsules)
    return _recorder


def disable_flight() -> None:
    """Drop the process-wide recorder (and its ring/capsules)."""
    global _recorder
    _recorder = None


def is_flight_enabled() -> bool:
    return _recorder is not None


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The enabled recorder, or ``None`` — the single-attribute guard."""
    return _recorder


def flight_event(kind: str, name: str, **details: Any) -> None:
    """Record an event iff the recorder is enabled (module shortcut)."""
    recorder = _recorder
    if recorder is not None:
        recorder.record(kind, name, **details)


def enable_from_env(env_var: str = ENV_VAR,
                    dir_var: str = ENV_DIR_VAR
                    ) -> Optional[FlightRecorder]:
    """Enable when ``REPRO_FLIGHT`` is truthy; dir from ``REPRO_FLIGHT_DIR``."""
    value = os.environ.get(env_var, "")
    if value.strip().lower() in _TRUTHY:
        return enable_flight(dump_dir=os.environ.get(dir_var) or None)
    return None


def validate_flight_document(document: Any) -> List[str]:
    """Structural check of a capsule; returns problem strings (empty=ok)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    schema = document.get("schema")
    if schema != FLIGHT_SCHEMA:
        problems.append(
            f"schema tag is {schema!r}, expected {FLIGHT_SCHEMA!r}")
    reason = document.get("reason")
    if not isinstance(reason, str) or not reason:
        problems.append("missing non-empty string 'reason'")
    created = document.get("created_unix")
    if not isinstance(created, (int, float)) or isinstance(created, bool) \
            or not math.isfinite(created):
        problems.append("'created_unix' is not a finite number")
    if not isinstance(document.get("pid"), int):
        problems.append("'pid' is not an integer")
    trace_id = document.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        problems.append("'trace_id' is neither null nor a string")
    job_id = document.get("job_id")
    if job_id is not None and not isinstance(job_id, int):
        problems.append("'job_id' is neither null nor an integer")
    if not isinstance(document.get("detail"), dict):
        problems.append("'detail' is not an object")
    dropped = document.get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        problems.append("'dropped_events' is not a non-negative integer")
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("'events' is not a list")
        events = []
    for index, event in enumerate(events):
        prefix = f"events[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{prefix} is not an object")
            continue
        for key in ("kind", "name"):
            if not isinstance(event.get(key), str) or not event[key]:
                problems.append(
                    f"{prefix} missing non-empty string {key!r}")
        if not isinstance(event.get("seq"), int):
            problems.append(f"{prefix} missing integer 'seq'")
        unix = event.get("unix")
        if not isinstance(unix, (int, float)) or isinstance(unix, bool):
            problems.append(f"{prefix} missing numeric 'unix'")
    if isinstance(events, list) \
            and document.get("event_count") != len(events):
        problems.append(
            f"'event_count' {document.get('event_count')!r} does not "
            f"match len(events) == {len(events)}")
    return problems


enable_from_env()
