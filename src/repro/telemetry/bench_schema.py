"""The one validator for ``repro-bench/v1`` documents.

Both trajectory files the repo commits or uploads from CI share this
schema: ``BENCH_perf.json`` (``workloads``: named, parameterised
timing records from ``benchmarks/bench_perf_engine.py``) and
``BENCH_telemetry.json`` (``runs``: per-benchmark metric snapshots
from ``benchmarks/conftest.py``). The structural checks used to be
duplicated between the benchmark script and inline Python in the CI
workflow; they live here once now, shared by the benchmarks,
:mod:`repro.telemetry.bench_compare` and CI.

Run as a script to validate a file (exit 0 valid / 1 invalid)::

    python -m repro.telemetry.bench_schema BENCH_perf.json
    python -m repro.telemetry.bench_schema BENCH_perf.json --gates

``--gates`` additionally enforces the perf-engine correctness gates
(deterministic workloads, batched-matches-loop, bounded dispatch
overhead) that CI applies to every smoke run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List

#: The schema tag every trajectory document must carry.
BENCH_SCHEMA = "repro-bench/v1"

#: Dispatch-overhead ceiling enforced by ``--gates`` (the PR-3 gate).
MAX_DISPATCH_OVERHEAD = 0.05

#: Numerical-equivalence ceiling for batched-vs-loop workloads.
MAX_BATCHED_ABS_DIFF = 1e-10


class BenchSchemaError(ValueError):
    """A document does not conform to ``repro-bench/v1``."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__(
            "invalid repro-bench/v1 document:\n  "
            + "\n  ".join(self.problems)
        )


def _is_finite_number(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def _check_workload(workload: Any, index: int, problems: List[str]
                    ) -> None:
    prefix = f"workloads[{index}]"
    if not isinstance(workload, dict):
        problems.append(f"{prefix} is not an object")
        return
    name = workload.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{prefix} missing non-empty string 'name'")
    if not isinstance(workload.get("params"), dict):
        problems.append(f"{prefix} missing object 'params'")
    timings = [key for key, value in workload.items()
               if key.endswith("_seconds")]
    if not timings:
        problems.append(f"{prefix} has no '*_seconds' timing field")
    for key, value in workload.items():
        if key.endswith("_seconds") and not _is_finite_number(value):
            problems.append(
                f"{prefix}.{key} is not a finite number: {value!r}"
            )
    for key in ("speedup", "overhead_fraction"):
        if key in workload and not _is_finite_number(workload[key]):
            problems.append(
                f"{prefix}.{key} is not a finite number: "
                f"{workload[key]!r}"
            )


def validate_document(document: Any) -> None:
    """Raise :class:`BenchSchemaError` listing every structural problem.

    Accepts both trajectory shapes: perf documents (``workloads``) and
    telemetry documents (``runs``).
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        raise BenchSchemaError(["document is not a JSON object"])
    schema = document.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(
            f"schema tag is {schema!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(document.get("provenance"), dict):
        problems.append("missing object 'provenance'")
    has_workloads = "workloads" in document
    has_runs = "runs" in document
    if not has_workloads and not has_runs:
        problems.append("document has neither 'workloads' nor 'runs'")
    if has_workloads:
        workloads = document["workloads"]
        if not isinstance(workloads, list) or not workloads:
            problems.append("'workloads' is not a non-empty list")
        else:
            for index, workload in enumerate(workloads):
                _check_workload(workload, index, problems)
    if has_runs:
        runs = document["runs"]
        if not isinstance(runs, list):
            problems.append("'runs' is not a list")
        else:
            for index, run in enumerate(runs):
                if not isinstance(run, dict) or "test" not in run:
                    problems.append(
                        f"runs[{index}] is not an object with 'test'"
                    )
    if problems:
        raise BenchSchemaError(problems)


def load_document(path: str) -> Dict[str, Any]:
    """Load and validate a trajectory file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise BenchSchemaError([f"cannot load {path}: {error}"]) from error
    validate_document(document)
    return document


def workloads_by_name(document: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Index a perf document's workloads by name.

    Duplicate names are a schema error — matching by name would be
    ambiguous downstream in :mod:`bench_compare`.
    """
    index: Dict[str, Dict[str, Any]] = {}
    duplicates = []
    for workload in document.get("workloads", []):
        name = workload["name"]
        if name in index:
            duplicates.append(name)
        index[name] = workload
    if duplicates:
        raise BenchSchemaError(
            [f"duplicate workload name {name!r}" for name in duplicates]
        )
    return index


def effective_speedup_floor(workload: Dict[str, Any]) -> float:
    """Resolve a workload's speedup gate to one number.

    ``gate_min_speedup`` is the nominal floor; the optional
    ``gate_speedup_tolerance`` (a fraction in [0, 1)) relaxes it to
    ``floor * (1 - tolerance)`` so recorders can declare the honest
    target (1.0x on a single CPU, 1.5x with real parallelism) while
    absorbing scheduler jitter — on a one-core runner the service
    measurably lands a few percent *under* parity, and a bare floor
    would flake forever. Raises :class:`BenchSchemaError` when either
    field is malformed.
    """
    floor = workload.get("gate_min_speedup")
    if not _is_finite_number(floor):
        raise BenchSchemaError(
            [f"gate_min_speedup is not a finite number: {floor!r}"]
        )
    tolerance = workload.get("gate_speedup_tolerance", 0.0)
    if not (_is_finite_number(tolerance) and 0.0 <= tolerance < 1.0):
        raise BenchSchemaError(
            ["gate_speedup_tolerance must be a number in [0, 1): "
             f"{tolerance!r}"]
        )
    return floor * (1.0 - tolerance)


def check_perf_gates(document: Dict[str, Any],
                     max_dispatch_overhead: float = MAX_DISPATCH_OVERHEAD
                     ) -> List[str]:
    """Correctness gates for perf-engine documents; returns failures.

    These are the semantic checks CI applies to every smoke run:
    batched results must match the loop reference, every workload must
    be deterministic under its seed, and dispatch overhead must stay
    under the PR-3 ceiling. Workloads may also embed their own gates:
    ``gate_min_speedup`` (+ optional ``gate_speedup_tolerance``, see
    :func:`effective_speedup_floor`) and ``gate_max_overhead``, a
    per-workload ceiling on ``overhead_fraction`` that replaces the
    global dispatch ceiling for that workload (the metrics-overhead
    workload uses it: its budget is 2%, not the dispatch layer's 5%).
    """
    failures: List[str] = []
    for workload in document.get("workloads", []):
        name = workload.get("name", "?")
        if "max_abs_diff" in workload:
            diff = workload["max_abs_diff"]
            if not (_is_finite_number(diff)
                    and diff < MAX_BATCHED_ABS_DIFF):
                failures.append(
                    f"{name}: max_abs_diff {diff!r} exceeds "
                    f"{MAX_BATCHED_ABS_DIFF}"
                )
        if "deterministic" in workload and workload["deterministic"] is not True:
            failures.append(f"{name}: not deterministic under its seed")
        if "matches_direct" in workload and workload["matches_direct"] is not True:
            failures.append(f"{name}: dispatch result diverged from "
                            "the direct solver call")
        if "overhead_fraction" in workload:
            overhead = workload["overhead_fraction"]
            if "gate_max_overhead" in workload:
                ceiling = workload["gate_max_overhead"]
                if not _is_finite_number(ceiling):
                    failures.append(
                        f"{name}: gate_max_overhead is not a finite "
                        f"number: {ceiling!r}"
                    )
                elif not (_is_finite_number(overhead)
                          and overhead < ceiling):
                    failures.append(
                        f"{name}: overhead {overhead!r} >= its "
                        f"declared gate_max_overhead {ceiling:.0%}"
                    )
            elif not (_is_finite_number(overhead)
                      and overhead < max_dispatch_overhead):
                failures.append(
                    f"{name}: dispatch overhead {overhead!r} >= "
                    f"{max_dispatch_overhead:.0%} ceiling"
                )
        if "gate_min_speedup" in workload:
            # Self-describing speedup floor: a workload that embeds
            # this field must meet it (after tolerance).
            try:
                floor = effective_speedup_floor(workload)
            except BenchSchemaError as error:
                failures.extend(f"{name}: {p}" for p in error.problems)
                continue
            speedup = workload.get("speedup")
            if not (_is_finite_number(speedup) and speedup >= floor):
                failures.append(
                    f"{name}: speedup {speedup!r} below its declared "
                    f"gate_min_speedup "
                    f"{workload['gate_min_speedup']!r} "
                    f"(effective floor {floor:.3g} after tolerance)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.bench_schema",
        description="Validate a repro-bench/v1 trajectory file.",
    )
    parser.add_argument("path", help="trajectory JSON file")
    parser.add_argument("--gates", action="store_true",
                        help="also enforce the perf correctness gates "
                             "(determinism, batched==loop, dispatch "
                             "overhead ceiling)")
    parser.add_argument("--max-dispatch-overhead", type=float,
                        default=MAX_DISPATCH_OVERHEAD, metavar="FRAC",
                        help="overhead ceiling for --gates "
                             "(default %(default)s)")
    args = parser.parse_args(argv)
    try:
        document = load_document(args.path)
    except BenchSchemaError as error:
        print(error, file=sys.stderr)
        return 1
    summary = []
    if "workloads" in document:
        summary.append(f"{len(document['workloads'])} workload(s)")
    if "runs" in document:
        summary.append(f"{len(document['runs'])} run(s)")
    print(f"{args.path}: valid {BENCH_SCHEMA} "
          f"({', '.join(summary)})")
    if args.gates:
        failures = check_perf_gates(
            document, max_dispatch_overhead=args.max_dispatch_overhead
        )
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            return 1
        print("perf gates OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
