"""Background metrics sampler: periodic JSONL snapshots.

Long runs (``serve-bench``, soak tests) want metrics *over time*, not
just a final total. :class:`MetricsSampler` runs a daemon thread that
appends one JSON line per interval to a file::

    registry = metrics.enable_metrics()
    with MetricsSampler("metrics_samples.jsonl", interval=0.5):
        ... workload ...

Each line is ``{"sample": k, "unix_time": ..., "elapsed_seconds": ...,
"metrics": <repro-metrics/v1 snapshot>}``; snapshots omit raw
reservoirs to keep lines small (quantiles are still present, and the
bucket counts allow interpolated quantiles downstream — see
:func:`repro.telemetry.health._bucket_quantile`). ``stop()`` always
appends one final snapshot so even runs shorter than one interval
produce a usable line. ``python -m repro.experiments metrics-report``
accepts the JSONL directly (it reads the last line by default).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Optional

from .metrics import MetricsRegistry, get_registry


class MetricsSampler:
    """Appends periodic registry snapshots to a JSONL file."""

    def __init__(self, path: str, interval: float = 1.0,
                 registry: Optional[MetricsRegistry] = None,
                 include_reservoir: bool = False):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.path = path
        self.interval = float(interval)
        self.include_reservoir = include_reservoir
        self._registry = registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._samples = 0
        self._start_time = 0.0

    @property
    def samples_written(self) -> int:
        with self._lock:
            return self._samples

    def _write_sample(self) -> None:
        registry = self._registry
        if registry is None:
            return
        with self._lock:
            self._samples += 1
            sample = self._samples
        line = json.dumps({
            "sample": sample,
            "unix_time": time.time(),
            "elapsed_seconds": time.monotonic() - self._start_time,
            "metrics": registry.snapshot(
                include_reservoir=self.include_reservoir),
        }, sort_keys=True)
        # Open per sample (append mode): one syscall-ish write per
        # interval, and a crash mid-run still leaves complete lines.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write_sample()

    def start(self) -> "MetricsSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        if self._registry is None:
            self._registry = get_registry()
        if self._registry is None:
            raise RuntimeError(
                "no metrics registry active: call "
                "metrics.enable_metrics() first or pass registry="
            )
        self._start_time = time.monotonic()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> int:
        """Stop the thread; by default append one last snapshot.

        Returns the total number of samples written.
        """
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self._write_sample()
        return self.samples_written

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
