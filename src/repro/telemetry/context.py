"""Cross-layer trace context: one id correlating every layer's events.

The telemetry stack grew in silos — spans (PR 1), trace events (PR 4),
metrics (PR 6) — and none of them can answer "what happened to *this*
job?" once work crosses a layer boundary: a solve submitted through
:class:`~repro.service.service.SolveService` waits in the queue, rides
the warm-pool pipe protocol into a worker process, emits worker-side
spans and convergence rows, and comes back through a drain-merge that
forgets which job produced what.

This module fixes that with a minimal trace context:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, job_id,
  stage)`` tuple.  ``trace_id`` is minted once at pipeline or service
  entry and inherited by every child context; ``span_id`` is unique per
  context so nesting is reconstructable.
* :class:`ContextState` — a per-process holder with a per-thread
  context stack.  Enabled processes annotate every
  :class:`~repro.telemetry.trace.Tracer` event with the active
  ``trace_id``/``job_id`` (see ``Tracer._emit``), which is what the
  ``obs-report`` CLI joins on.

Like the collector, tracer, and metrics registry, the layer is
**off by default** and cheap when off: the only cost on hot paths is
one module-attribute read returning ``None``.  Enable explicitly with
:func:`enable_context` or via ``REPRO_CONTEXT=1``.

Ids are minted with :func:`uuid.uuid4` (``os.urandom``-backed), so
enabling the layer never touches ``random`` or NumPy RNG state —
solve results stay bit-for-bit identical with context on.
"""

from __future__ import annotations

import itertools
import os
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: Environment opt-in honored by :func:`enable_from_env`.
ENV_VAR = "REPRO_CONTEXT"

_TRUTHY = {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class TraceContext:
    """One node in the span tree for a single correlated job."""

    #: Correlation id shared by every context in one logical request.
    trace_id: str
    #: Unique id of this context (``<pid hex>-<counter hex>``).
    span_id: str
    #: ``span_id`` of the enclosing context, if any.
    parent_id: Optional[str] = None
    #: Service job id, once the trace reaches the job layer.
    job_id: Optional[int] = None
    #: Pipeline stage or layer label (``"pipeline"``, ``"worker"``...).
    stage: Optional[str] = None

    def annotation(self) -> Dict[str, Any]:
        """The fields stamped onto trace events and flight records."""
        args: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.job_id is not None:
            args["job_id"] = self.job_id
        if self.stage is not None:
            args["stage"] = self.stage
        return args


class ContextState:
    """Per-process context store: a thread-local stack plus id minting."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._sequence = itertools.count(1)
        #: Contexts minted since enablement (observability for tests
        #: and ``serve-bench``; not used for control flow).
        self.minted = 0

    # -- id minting ---------------------------------------------------

    @staticmethod
    def new_trace_id() -> str:
        """A fresh 16-hex-char trace id (urandom-backed, RNG-neutral)."""
        return uuid.uuid4().hex[:16]

    def _new_span_id(self) -> str:
        return f"{os.getpid():x}-{next(self._sequence):x}"

    def mint(self, *, trace_id: Optional[str] = None,
             job_id: Optional[int] = None,
             stage: Optional[str] = None) -> TraceContext:
        """Create a context, inheriting from the active one if present.

        With no explicit ``trace_id`` and no active context this starts
        a brand-new trace; under an active context it creates a child
        span sharing the parent's ``trace_id`` (and ``job_id`` unless
        overridden).
        """
        parent = self.current()
        if trace_id is None:
            trace_id = (parent.trace_id if parent is not None
                        else self.new_trace_id())
        if job_id is None and parent is not None:
            job_id = parent.job_id
        context = TraceContext(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            job_id=job_id,
            stage=stage,
        )
        self.minted += 1
        return context

    # -- the per-thread stack -----------------------------------------

    def _stack(self) -> List[TraceContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[TraceContext]:
        """The innermost active context on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    @contextmanager
    def activate(self, context: TraceContext) -> Iterator[TraceContext]:
        """Push ``context`` for the dynamic extent of the ``with``."""
        stack = self._stack()
        stack.append(context)
        try:
            yield context
        finally:
            stack.pop()


class _NoopScope:
    """Returned by :func:`activate` when the layer is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NOOP_SCOPE = _NoopScope()

_state: Optional[ContextState] = None


def enable_context() -> ContextState:
    """Turn the context layer on (idempotent); returns the state."""
    global _state
    if _state is None:
        _state = ContextState()
    return _state


def disable_context() -> None:
    """Turn the context layer off and drop all state."""
    global _state
    _state = None


def is_context_enabled() -> bool:
    return _state is not None


def get_context_state() -> Optional[ContextState]:
    """The enabled state, or ``None`` — the single-attribute guard."""
    return _state


def current_context() -> Optional[TraceContext]:
    """The active context on this thread, or ``None`` when off/idle."""
    state = _state
    if state is None:
        return None
    return state.current()


def activate(trace_id: Optional[str], *, job_id: Optional[int] = None,
             stage: Optional[str] = None):
    """Scope a known trace id (e.g. a job's) onto the current thread.

    Returns a no-op scope when the layer is off or ``trace_id`` is
    ``None``, so call sites need no guard of their own::

        with _context.activate(job.trace_id, job_id=job.job_id):
            ...  # tracer events here carry the job's ids
    """
    state = _state
    if state is None or trace_id is None:
        return _NOOP_SCOPE
    return state.activate(
        state.mint(trace_id=trace_id, job_id=job_id, stage=stage))


def enable_from_env(env_var: str = ENV_VAR) -> Optional[ContextState]:
    """Enable when ``REPRO_CONTEXT`` is truthy; mirror the other layers."""
    value = os.environ.get(env_var, "")
    if value.strip().lower() in _TRUTHY:
        return enable_context()
    return None


enable_from_env()
