"""Text rendering of a metrics snapshot.

``render_report`` turns a :meth:`Collector.snapshot` dict (or a live
collector) into the aligned text block the experiments CLI prints after
each ``--telemetry`` run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from .collector import Collector
from . import trace as _trace


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def _aligned(rows: List[List[str]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    widths = [max(len(row[i]) for row in rows)
              for i in range(len(rows[0]))]
    return [
        indent + "  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def render_report(metrics: Union[Collector, Mapping[str, Any], None],
                  provenance: Optional[Mapping[str, Any]] = None,
                  tracer: Union["_trace.Tracer", None, str] = "global"
                  ) -> str:
    """Aligned, human-readable view of spans, counters, gauges, series.

    Tolerates the degenerate inputs that show up in practice: ``None``
    or an empty snapshot renders a valid "(no metrics collected)"
    report, and ``provenance`` — when provided — is rendered as its own
    section, skipping ``None``-valued and missing fields rather than
    printing them.

    Loss is reported, not swallowed: series rows carry a ``dropped``
    column (values truncated past the per-series cap), and when event
    tracing is active a ``trace:`` line reports the ring buffer's
    buffered/dropped event counts. ``tracer`` defaults to the global
    tracer; pass ``None`` to suppress the line or an explicit
    :class:`Tracer` to report on that instance.
    """
    if metrics is None:
        metrics = {}
    elif isinstance(metrics, Collector):
        metrics = metrics.snapshot()
    if tracer == "global":
        tracer = _trace.get_tracer()
    lines: List[str] = ["telemetry report"]

    spans: Dict[str, Dict[str, float]] = metrics.get("spans") or {}
    if spans:
        rows = [
            [path,
             _format_number(stats.get("count", 0)),
             _format_seconds(stats.get("total_seconds", 0.0)),
             _format_seconds(stats.get("mean_seconds", 0.0))]
            for path, stats in sorted(
                spans.items(),
                key=lambda item: -item[1].get("total_seconds", 0.0),
            )
        ]
        lines.append("spans (path  count  total  mean):")
        lines.extend(_aligned(rows))

    counters: Dict[str, float] = metrics.get("counters") or {}
    if counters:
        lines.append("counters:")
        rows = [[name, _format_number(value)]
                for name, value in sorted(counters.items())]
        lines.extend(_aligned(rows))

    gauges: Dict[str, float] = metrics.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        rows = [[name, _format_number(value)]
                for name, value in sorted(gauges.items())]
        lines.extend(_aligned(rows))

    series: Dict[str, Dict[str, Any]] = metrics.get("series") or {}
    if series:
        rows = []
        for name, entry in sorted(series.items()):
            values = entry.get("values") or []
            if not values:
                continue
            rows.append([
                name,
                _format_number(len(values) + entry.get("truncated", 0)),
                f"{values[0]:.4g}",
                f"{values[-1]:.4g}",
                f"{min(values):.4g}",
                _format_number(entry.get("truncated", 0)),
            ])
        # Only emit the section header when at least one series has
        # points; an all-empty series dict previously left a dangling
        # header at the bottom of the report.
        if rows:
            lines.append(
                "series (name  points  first  last  best  dropped):")
            lines.extend(_aligned(rows))

    if tracer is not None and not isinstance(tracer, str):
        # Ring-buffer accounting: a truncated trace silently biases
        # any analysis done on it, so the report says when it happened.
        lines.append(
            f"trace: {_format_number(tracer.event_count)} events "
            f"buffered, {_format_number(tracer.dropped_events)} dropped"
        )

    if len(lines) == 1:
        lines.append("  (no metrics collected)")

    if provenance:
        rows = [[str(key), _format_provenance_value(value)]
                for key, value in sorted(provenance.items())
                if value is not None]
        if rows:
            lines.append("provenance:")
            lines.extend(_aligned(rows))
    return "\n".join(lines)


def _format_provenance_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
